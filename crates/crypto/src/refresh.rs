//! Proactive share refresh and share recovery (Herzberg et al. style, the
//! `ARfr` component of the paper's AL-model PDS).
//!
//! **Refresh**: each node deals a Feldman sharing of *zero*; new shares are
//! `x_i' = x_i + Σ_j δ_j(i)`. The joint secret (and thus the ROM-resident
//! public key) is unchanged, but any `t` shares from *different* time units
//! are useless to the adversary — the property that makes the mobile
//! adversary of §2 harmless. A dealing is acceptable only if its secret
//! commitment is the identity (`g^0`), which receivers check.
//!
//! **Recovery**: a node that was broken into may have lost (or had corrupted)
//! its share. Helpers jointly blind the share polynomial with random
//! polynomials that vanish at the recovering node's point `i`
//! ([`crate::shamir::Polynomial::random_with_root`]), then each helper `j`
//! sends `v_j = x_j + Σ_h d_h(j)`. Interpolating `t+1` verified points at `i`
//! yields `f(i) + 0 = x_i` while revealing nothing else about `f` to the
//! recovering node, and nothing about `x_i` to any helper.
//!
//! This module is pure computation; sequencing/consistency is the PDS
//! driver's job.

use crate::dkg::KeyShare;
use crate::feldman::{self, Commitments, Dealing, ShareCheck};
use crate::group::Group;
use crate::shamir::{self, Polynomial};
use proauth_primitives::bigint::BigUint;

/// Deals a refresh (zero-sharing) contribution.
pub fn deal_update<R: rand::RngCore>(
    group: &Group,
    threshold: usize,
    n: usize,
    rng: &mut R,
) -> Dealing {
    Dealing::deal_zero(group, threshold, n, rng)
}

/// A refresh dealing as received by one node.
#[derive(Debug, Clone)]
pub struct ReceivedUpdate {
    /// Dealer index (1-based).
    pub dealer: u32,
    /// Public commitments (must commit to zero).
    pub commitments: Commitments,
    /// The private update share addressed to the receiver.
    pub share: BigUint,
}

impl ReceivedUpdate {
    /// Verifies the dealing: correct degree, zero secret, valid share.
    pub fn verify(&self, group: &Group, threshold: usize, me: u32) -> bool {
        self.structurally_valid(threshold)
            && self.commitments.verify_share_in(group, me, &self.share)
    }

    /// The cheap non-exponentiation part of [`Self::verify`]: correct degree
    /// and a zero secret commitment. The expensive share equation is what
    /// [`verify_updates`] batches.
    fn structurally_valid(&self, threshold: usize) -> bool {
        self.commitments.degree() == threshold && self.commitments.secret_commitment().is_one()
    }
}

/// Verifies a whole set of refresh dealings for receiver `me`, batching the
/// share equations into one random-linear-combination check. Semantically
/// identical to `updates.iter().all(|u| u.verify(..))`: when the batch
/// rejects, the per-update path is re-run so a single bad dealing cannot
/// veto differently than the seed code did.
fn verify_updates(group: &Group, threshold: usize, me: u32, updates: &[ReceivedUpdate]) -> bool {
    if !updates.iter().all(|u| u.structurally_valid(threshold)) {
        return false;
    }
    let checks: Vec<ShareCheck<'_>> = updates
        .iter()
        .map(|u| ShareCheck {
            commitments: &u.commitments,
            index: me,
            share: &u.share,
        })
        .collect();
    feldman::batch_verify_shares(group, &checks)
        || updates.iter().all(|u| u.verify(group, threshold, me))
}

/// Applies verified refresh dealings, producing the next unit's [`KeyShare`].
///
/// Returns `None` if any dealing fails verification or the set is empty.
/// The old share should be **erased** by the caller immediately after (the
/// erasure requirement of §6).
///
/// **Consistency requirement**: as with DKG, all honest nodes must apply the
/// same dealer set (guaranteed by the protocol layer's echo-broadcast).
pub fn apply_updates(
    group: &Group,
    threshold: usize,
    key: &KeyShare,
    updates: &[ReceivedUpdate],
) -> Option<KeyShare> {
    if updates.is_empty() || !verify_updates(group, threshold, key.index, updates) {
        return None;
    }
    let mut share = key.share.clone();
    let mut share_keys = key.share_keys.clone();
    let mut qualified = Vec::with_capacity(updates.len());
    for u in updates {
        share = group.scalar_add(&share, &u.share);
        for (slot, sk) in share_keys.iter_mut().enumerate() {
            let i = (slot + 1) as u32;
            *sk = group.mul(sk, &u.commitments.eval_in_exponent(group, i));
        }
        qualified.push(u.dealer);
    }
    qualified.sort_unstable();
    Some(KeyShare {
        index: key.index,
        share,
        public_key: key.public_key.clone(),
        share_keys,
        qualified,
    })
}

/// Updates only the public data (share verification keys) for a node that
/// has no share of its own to update — e.g. a node in recovery that still
/// must track the sharing's public evolution.
pub fn apply_updates_public(
    group: &Group,
    threshold: usize,
    n: usize,
    public_key: &BigUint,
    share_keys: &[BigUint],
    updates: &[ReceivedUpdate],
    me: u32,
) -> Option<(Vec<BigUint>, Vec<u32>)> {
    if updates.is_empty()
        || share_keys.len() != n
        || !verify_updates(group, threshold, me, updates)
    {
        return None;
    }
    let _ = public_key;
    let mut keys = share_keys.to_vec();
    let mut qualified = Vec::with_capacity(updates.len());
    for u in updates {
        for (slot, sk) in keys.iter_mut().enumerate() {
            let i = (slot + 1) as u32;
            *sk = group.mul(sk, &u.commitments.eval_in_exponent(group, i));
        }
        qualified.push(u.dealer);
    }
    qualified.sort_unstable();
    Some((keys, qualified))
}

/// A helper's blinding dealing for recovering node `target`.
#[derive(Debug, Clone)]
pub struct BlindingDealing {
    /// The node being helped.
    pub target: u32,
    /// Commitments to the blinding polynomial (root at `target`).
    pub commitments: Commitments,
    /// Per-node blinding shares (`shares[j-1]` for helper `j`).
    pub shares: Vec<BigUint>,
}

/// Deals a blinding polynomial with a root at `target`.
pub fn deal_blinding<R: rand::RngCore>(
    group: &Group,
    threshold: usize,
    n: usize,
    target: u32,
    rng: &mut R,
) -> BlindingDealing {
    let poly = Polynomial::random_with_root(group, threshold, target, rng);
    BlindingDealing {
        target,
        commitments: Commitments::from_polynomial(group, &poly),
        shares: (1..=n as u32).map(|i| poly.eval_at(i)).collect(),
    }
}

/// A blinding dealing as received by one helper.
#[derive(Debug, Clone)]
pub struct ReceivedBlinding {
    /// Dealer index (1-based).
    pub dealer: u32,
    /// Public commitments.
    pub commitments: Commitments,
    /// The blinding share addressed to the receiving helper.
    pub share: BigUint,
}

impl ReceivedBlinding {
    /// Verifies the dealing: correct degree, vanishes at `target`, valid share.
    pub fn verify(&self, group: &Group, threshold: usize, target: u32, me: u32) -> bool {
        self.commitments.degree() == threshold
            && self.commitments.eval_in_exponent(group, target).is_one()
            && self.commitments.verify_share_in(group, me, &self.share)
    }
}

/// A helper's contribution to a recovery: `v_j = x_j + Σ_h d_h(j)`.
#[derive(Debug, Clone)]
pub struct RecoveryValue {
    /// Helper index (1-based).
    pub helper: u32,
    /// The blinded share evaluation.
    pub value: BigUint,
}

/// Computes helper `key.index`'s recovery value from verified blindings.
pub fn recovery_value(group: &Group, key: &KeyShare, blindings: &[ReceivedBlinding]) -> RecoveryValue {
    let mut v = key.share.clone();
    for b in blindings {
        v = group.scalar_add(&v, &b.share);
    }
    RecoveryValue {
        helper: key.index,
        value: v,
    }
}

/// The public data the recovering node needs to check recovery values:
/// for helper `j`, `g^{v_j}` must equal `X_j · Π_h eval_h(j)`.
pub fn expected_recovery_commitment(
    group: &Group,
    share_keys: &[BigUint],
    blinding_commitments: &[Commitments],
    helper: u32,
) -> BigUint {
    let mut acc = share_keys[(helper - 1) as usize].clone();
    for c in blinding_commitments {
        acc = group.mul(&acc, &c.eval_in_exponent(group, helper));
    }
    acc
}

/// Recovers the target node's share from `t+1` verified recovery values.
///
/// `values` must come from distinct helpers; each must already have been
/// checked against [`expected_recovery_commitment`]. Interpolates the blinded
/// polynomial `f + Σ d_h` at `target`, where the blinding vanishes.
///
/// Returns `None` if fewer than `threshold + 1` values are supplied.
pub fn recover_share(
    group: &Group,
    threshold: usize,
    target: u32,
    values: &[RecoveryValue],
) -> Option<BigUint> {
    if values.len() < threshold + 1 {
        return None;
    }
    let points: Vec<(u32, BigUint)> = values
        .iter()
        .take(threshold + 1)
        .map(|v| (v.helper, v.value.clone()))
        .collect();
    Some(shamir::interpolate_at(group, &points, target))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dkg::{self, ReceivedDealing};
    use crate::group::GroupId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dkg_keys(n: usize, t: usize, seed: u64) -> (Group, Vec<KeyShare>) {
        let group = Group::new(GroupId::Toy64);
        let mut rng = StdRng::seed_from_u64(seed);
        let dealings: Vec<(u32, Dealing)> = (1..=n as u32)
            .map(|i| (i, dkg::deal(&group, t, n, &mut rng)))
            .collect();
        let keys = (1..=n as u32)
            .map(|me| {
                let inputs: Vec<ReceivedDealing> = dealings
                    .iter()
                    .map(|(dealer, d)| ReceivedDealing {
                        dealer: *dealer,
                        commitments: d.commitments.clone(),
                        share: d.share_for(me).clone(),
                    })
                    .collect();
                dkg::aggregate(&group, t, n, me, &inputs).unwrap()
            })
            .collect();
        (group, keys)
    }

    fn refresh_all(
        group: &Group,
        t: usize,
        n: usize,
        keys: &[KeyShare],
        rng: &mut StdRng,
    ) -> Vec<KeyShare> {
        let dealings: Vec<(u32, Dealing)> = (1..=n as u32)
            .map(|i| (i, deal_update(group, t, n, rng)))
            .collect();
        keys.iter()
            .map(|k| {
                let updates: Vec<ReceivedUpdate> = dealings
                    .iter()
                    .map(|(dealer, d)| ReceivedUpdate {
                        dealer: *dealer,
                        commitments: d.commitments.clone(),
                        share: d.share_for(k.index).clone(),
                    })
                    .collect();
                apply_updates(group, t, k, &updates).unwrap()
            })
            .collect()
    }

    #[test]
    fn refresh_preserves_public_key_and_changes_shares() {
        let (group, keys) = dkg_keys(5, 2, 81);
        let mut rng = StdRng::seed_from_u64(82);
        let new_keys = refresh_all(&group, 2, 5, &keys, &mut rng);
        for (old, new) in keys.iter().zip(&new_keys) {
            assert_eq!(old.public_key, new.public_key);
            assert_ne!(old.share, new.share, "share must change");
            assert!(new.self_consistent(&group));
        }
        // New shares still interpolate to the same secret.
        let points: Vec<(u32, BigUint)> = new_keys[0..3]
            .iter()
            .map(|k| (k.index, k.share.clone()))
            .collect();
        let secret = shamir::interpolate_at_zero(&group, &points);
        assert_eq!(group.exp_g(&secret), keys[0].public_key);
    }

    #[test]
    fn old_and_new_shares_do_not_mix() {
        // t+1 shares drawn from different epochs interpolate to garbage.
        let (group, keys) = dkg_keys(5, 2, 83);
        let mut rng = StdRng::seed_from_u64(84);
        let new_keys = refresh_all(&group, 2, 5, &keys, &mut rng);
        let mixed: Vec<(u32, BigUint)> = vec![
            (1, keys[0].share.clone()),
            (2, new_keys[1].share.clone()),
            (3, new_keys[2].share.clone()),
        ];
        let candidate = shamir::interpolate_at_zero(&group, &mixed);
        assert_ne!(group.exp_g(&candidate), keys[0].public_key);
    }

    #[test]
    fn nonzero_update_rejected() {
        let (group, keys) = dkg_keys(3, 1, 85);
        let mut rng = StdRng::seed_from_u64(86);
        // A malicious "update" that shifts the secret.
        let bad = Dealing::deal(&group, 1, 3, BigUint::one(), &mut rng);
        let ru = ReceivedUpdate {
            dealer: 2,
            commitments: bad.commitments.clone(),
            share: bad.share_for(1).clone(),
        };
        assert!(!ru.verify(&group, 1, 1));
        assert!(apply_updates(&group, 1, &keys[0], &[ru]).is_none());
    }

    #[test]
    fn full_share_recovery() {
        let (group, keys) = dkg_keys(5, 2, 87);
        let mut rng = StdRng::seed_from_u64(88);
        let target = 4u32;
        let helpers = [1u32, 2, 3];
        // Each helper deals a blinding with root at target.
        let blind_dealings: Vec<(u32, BlindingDealing)> = helpers
            .iter()
            .map(|&h| (h, deal_blinding(&group, 2, 5, target, &mut rng)))
            .collect();
        // Each helper verifies the blindings it received and computes v_j.
        let values: Vec<RecoveryValue> = helpers
            .iter()
            .map(|&h| {
                let received: Vec<ReceivedBlinding> = blind_dealings
                    .iter()
                    .map(|(dealer, d)| ReceivedBlinding {
                        dealer: *dealer,
                        commitments: d.commitments.clone(),
                        share: d.shares[(h - 1) as usize].clone(),
                    })
                    .collect();
                for rb in &received {
                    assert!(rb.verify(&group, 2, target, h));
                }
                recovery_value(&group, &keys[(h - 1) as usize], &received)
            })
            .collect();
        // The recovering node checks each value against public data.
        let comms: Vec<Commitments> = blind_dealings
            .iter()
            .map(|(_, d)| d.commitments.clone())
            .collect();
        for v in &values {
            let expected = expected_recovery_commitment(&group, &keys[0].share_keys, &comms, v.helper);
            assert_eq!(group.exp_g(&v.value), expected);
        }
        let recovered = recover_share(&group, 2, target, &values).unwrap();
        assert_eq!(recovered, keys[(target - 1) as usize].share);
    }

    #[test]
    fn recovery_needs_quorum() {
        let group = Group::new(GroupId::Toy64);
        let values = vec![
            RecoveryValue {
                helper: 1,
                value: BigUint::one(),
            },
            RecoveryValue {
                helper: 2,
                value: BigUint::one(),
            },
        ];
        assert!(recover_share(&group, 2, 5, &values).is_none());
    }

    #[test]
    fn blinding_with_wrong_root_rejected() {
        let group = Group::new(GroupId::Toy64);
        let mut rng = StdRng::seed_from_u64(89);
        let d = deal_blinding(&group, 2, 5, 3, &mut rng);
        let rb = ReceivedBlinding {
            dealer: 1,
            commitments: d.commitments.clone(),
            share: d.shares[0].clone(),
        };
        assert!(rb.verify(&group, 2, 3, 1));
        // Claimed target 4 but root is at 3.
        assert!(!rb.verify(&group, 2, 4, 1));
    }

    #[test]
    fn recovery_does_not_reveal_helper_shares() {
        // The recovered value equals f(target); a single v_j alone differs
        // from the helper's raw share (blinded).
        let (group, keys) = dkg_keys(4, 1, 90);
        let mut rng = StdRng::seed_from_u64(91);
        let target = 4u32;
        let d = deal_blinding(&group, 1, 4, target, &mut rng);
        let rb = ReceivedBlinding {
            dealer: 1,
            commitments: d.commitments.clone(),
            share: d.shares[0].clone(),
        };
        let v = recovery_value(&group, &keys[0], &[rb]);
        assert_ne!(v.value, keys[0].share, "value is blinded");
    }

    #[test]
    fn public_update_tracking_matches_full_update() {
        let (group, keys) = dkg_keys(4, 1, 92);
        let mut rng = StdRng::seed_from_u64(93);
        let dealings: Vec<(u32, Dealing)> = (1..=4u32)
            .map(|i| (i, deal_update(&group, 1, 4, &mut rng)))
            .collect();
        let updates_for = |me: u32| -> Vec<ReceivedUpdate> {
            dealings
                .iter()
                .map(|(dealer, d)| ReceivedUpdate {
                    dealer: *dealer,
                    commitments: d.commitments.clone(),
                    share: d.share_for(me).clone(),
                })
                .collect()
        };
        let full = apply_updates(&group, 1, &keys[0], &updates_for(1)).unwrap();
        let (pub_keys, qualified) = apply_updates_public(
            &group,
            1,
            4,
            &keys[1].public_key,
            &keys[1].share_keys,
            &updates_for(2),
            2,
        )
        .unwrap();
        assert_eq!(pub_keys, full.share_keys);
        assert_eq!(qualified, full.qualified);
    }
}
