//! E7 — §6 scalability: the two-level (√n × √n) partition.
//!
//! The paper: partitioning into `O(√n)` neighborhoods each running its own
//! PDS trades tolerance for cost — "if the original scheme can tolerate
//! adversaries who break up to n/2 nodes, the resulting scheme can only
//! tolerate adversaries who break up to n/4 nodes". This experiment
//! measures both sides of the trade:
//!
//! * the *optimal-adversary* break-in budget needed to compromise flat vs
//!   partitioned deployments (analytic, from the partition structure);
//! * the *random-adversary* compromise probability as the corrupted
//!   fraction sweeps (Monte Carlo);
//! * the per-refresh message cost of a neighborhood vs the flat network
//!   (each cluster refreshes internally: O(n·√n) total vs O(n²)).

use proauth_bench::{pct, print_table};
use proauth_core::partition::{flat_min_breakins, Partition};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    // Table 1: optimal adversary budgets.
    let mut rows = Vec::new();
    for n in [16usize, 36, 64, 100, 144] {
        let p = Partition::sqrt(n);
        let two_level = p.min_breakins_to_compromise();
        let flat = flat_min_breakins(n);
        rows.push(vec![
            n.to_string(),
            p.cluster_count().to_string(),
            flat.to_string(),
            two_level.to_string(),
            format!("{:.2}", flat as f64 / n as f64),
            format!("{:.2}", two_level as f64 / n as f64),
        ]);
    }
    print_table(
        "E7a / §6 — break-ins needed by an optimal adversary (flat vs √n partition)",
        &[
            "n",
            "clusters",
            "flat (≈n/2)",
            "two-level (≈n/4)",
            "flat frac",
            "two-level frac",
        ],
        &rows,
    );

    // Table 2: random adversary, Monte Carlo.
    let trials = 2000;
    let mut rows = Vec::new();
    let n = 64usize;
    let p = Partition::sqrt(n);
    for pct_broken in [10usize, 20, 25, 30, 35, 40, 45, 50, 55, 60] {
        let k = n * pct_broken / 100;
        let mut flat_lost = 0usize;
        let mut part_lost = 0usize;
        let mut rng = StdRng::seed_from_u64(pct_broken as u64);
        for _ in 0..trials {
            let mut nodes: Vec<usize> = (0..n).collect();
            nodes.shuffle(&mut rng);
            let mut broken = vec![false; n];
            for &i in nodes.iter().take(k) {
                broken[i] = true;
            }
            if k > n / 2 {
                flat_lost += 1;
            }
            if p.system_compromised(&broken) {
                part_lost += 1;
            }
        }
        rows.push(vec![
            format!("{pct_broken}%"),
            k.to_string(),
            pct(flat_lost, trials),
            pct(part_lost, trials),
        ]);
    }
    print_table(
        "E7b — random break-ins, n = 64, 8×8 partition (2000 trials per row)",
        &[
            "broken fraction",
            "k broken",
            "flat compromised",
            "two-level compromised",
        ],
        &rows,
    );

    // Table 3: per-refresh message cost model. A refresh is dominated by the
    // all-to-all dealing+echo traffic: Θ(c · m²) messages for a cluster of m,
    // i.e. Θ(n^1.5) total for the √n partition vs Θ(n²) flat.
    let mut rows = Vec::new();
    for n in [16usize, 64, 144, 400] {
        let m = (n as f64).sqrt() as usize;
        let flat_cost = n * n;
        let part_cost = (n / m) * m * m; // = n·m = n^1.5
        rows.push(vec![
            n.to_string(),
            flat_cost.to_string(),
            part_cost.to_string(),
            format!("{:.1}x", flat_cost as f64 / part_cost as f64),
        ]);
    }
    print_table(
        "E7c — refresh message cost model: flat Θ(n²) vs partitioned Θ(n^1.5)",
        &["n", "flat", "partitioned", "saving"],
        &rows,
    );

    println!(
        "\nExpected shape: the optimal adversary needs ≈ n/2 break-ins flat but only ≈ n/4\n\
         partitioned (E7a) — yet a *random* adversary is worse off against the partition\n\
         until ~40% corruption (E7b), and the partition cuts refresh traffic by ≈ √n (E7c).\n\
         This is the security/performance trade-off §6 describes."
    );
}
