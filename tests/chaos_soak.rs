//! Degradation sweep across the (s,t) boundary, end to end.
//!
//! `chaos_smoke_sweep` is the tier-1 guard: a small fixed-seed ramp that
//! must show the boundary — the sub-budget point upholds every guarantee,
//! the over-budget point completes but degrades loudly. The `#[ignore]`d
//! soak runs the same contract over a longer horizon with latency bounds;
//! ci.sh runs it in release.

use proauth_adversary::sweep::{run_sweep, SweepConfig};

const N: usize = 5;
const T: usize = 2;
const NORMAL: u64 = 8;

fn check_boundary(points: &[proauth_adversary::SweepPoint], t: usize) {
    for p in points {
        println!("{p}");
    }
    let calm = &points[0];
    assert!(calm.healthy(), "calm control point must be clean: {calm}");
    assert_eq!(calm.crashes, 0);

    let sub = points
        .iter()
        .find(|p| p.label == "sub-budget")
        .expect("ramp has a sub-budget point");
    // Below the budget the paper's guarantees hold outright: the compiled
    // schedule kept impairment ≤ t, nobody forged, and every crash victim
    // re-certified (all nodes operational at the end).
    assert!(sub.crashes > 0, "sub-budget point must actually inject faults");
    assert!(sub.restarts > 0, "crash victims must restart");
    assert!(
        sub.max_impaired <= t,
        "sub-budget schedule exceeded the budget: {sub}"
    );
    assert!(sub.healthy(), "sub-budget guarantees violated: {sub}");
    assert!(
        sub.recoveries > 0,
        "sub-budget crash victims must complete recovery spells"
    );

    let over = points
        .iter()
        .find(|p| p.label == "over-budget")
        .expect("ramp has an over-budget point");
    // Past the boundary the run must still complete (reaching this line is
    // the no-panic/no-hang check) and must NOT silently claim health.
    assert!(over.crashes > 0);
    assert!(
        over.max_impaired > t,
        "over-budget point failed to cross the boundary: {over}"
    );
    assert!(over.alarm(), "over-budget degradation must raise an alarm: {over}");
}

#[test]
fn chaos_smoke_sweep() {
    let cfg = SweepConfig::boundary_ramp(N, T, 3, NORMAL, 42);
    let points = run_sweep(&cfg);
    assert_eq!(points.len(), 3);
    check_boundary(&points, T);
}

/// Long soak: same boundary contract over twice the horizon, several seeds,
/// plus a hard bound on re-certification latency. Run with
/// `cargo test --release -p proauth-tests --test chaos_soak -- --ignored`.
#[test]
#[ignore]
fn chaos_soak_sweep() {
    for seed in [7u64, 42, 1997] {
        let cfg = SweepConfig::boundary_ramp(N, T, 6, NORMAL, seed);
        let points = run_sweep(&cfg);
        check_boundary(&points, T);
        let sub = points.iter().find(|p| p.label == "sub-budget").unwrap();
        // A crash victim is re-certified at the next refresh end after its
        // restart: worst case just over two units. The histogram quantile
        // reports a power-of-two bucket bound, so assert against the bucket
        // that contains two units.
        let two_units = 2 * (NORMAL + 36); // uls_schedule: part1 20 + part2 16
        let bound = two_units.next_power_of_two();
        assert!(
            sub.recovery_p99_rounds <= bound,
            "seed {seed}: recovery latency unbounded: {sub}"
        );
    }
}
