//! Concurrent-session composition: the PDS session table runs many
//! interleaved sign sessions per round, with faults (garbled shares, wiped
//! nodes) forcing retries in all of them at once, without weakening any
//! per-session guarantee — the executable content of the composition
//! argument the signing-as-a-service layer rests on.

use proauth_crypto::group::{Group, GroupId};
use proauth_pds::als::{AlsConfig, AlsPds};
use proauth_pds::als_node::AlsProcess;
use proauth_primitives::bigint::BigUint;
use proauth_sim::adversary::{AlAdversary, BreakPlan, NetView, PassiveAl};
use proauth_sim::clock::{Schedule, TimeView};
use proauth_sim::message::{NodeId, OutputEvent};
use proauth_sim::runner::{run_al_with_inputs, SimConfig, SimResult};
use proauth_sim::workload::{ClientBatch, ClientOp};
use proauth_telemetry::Telemetry;
use std::collections::BTreeSet;

const N: usize = 5;
const T: usize = 2;

fn schedule() -> Schedule {
    Schedule::new(20, 1, 8)
}

fn cfg(total_units: u64) -> SimConfig {
    let mut c = SimConfig::new(N, T, schedule());
    c.setup_rounds = 2;
    c.total_rounds = schedule().unit_rounds * total_units;
    c.seed = 7;
    c
}

fn make_node_with(tweak: impl Fn(&mut AlsConfig)) -> impl Fn(NodeId) -> AlsProcess {
    move |id| {
        let group = Group::new(GroupId::Toy64);
        let mut c = AlsConfig::new(group, N, T);
        tweak(&mut c);
        AlsProcess::new(AlsPds::new(c, id))
    }
}

fn make_node(id: NodeId) -> AlsProcess {
    make_node_with(|_| {})(id)
}

/// Distinct `(msg, unit)` pairs each node reported signed.
fn signed_at(result: &SimResult, node: NodeId) -> BTreeSet<(Vec<u8>, u64)> {
    result.outputs[node.idx()]
        .iter()
        .filter_map(|(_, ev)| match ev {
            OutputEvent::Signed { msg, unit } => Some((msg.clone(), *unit)),
            _ => None,
        })
        .collect()
}

fn sign_batch(msgs: &[Vec<u8>]) -> Vec<u8> {
    ClientBatch {
        ops: msgs
            .iter()
            .map(|m| ClientOp::Sign { msg: m.clone() })
            .collect(),
    }
    .to_bytes()
}

fn msgs(prefix: &str, count: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|i| format!("{prefix}-{i:03}").into_bytes())
        .collect()
}

/// Wipes node 1 (its whole session table is lost) and garbles node 2's
/// share (its key fails self-consistency, so it stops contributing
/// partials) right after the inits round — every concurrent session is
/// forced through the retry path simultaneously.
struct FaultPair;

impl AlAdversary for FaultPair {
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        match view.time.round {
            3 => BreakPlan::break_into([NodeId(1), NodeId(2)]),
            4 => BreakPlan::leave([NodeId(1), NodeId(2)]),
            _ => BreakPlan::none(),
        }
    }

    fn corrupt(&mut self, node: NodeId, state: &mut dyn std::any::Any, _time: &TimeView) {
        let Some(p) = state.downcast_mut::<AlsProcess>() else {
            return;
        };
        match node {
            NodeId(1) => p.pds.corrupt_wipe(),
            _ => p.pds.corrupt_share(BigUint::from_u64(0xDEAD)),
        }
    }
}

#[test]
fn twenty_interleaved_sessions_with_faults_all_complete() {
    let requests = msgs("interleaved", 20);
    let batch = sign_batch(&requests);
    let result = run_al_with_inputs(cfg(1), make_node, &mut FaultPair, |_, round| {
        (round == 2).then(|| batch.clone())
    });
    // Every healthy node completes all 20 sessions: nodes 1 and 2 both
    // withheld their attempt-0 partials (wiped table, garbled share), so
    // each of the 20 concurrent sessions retried with the honest remainder
    // {3, 4, 5} — exactly t+1 signers.
    let want: BTreeSet<(Vec<u8>, u64)> =
        requests.iter().map(|m| (m.clone(), 0u64)).collect();
    for node in [3u32, 4, 5] {
        assert_eq!(
            signed_at(&result, NodeId(node)),
            want,
            "node {node} completed all 20 retried sessions"
        );
    }
    // The wiped node lost its session table outright.
    assert!(signed_at(&result, NodeId(1)).is_empty());
}

#[test]
fn sixteen_sessions_clean_path_all_complete_everywhere() {
    let requests = msgs("clean", 16);
    let batch = sign_batch(&requests);
    let result = run_al_with_inputs(cfg(1), make_node, &mut PassiveAl, |_, round| {
        (round == 2).then(|| batch.clone())
    });
    let want: BTreeSet<(Vec<u8>, u64)> =
        requests.iter().map(|m| (m.clone(), 0u64)).collect();
    for node in 1..=N as u32 {
        assert_eq!(signed_at(&result, NodeId(node)), want, "node {node}");
    }
}

#[test]
fn session_cap_rejects_excess_requests() {
    let requests = msgs("capped", 12);
    let batch = sign_batch(&requests);
    let tele = Telemetry::enabled();
    let mut c = cfg(1);
    c.telemetry = tele.clone();
    let result = run_al_with_inputs(
        c,
        make_node_with(|cfg| cfg.max_sessions = 8),
        &mut PassiveAl,
        |_, round| (round == 2).then(|| batch.clone()),
    );
    // Eight sessions fit under the cap; the other four are rejected at
    // every node (same deterministic order everywhere).
    let signed = signed_at(&result, NodeId(4));
    assert_eq!(signed.len(), 8, "{signed:?}");
    assert_eq!(tele.counter("pds/sign_rejected"), (12 - 8) * N as u64);
    assert_eq!(tele.counter("pds/sign_started"), 8 * N as u64);
}

#[test]
fn age_gc_expires_stalled_sessions() {
    // With an absurdly tight age bound every session is collected before it
    // can complete: the GC path runs, the expired counter ticks, and no
    // signature is reported.
    let requests = msgs("stalled", 4);
    let batch = sign_batch(&requests);
    let tele = Telemetry::enabled();
    let mut c = cfg(1);
    c.telemetry = tele.clone();
    let result = run_al_with_inputs(
        c,
        make_node_with(|cfg| cfg.session_max_age = 1),
        &mut PassiveAl,
        |_, round| (round == 2).then(|| batch.clone()),
    );
    for node in 1..=N as u32 {
        assert!(signed_at(&result, NodeId(node)).is_empty());
    }
    assert_eq!(tele.counter("pds/sign_expired"), 4 * N as u64);
}

#[test]
fn preprocessing_pool_feeds_sessions_and_off_mode_still_signs() {
    let requests = msgs("pooled", 6);
    let batch = sign_batch(&requests);
    let want: BTreeSet<(Vec<u8>, u64)> =
        requests.iter().map(|m| (m.clone(), 0u64)).collect();

    let tele_on = Telemetry::enabled();
    let mut c = cfg(1);
    c.telemetry = tele_on.clone();
    let on = run_al_with_inputs(c, make_node, &mut PassiveAl, |_, round| {
        (round == 2).then(|| batch.clone())
    });

    let tele_off = Telemetry::enabled();
    let mut c = cfg(1);
    c.telemetry = tele_off.clone();
    let off = run_al_with_inputs(
        c,
        make_node_with(|cfg| cfg.nonce_pool = 0),
        &mut PassiveAl,
        |_, round| (round == 2).then(|| batch.clone()),
    );

    for node in 1..=N as u32 {
        assert_eq!(signed_at(&on, NodeId(node)), want, "pool on, node {node}");
        assert_eq!(signed_at(&off, NodeId(node)), want, "pool off, node {node}");
    }
    // Preprocessing accounting: with the pool on, every attempt-0 nonce was
    // a pool hit; with it off, every start was a (counted) miss.
    assert_eq!(tele_on.counter("pds/nonce_pool_hit"), 6 * N as u64);
    assert_eq!(tele_on.counter("pds/nonce_pool_miss"), 0);
    assert_eq!(tele_off.counter("pds/nonce_pool_hit"), 0);
    assert_eq!(tele_off.counter("pds/nonce_pool_miss"), 6 * N as u64);
}

#[test]
fn verify_window_sizes_agree_on_outputs() {
    // Sign six messages, then fire verify requests at one responder. The
    // amortized window (8) and the per-item window (1) must produce
    // identical Verified output streams — amortization is a latency/cost
    // trade, never a semantic one.
    let requests = msgs("verify", 6);
    let batch = sign_batch(&requests);
    let verify_batch = ClientBatch {
        ops: vec![ClientOp::Verify; 5],
    }
    .to_bytes();
    let inputs = move |id: NodeId, round: u64| {
        if round == 2 {
            Some(batch.clone())
        } else if round == 8 && id == NodeId(3) {
            Some(verify_batch.clone())
        } else {
            None
        }
    };

    let run = |window: usize, tele: Telemetry| {
        let mut c = cfg(1);
        c.telemetry = tele;
        run_al_with_inputs(
            c,
            make_node_with(move |cfg| cfg.verify_window = window),
            &mut PassiveAl,
            inputs.clone(),
        )
    };
    let tele_batched = Telemetry::enabled();
    let batched = run(8, tele_batched.clone());
    let tele_single = Telemetry::enabled();
    let single = run(1, tele_single.clone());

    let verified = |r: &SimResult| -> Vec<Vec<u8>> {
        r.outputs[NodeId(3).idx()]
            .iter()
            .filter_map(|(_, ev)| match ev {
                OutputEvent::Verified { msg } => Some(msg.clone()),
                _ => None,
            })
            .collect()
    };
    let b = verified(&batched);
    assert_eq!(b.len(), 5, "all five verify requests served: {b:?}");
    assert_eq!(b, verified(&single), "window size is semantically invisible");
    assert_eq!(tele_batched.counter("pds/verify_ok"), 5);
    assert_eq!(tele_single.counter("pds/verify_ok"), 5);
    // The amortized run actually used the batch path; the per-item run
    // never did.
    assert_eq!(tele_batched.counter("pds/verify_batched"), 5);
    assert_eq!(tele_single.counter("pds/verify_batched"), 0);
}
