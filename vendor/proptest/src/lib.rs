//! Offline vendored subset of the `proptest` 1.x API.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! slice of proptest its test suites use: the [`proptest!`] macro with
//! `x in strategy` bindings and `#![proptest_config(...)]`, `prop_assert*`,
//! `prop_assume!`, [`Strategy`] with `prop_map` / `prop_filter` /
//! `prop_filter_map`, `any::<T>()`, integer-range and string strategies,
//! [`collection::vec`], [`option::of`], and [`sample::Index`].
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed and failures are **not shrunk** — the failing values are
//! printed as-is. That trades minimal counterexamples for zero dependencies.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::any;
pub use strategy::{Just, Strategy};

/// The property-test entry macro (mirror of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::test_runner::run_cases(&config, stringify!($name), |__rng| {
                    $(
                        let $arg = match $crate::strategy::Strategy::try_new_value(&($strat), __rng) {
                            ::core::result::Result::Ok(v) => v,
                            ::core::result::Result::Err(r) => {
                                return ::core::result::Result::Err(
                                    $crate::test_runner::TestCaseError::Reject(r.into()));
                            }
                        };
                    )+
                    // Rendered up front: the body may move the values.
                    let __values = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let mut __closure = || -> $crate::test_runner::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    };
                    match __closure() {
                        ::core::result::Result::Ok(()) => ::core::result::Result::Ok(()),
                        ::core::result::Result::Err(e) => ::core::result::Result::Err(
                            e.with_values(__values)),
                    }
                });
            }
        )*
    };
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Rejects (skips) the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).into(),
            ));
        }
    };
}

/// Picks one of several strategies (values must share a type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}
