//! String strategies from regex-like patterns.
//!
//! Upstream interprets `&str` strategies as full regexes. This shim supports
//! the patterns the workspace actually uses — `.{A,B}` (A..=B arbitrary
//! chars) — plus `.*`/`.+` fallbacks; anything else yields 0..=32 chars.

use crate::strategy::{Reason, Strategy};
use rand::rngs::StdRng;
use rand::Rng;

fn parse_len_range(pattern: &str) -> (usize, usize) {
    // ".{A,B}" — the only quantified form used in this workspace.
    if let Some(body) = pattern.strip_prefix(".{").and_then(|s| s.strip_suffix('}')) {
        if let Some((a, b)) = body.split_once(',') {
            if let (Ok(a), Ok(b)) = (a.trim().parse(), b.trim().parse()) {
                return (a, b);
            }
        } else if let Ok(n) = body.trim().parse() {
            return (n, n);
        }
    }
    match pattern {
        ".*" => (0, 32),
        ".+" => (1, 32),
        _ => (0, 32),
    }
}

fn arbitrary_char(rng: &mut StdRng) -> char {
    // Mostly printable ASCII, sometimes a wider scalar to exercise UTF-8.
    match rng.gen_range(0u32..8) {
        0 => loop {
            if let Some(c) = char::from_u32(rng.gen_range(0x80u32..0x1_0000)) {
                return c;
            }
        },
        1 => char::from_u32(rng.gen_range(0x1_0000u32..0x2_0000)).unwrap_or('\u{10000}'),
        _ => char::from(rng.gen_range(0x20u8..0x7f)),
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn try_new_value(&self, rng: &mut StdRng) -> Result<String, Reason> {
        let (min, max) = parse_len_range(self);
        let len = rng.gen_range(min..=max);
        Ok((0..len).map(|_| arbitrary_char(rng)).collect())
    }
}
