//! Mobile break-in schedules and memory-corruption modes (§2.1–2.2: the
//! adversary "may break into nodes and leave nodes at will" and "may also
//! modify the internal state").

use proauth_core::authenticator::AlProtocol;
use proauth_core::uls::UlsNode;
use proauth_sim::adversary::{BreakPlan, NetView, UlAdversary};
use proauth_sim::clock::TimeView;
use proauth_sim::message::{Envelope, NodeId};
use proauth_telemetry as telemetry;
use std::any::Any;

/// What the adversary does to a broken node's memory each round.
pub enum CorruptMode {
    /// Read-only espionage (key exposure without modification).
    Spy,
    /// Erase all volatile secrets.
    Wipe,
    /// Silently overwrite the PDS share with garbage.
    GarbleShare(u64),
    /// Arbitrary custom corruption.
    Custom(CustomCorrupt),
}

/// Boxed callback for [`CorruptMode::Custom`]: receives the broken node's
/// id, its downcastable state, and the current time view.
pub type CustomCorrupt = Box<dyn FnMut(NodeId, &mut dyn Any, &TimeView)>;

impl std::fmt::Debug for CorruptMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorruptMode::Spy => write!(f, "Spy"),
            CorruptMode::Wipe => write!(f, "Wipe"),
            CorruptMode::GarbleShare(g) => write!(f, "GarbleShare({g})"),
            CorruptMode::Custom(_) => write!(f, "Custom"),
        }
    }
}

/// One scheduled visit: break into `node` at `break_at`, leave at `leave_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Visit {
    /// Target node.
    pub node: NodeId,
    /// Round the break-in starts.
    pub break_at: u64,
    /// Round the adversary leaves.
    pub leave_at: u64,
}

/// A mobile break-in adversary following a fixed visit schedule, with
/// faithful delivery (isolating the effect of break-ins).
pub struct MobileBreakins<A: AlProtocol> {
    /// The visit schedule.
    pub visits: Vec<Visit>,
    /// Memory corruption applied while inside.
    pub mode: CorruptMode,
    _marker: std::marker::PhantomData<A>,
}

impl<A: AlProtocol> std::fmt::Debug for MobileBreakins<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MobileBreakins({} visits, {:?})", self.visits.len(), self.mode)
    }
}

impl<A: AlProtocol> MobileBreakins<A> {
    /// Creates the adversary.
    pub fn new(visits: Vec<Visit>, mode: CorruptMode) -> Self {
        MobileBreakins {
            visits,
            mode,
            _marker: std::marker::PhantomData,
        }
    }

    /// A rotation schedule: visit `k` nodes per time unit (round-robin over
    /// all `n`), breaking in at `offset` rounds into each unit for `dwell`
    /// rounds.
    pub fn rotating(
        n: usize,
        k: usize,
        units: u64,
        unit_rounds: u64,
        offset: u64,
        dwell: u64,
        mode: CorruptMode,
    ) -> Self {
        let mut visits = Vec::new();
        let mut next = 0usize;
        for u in 0..units {
            for _ in 0..k {
                let node = NodeId::from_idx(next % n);
                next += 1;
                visits.push(Visit {
                    node,
                    break_at: u * unit_rounds + offset,
                    leave_at: u * unit_rounds + offset + dwell,
                });
            }
        }
        Self::new(visits, mode)
    }
}

impl<A: AlProtocol> UlAdversary for MobileBreakins<A> {
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        let round = view.time.round;
        let mut plan = BreakPlan::none();
        for v in &self.visits {
            if v.break_at == round {
                plan.break_into.push(v.node);
            }
            if v.leave_at == round {
                plan.leave.push(v.node);
            }
        }
        plan
    }

    fn corrupt(&mut self, node: NodeId, state: &mut dyn Any, time: &TimeView) {
        match &mut self.mode {
            CorruptMode::Spy => telemetry::count("adversary/spied", 1),
            CorruptMode::Wipe => {
                if let Some(n) = state.downcast_mut::<UlsNode<A>>() {
                    n.corrupt_wipe();
                    telemetry::count("adversary/wipes", 1);
                }
            }
            CorruptMode::GarbleShare(g) => {
                if let Some(n) = state.downcast_mut::<UlsNode<A>>() {
                    n.corrupt_garble_share(*g);
                    telemetry::count("adversary/garbled_shares", 1);
                }
            }
            CorruptMode::Custom(f) => f(node, state, time),
        }
    }

    fn deliver(&mut self, sent: &[Envelope], _view: &NetView<'_>) -> Vec<Envelope> {
        sent.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proauth_core::authenticator::NullApp;

    #[test]
    fn rotating_schedule_covers_nodes_round_robin() {
        let adv = MobileBreakins::<NullApp>::rotating(5, 2, 3, 100, 10, 5, CorruptMode::Spy);
        assert_eq!(adv.visits.len(), 6);
        assert_eq!(adv.visits[0].node, NodeId(1));
        assert_eq!(adv.visits[1].node, NodeId(2));
        assert_eq!(adv.visits[2].node, NodeId(3)); // unit 1 continues rotation
        assert_eq!(adv.visits[2].break_at, 110);
        assert_eq!(adv.visits[2].leave_at, 115);
    }

    #[test]
    fn plan_fires_on_schedule() {
        let mut adv = MobileBreakins::<NullApp>::new(
            vec![Visit {
                node: NodeId(2),
                break_at: 4,
                leave_at: 7,
            }],
            CorruptMode::Spy,
        );
        let sched = proauth_sim::clock::Schedule::new(10, 2, 2);
        let mk = |round| NetView {
            time: proauth_sim::clock::TimeView::at(&sched, round),
            n: 3,
            broken: &[false; 3],
            crashed: &[false; 3],
            operational: &[true; 3],
            last_delivered: &[],
            broken_inboxes: &[],
        };
        assert_eq!(adv.plan(&mk(4)).break_into, vec![NodeId(2)]);
        assert!(adv.plan(&mk(5)).break_into.is_empty());
        assert_eq!(adv.plan(&mk(7)).leave, vec![NodeId(2)]);
    }
}
