//! The collector-side observability plane: the live merged registry, beacon
//! and alarm state, Definition-7 budget accounting, the cluster-trace
//! assembler, and the status-socket renderers (Prometheus exposition, JSON
//! snapshot, `top` scoreboard).
//!
//! # Live state vs. trace state
//!
//! Two stores deliberately coexist:
//!
//! * [`LiveState`] applies every metrics delta the moment it arrives —
//!   including the wall-clock-dependent `net/*` transport counters — because
//!   an operator polling the status socket wants *now*, not the last round
//!   barrier;
//! * [`TraceAssembler`] buffers per-`(node, round)` deltas and trace blobs
//!   and replays them in the engine's exact order (rounds in sequence, node
//!   shards in `NodeId` order), **excluding** `net/*` counters — those exist
//!   only in daemon mode, so admitting them would break the golden-trace
//!   guarantee that a stripped daemon trace is byte-identical to the
//!   in-process engine's.
//!
//! # Status protocol
//!
//! One request per connection, newline-terminated: `metrics` (Prometheus
//! text exposition), `json` (snapshot object), or `top` (pre-rendered
//! scoreboard). The response is written and the connection closed — no
//! framing, so `nc`/`curl --unix-socket` style tooling works.

use super::msg::{Alarm, HealthBeacon, Severity};
use super::peer::NetStream;
use crate::clock::{Phase, Schedule, TimeView};
use proauth_telemetry::{
    self as telemetry, intern_name, MetricsDelta, MetricsSnapshot, PhaseTimer, Registry, Telemetry,
};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long a status connection may live before the collector sweeps it. A
/// scraper that connects and then stalls (never sends its newline, never
/// drains the response) would otherwise hold its slot forever — and since a
/// silent socket never wakes the poll loop, the deadline is enforced by the
/// collector's sweep, not by `drive`.
const STATUS_CONN_DEADLINE: Duration = Duration::from_secs(2);

/// Counter names excluded from trace synthesis: the daemon-only transport
/// layer. Everything under this prefix is wall-clock- and deployment-
/// dependent, so it may appear in the live registry and the exposition but
/// never in the golden trace.
const TRACE_EXCLUDE_PREFIX: &str = "net/";

/// Scenario parameters the collector needs to synthesize the engine's trace
/// framing (`run_start`, phase spans, `round_start`/`round_end`, `unit_end`,
/// `run_end`) around the nodes' streamed shard blobs.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Network size.
    pub n: usize,
    /// Operational threshold `s` (the engine stamps it into `run_start`).
    pub s: usize,
    /// Master seed.
    pub seed: u64,
    /// Round/unit layout (Fig. 1).
    pub schedule: Schedule,
    /// Adversary-free setup rounds.
    pub setup_rounds: u64,
    /// Post-setup rounds.
    pub total_rounds: u64,
}

/// Per-round buffered node contributions, held until every node's beacon for
/// the round has arrived.
#[derive(Debug, Default, Clone)]
struct PendingRound {
    /// Trace-event bytes per node (index = node idx).
    blobs: Vec<Option<Vec<u8>>>,
    /// Metrics delta per node.
    deltas: Vec<Option<MetricsDelta>>,
    /// `(sent_round, alerts_round)` per node, set by the beacon — beacon
    /// presence is the round-complete signal (stream FIFO order guarantees
    /// the trace and metrics frames preceded it).
    stats: Vec<Option<(u64, u64)>>,
}

impl PendingRound {
    fn sized(n: usize) -> Self {
        PendingRound {
            blobs: vec![None; n],
            deltas: vec![None; n],
            stats: vec![None; n],
        }
    }
}

/// Rebuilds the engine's flight-recorder trace from the per-node streams:
/// rounds strictly in order, node shards in `NodeId` order, engine framing
/// synthesized from [`TraceSpec`]. The output (stripped of `wall_*` fields)
/// is byte-identical to an in-process run of the same scenario — the
/// golden-trace guarantee extended to daemon mode.
pub struct TraceAssembler {
    spec: TraceSpec,
    tele: Telemetry,
    buf: Arc<Mutex<Vec<u8>>>,
    phase: PhaseTimer,
    pending: BTreeMap<u64, PendingRound>,
    next_round: u64,
    started: bool,
    finished: bool,
    total_sent: u64,
    total_alerts: u64,
}

impl TraceAssembler {
    /// A fresh assembler writing to an in-memory sink.
    pub fn new(spec: TraceSpec) -> Self {
        let (tele, buf) = Telemetry::with_memory_sink();
        TraceAssembler {
            spec,
            tele,
            buf,
            phase: PhaseTimer::default(),
            pending: BTreeMap::new(),
            next_round: 0,
            started: false,
            finished: false,
            total_sent: 0,
            total_alerts: 0,
        }
    }

    fn slot(&mut self, round: u64) -> Option<&mut PendingRound> {
        if round < self.next_round || round >= self.spec.total_rounds {
            return None;
        }
        let n = self.spec.n;
        Some(
            self.pending
                .entry(round)
                .or_insert_with(|| PendingRound::sized(n)),
        )
    }

    /// Buffers one node's trace blob for `round`.
    pub fn on_trace(&mut self, idx: usize, round: u64, events: Vec<u8>) {
        if let Some(slot) = self.slot(round) {
            if idx < slot.blobs.len() {
                slot.blobs[idx] = Some(events);
            }
        }
    }

    /// Buffers one node's metrics delta for `round`.
    pub fn on_metrics(&mut self, idx: usize, round: u64, delta: &MetricsDelta) {
        if let Some(slot) = self.slot(round) {
            if idx < slot.deltas.len() {
                slot.deltas[idx] = Some(delta.clone());
            }
        }
    }

    /// Records one node's beacon (the round-complete signal) and advances
    /// the assembly as far as completed rounds allow.
    pub fn on_beacon(&mut self, idx: usize, beacon: &HealthBeacon) {
        if let Some(slot) = self.slot(beacon.round) {
            if idx < slot.stats.len() {
                slot.stats[idx] = Some((beacon.sent_round, beacon.alerts_round));
            }
        }
        self.advance();
    }

    fn advance(&mut self) {
        while self.next_round < self.spec.total_rounds {
            let complete = self
                .pending
                .get(&self.next_round)
                .is_some_and(|p| p.stats.iter().all(Option::is_some));
            if !complete {
                return;
            }
            let slot = self.pending.remove(&self.next_round).expect("checked");
            self.emit_round(self.next_round, slot);
            self.next_round += 1;
        }
        self.finish();
    }

    fn emit_round(&mut self, round: u64, slot: PendingRound) {
        if !self.started {
            self.started = true;
            let spec = &self.spec;
            self.tele.emit_event("run_start", |ev| {
                ev.u64("n", spec.n as u64)
                    .u64("s", spec.s as u64)
                    .u64("seed", spec.seed)
                    .u64("setup_rounds", spec.setup_rounds)
                    .u64("total_rounds", spec.total_rounds)
                    .u64("unit_rounds", spec.schedule.unit_rounds)
                    .u64("part1_rounds", spec.schedule.part1_rounds)
                    .u64("part2_rounds", spec.schedule.part2_rounds);
            });
        }
        let time = TimeView::at(&self.spec.schedule, round);
        let label = match time.phase {
            Phase::RefreshPart1 { .. } => telemetry::PHASE_REFRESH1,
            Phase::RefreshPart2 { .. } => telemetry::PHASE_REFRESH2,
            Phase::Normal => telemetry::PHASE_NORMAL,
        };
        self.phase.on_round(&self.tele, round, time.unit, label);
        self.tele.emit_event("round_start", |ev| {
            ev.u64("round", round)
                .u64("unit", time.unit)
                .u64("auth_unit", time.auth_unit)
                .str("phase", label)
                .u64("round_in_unit", time.round_in_unit);
        });
        // Node contributions in NodeId order — the same merge order the
        // engine uses at its round barrier.
        let mut sent = 0u64;
        let mut alerts = 0u64;
        for idx in 0..self.spec.n {
            if let Some(blob) = &slot.blobs[idx] {
                self.tele.append_raw(blob);
            }
            if let Some(delta) = &slot.deltas[idx] {
                apply_filtered(delta, &self.tele);
            }
            if let Some((s, a)) = slot.stats[idx] {
                sent += s;
                alerts += a;
            }
        }
        self.total_sent += sent;
        self.total_alerts += alerts;
        // Faithful-run footer: the daemon has no in-band adversary, so
        // delivered == sent and the interference fields are zero (chaos runs
        // are never trace-compared). `wall_ns` is stripped before comparison.
        self.tele.emit_event("round_end", |ev| {
            ev.u64("round", round)
                .u64("sent", sent)
                .u64("delivered", sent)
                .u64("dropped", 0)
                .u64("injected", 0)
                .u64("modified", 0)
                .u64("alerts", alerts)
                .u64("broken", 0)
                .u64("crashed", 0)
                .u64("wall_ns", 0);
        });
        if time.round_in_unit + 1 == self.spec.schedule.unit_rounds
            || round + 1 == self.spec.total_rounds
        {
            self.tele.unit_mark(time.unit);
        }
    }

    fn finish(&mut self) {
        if self.finished || !self.started {
            return;
        }
        self.finished = true;
        self.phase.finish(&self.tele, self.spec.total_rounds);
        let (rounds, sent, alerts) = (self.spec.total_rounds, self.total_sent, self.total_alerts);
        self.tele.emit_event("run_end", |ev| {
            ev.u64("rounds", rounds)
                .u64("sent", sent)
                .u64("delivered", sent)
                .u64("dropped", 0)
                .u64("injected", 0)
                .u64("modified", 0)
                .u64("alerts", alerts);
        });
        self.tele.flush();
    }

    /// Whether every round has been emitted and the trace closed.
    pub fn complete(&self) -> bool {
        self.finished
    }

    /// The assembled trace so far, as JSONL.
    pub fn contents(&self) -> String {
        telemetry::memory_contents(&self.buf)
    }
}

/// Applies a delta to the assembler's registry, excluding the daemon-only
/// transport counters.
fn apply_filtered(delta: &MetricsDelta, tele: &Telemetry) {
    for (name, v) in &delta.counters {
        if !name.starts_with(TRACE_EXCLUDE_PREFIX) {
            tele.add(intern_name(name), *v);
        }
    }
    for (name, v) in &delta.maxes {
        if !name.starts_with(TRACE_EXCLUDE_PREFIX) {
            tele.gauge_max(intern_name(name), *v);
        }
    }
    // Histograms never enter trace events or unit marks; skipping them keeps
    // the assembler registry minimal.
}

/// Per-node liveness state derived from the beacon stream.
#[derive(Debug, Clone, Default)]
pub struct NodeHealth {
    /// The node's most recent beacon.
    pub last: HealthBeacon,
    /// When the first beacon arrived (rate base).
    first_at: Option<(u64, Instant)>,
    /// When the most recent beacon arrived.
    last_at: Option<Instant>,
    /// Beacons received in total.
    pub beacons: u64,
}

impl NodeHealth {
    /// Average rounds per second across the beacon history.
    pub fn rounds_per_sec(&self) -> f64 {
        let (Some((r0, t0)), Some(t1)) = (self.first_at, self.last_at) else {
            return 0.0;
        };
        let secs = t1.duration_since(t0).as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        (self.last.round.saturating_sub(r0)) as f64 / secs
    }
}

/// The cluster-wide live observability state: merged registry, per-node
/// registries and health, the alarm log, and Definition-7 budget accounting.
pub struct LiveState {
    /// Network size.
    n: usize,
    /// Impairment budget `t`: more than `t` distinct impaired nodes in one
    /// unit raises a `budget_exceeded` alarm.
    t: usize,
    /// Rounds per unit (for assigning beacons/alarms to units).
    unit_rounds: u64,
    /// Cluster-wide merged registry (all deltas, including `net/*`).
    pub merged: Registry,
    /// Per-node registries.
    pub per_node: Vec<Registry>,
    /// Per-node beacon-derived health.
    pub health: Vec<NodeHealth>,
    /// Every alarm observed or raised, in arrival order.
    pub alarms: Vec<Alarm>,
    /// Distinct impaired nodes per unit.
    unit_impaired: BTreeMap<u64, BTreeSet<u32>>,
    /// Units whose budget alarm already fired.
    budget_fired: BTreeSet<u64>,
    /// Last seen cumulative `(late_frames, mark_timeouts)` per node, for
    /// detecting fresh impairment from beacons.
    last_transport: Vec<(u64, u64)>,
}

impl LiveState {
    /// Fresh state for an `n`-node deployment under budget `t`.
    pub fn new(n: usize, t: usize, unit_rounds: u64) -> Self {
        LiveState {
            n,
            t,
            unit_rounds: unit_rounds.max(1),
            merged: Registry::default(),
            per_node: (0..n).map(|_| Registry::default()).collect(),
            health: vec![NodeHealth::default(); n],
            alarms: Vec::new(),
            unit_impaired: BTreeMap::new(),
            budget_fired: BTreeSet::new(),
            last_transport: vec![(0, 0); n],
        }
    }

    /// Applies one node's metrics delta to the live stores.
    pub fn on_metrics(&mut self, idx: usize, delta: &MetricsDelta) {
        delta.apply_to(&self.merged);
        if let Some(reg) = self.per_node.get(idx) {
            delta.apply_to(reg);
        }
    }

    /// Records a beacon: health bookkeeping plus impairment detection. A
    /// node whose barrier gave up on a peer's mark lost round alignment and
    /// was disrupted this unit; frames it merely *received* late charge the
    /// slipped sender (whose own telemetry shows it), not this receiver.
    pub fn on_beacon(&mut self, idx: usize, beacon: HealthBeacon) {
        if idx >= self.n {
            return;
        }
        let now = Instant::now();
        let unit = beacon.round / self.unit_rounds;
        let h = &mut self.health[idx];
        if h.first_at.is_none() {
            h.first_at = Some((beacon.round, now));
        }
        h.last_at = Some(now);
        h.beacons += 1;
        let (late0, to0) = self.last_transport[idx];
        let disrupted = beacon.mark_timeouts > to0;
        self.last_transport[idx] = (late0.max(beacon.late_frames), beacon.mark_timeouts);
        let node = beacon.node;
        h.last = beacon;
        if disrupted {
            self.mark_impaired(unit, node);
        }
    }

    /// Records a node-originated alarm; warning-or-worse alarms count the
    /// node as impaired for the unit the alarmed round falls in — except
    /// `forgery_reject`: rejecting a forged or round-stale frame indicts the
    /// sender (who is charged through its own alarms), not the rejector,
    /// whose protocol state is untouched by the drop.
    pub fn on_alarm(&mut self, alarm: Alarm) {
        if alarm.severity >= Severity::Warning
            && alarm.node != 0
            && alarm.kind != "forgery_reject"
        {
            let unit = alarm.round / self.unit_rounds;
            self.mark_impaired(unit, alarm.node);
        }
        self.alarms.push(alarm);
    }

    /// Marks `node` impaired in `unit` and fires the budget alarm the first
    /// time the unit's distinct-impaired count crosses `t`.
    fn mark_impaired(&mut self, unit: u64, node: u32) {
        let set = self.unit_impaired.entry(unit).or_default();
        set.insert(node);
        let count = set.len();
        if count > self.t && self.budget_fired.insert(unit) {
            self.alarms.push(Alarm {
                node: 0,
                round: unit.saturating_mul(self.unit_rounds),
                severity: Severity::Critical,
                kind: "budget_exceeded".to_owned(),
                detail: format!("unit {unit}: {count} impaired nodes > budget t={}", self.t),
            });
        }
    }

    /// Alarm counts by severity label.
    pub fn alarm_counts(&self) -> BTreeMap<&'static str, u64> {
        let mut counts = BTreeMap::new();
        for a in &self.alarms {
            *counts.entry(a.severity.label()).or_insert(0) += 1;
        }
        counts
    }

    /// Distinct impaired nodes per unit — the collector's live Definition-7
    /// accounting, for comparison against engine-side ground truth.
    pub fn unit_impairments(&self) -> BTreeMap<u64, Vec<u32>> {
        self.unit_impaired
            .iter()
            .map(|(u, s)| (*u, s.iter().copied().collect()))
            .collect()
    }

    /// The highest unit with impairment bookkeeping, with its distinct
    /// impaired-node count (0,0 when nothing was ever impaired).
    pub fn budget_state(&self) -> (u64, usize) {
        self.unit_impaired
            .iter()
            .next_back()
            .map(|(u, s)| (*u, s.len()))
            .unwrap_or((0, 0))
    }

    /// Renders the Prometheus-style text exposition: merged counters and
    /// gauges, per-node counters as labeled series, histogram count/sum
    /// pairs, beacon-derived per-node gauges, and alarm totals.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let merged = self.merged.snapshot();
        let node_snaps: Vec<MetricsSnapshot> =
            self.per_node.iter().map(Registry::snapshot).collect();
        for (name, v) in &merged.counters {
            let metric = prom_name(name);
            out.push_str(&format!("# TYPE {metric} counter\n{metric} {v}\n"));
            for (idx, snap) in node_snaps.iter().enumerate() {
                if let Some(nv) = snap.counters.get(name) {
                    out.push_str(&format!("{metric}{{node=\"{}\"}} {nv}\n", idx + 1));
                }
            }
        }
        for (name, v) in &merged.maxes {
            let metric = prom_name(name);
            out.push_str(&format!("# TYPE {metric} gauge\n{metric} {v}\n"));
        }
        for (name, h) in merged.hists.iter().chain(merged.value_hists.iter()) {
            let metric = prom_name(name);
            out.push_str(&format!(
                "# TYPE {metric} summary\n{metric}_count {}\n{metric}_sum {}\n",
                h.total, h.sum_ns
            ));
        }
        for (idx, h) in self.health.iter().enumerate() {
            if h.beacons == 0 {
                continue;
            }
            let node = idx + 1;
            let b = &h.last;
            out.push_str(&format!(
                "proauth_node_round{{node=\"{node}\"}} {}\n\
                 proauth_node_round_ms{{node=\"{node}\"}} {}\n\
                 proauth_node_lag_ms{{node=\"{node}\"}} {}\n\
                 proauth_node_inbox_depth{{node=\"{node}\"}} {}\n\
                 proauth_node_peers_live{{node=\"{node}\"}} {}\n\
                 proauth_node_beacons{{node=\"{node}\"}} {}\n",
                b.round, b.round_ms, b.lag_ms, b.inbox_depth, b.peers_live, h.beacons
            ));
        }
        let counts = self.alarm_counts();
        out.push_str("# TYPE proauth_alarms_total counter\n");
        for label in ["info", "warning", "critical"] {
            out.push_str(&format!(
                "proauth_alarms_total{{severity=\"{label}\"}} {}\n",
                counts.get(label).copied().unwrap_or(0)
            ));
        }
        let (unit, impaired) = self.budget_state();
        out.push_str(&format!(
            "proauth_budget_unit {unit}\nproauth_budget_impaired {impaired}\nproauth_budget_t {}\n",
            self.t
        ));
        out
    }

    /// Renders the JSON snapshot: merged counters, per-node health, alarms,
    /// budget state.
    pub fn render_json(&self) -> String {
        let merged = self.merged.snapshot();
        let mut out = String::from("{");
        out.push_str(&format!("\"n\":{},\"t\":{},", self.n, self.t));
        out.push_str("\"counters\":{");
        let mut first = true;
        for (name, v) in &merged.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{v}", json_escape(name)));
        }
        out.push_str("},\"nodes\":[");
        for (idx, h) in self.health.iter().enumerate() {
            if idx > 0 {
                out.push(',');
            }
            let b = &h.last;
            out.push_str(&format!(
                "{{\"node\":{},\"round\":{},\"round_ms\":{},\"lag_ms\":{},\
                 \"inbox_depth\":{},\"late_frames\":{},\"mark_timeouts\":{},\
                 \"peers_live\":{},\"beacons\":{},\"rounds_per_sec\":{:.2}}}",
                idx + 1,
                b.round,
                b.round_ms,
                b.lag_ms,
                b.inbox_depth,
                b.late_frames,
                b.mark_timeouts,
                b.peers_live,
                h.beacons,
                h.rounds_per_sec()
            ));
        }
        out.push_str("],\"alarms\":[");
        for (k, a) in self.alarms.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"node\":{},\"round\":{},\"severity\":\"{}\",\"kind\":\"{}\",\"detail\":\"{}\"}}",
                a.node,
                a.round,
                a.severity.label(),
                json_escape(&a.kind),
                json_escape(&a.detail)
            ));
        }
        let (unit, impaired) = self.budget_state();
        out.push_str(&format!(
            "],\"budget\":{{\"unit\":{unit},\"impaired\":{impaired},\"t\":{},\"exceeded\":{}}}}}",
            self.t,
            impaired > self.t
        ));
        out
    }

    /// Renders the scoreboard the `proauth top` subcommand displays: one row
    /// per node plus cluster summary and recent alarms.
    pub fn render_top(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "proauth cluster status — {} nodes, budget t={}\n\n",
            self.n, self.t
        ));
        out.push_str(
            "node   round  rnd/s   round_ms  lag_ms  inbox  late  tmout  peers  beacons\n",
        );
        for (idx, h) in self.health.iter().enumerate() {
            let b = &h.last;
            out.push_str(&format!(
                "{:<5}  {:<5}  {:<6.1}  {:<8}  {:<6}  {:<5}  {:<4}  {:<5}  {:<5}  {}\n",
                idx + 1,
                b.round,
                h.rounds_per_sec(),
                b.round_ms,
                b.lag_ms,
                b.inbox_depth,
                b.late_frames,
                b.mark_timeouts,
                b.peers_live,
                h.beacons
            ));
        }
        let merged = self.merged.snapshot();
        let accepted = merged.counters.get("uls/accepted").copied().unwrap_or(0);
        let rejected = merged.counters.get("uls/rejected").copied().unwrap_or(0);
        let alerts = merged.counters.get("uls/alerts").copied().unwrap_or(0);
        out.push_str(&format!(
            "\ncluster: accepted={accepted} rejected={rejected} alerts={alerts}\n"
        ));
        let (unit, impaired) = self.budget_state();
        out.push_str(&format!(
            "budget:  unit={unit} impaired={impaired}/{} {}\n",
            self.t,
            if impaired > self.t {
                "EXCEEDED"
            } else {
                "within budget"
            }
        ));
        let counts = self.alarm_counts();
        out.push_str(&format!(
            "alarms:  info={} warning={} critical={}\n",
            counts.get("info").copied().unwrap_or(0),
            counts.get("warning").copied().unwrap_or(0),
            counts.get("critical").copied().unwrap_or(0)
        ));
        for a in self.alarms.iter().rev().take(8).rev() {
            out.push_str(&format!(
                "  [{}] node {} round {}: {} ({})\n",
                a.severity.label(),
                a.node,
                a.round,
                a.kind,
                a.detail
            ));
        }
        out
    }
}

/// Mangles a registry metric name into a Prometheus-legal one.
fn prom_name(name: &str) -> String {
    let mangled: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("proauth_{mangled}")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One status-socket connection: reads a newline-terminated request, writes
/// the rendered response, closes. Nonblocking, driven by the collector's
/// poll loop.
pub struct StatusConn {
    stream: NetStream,
    inbuf: Vec<u8>,
    out: Vec<u8>,
    pos: usize,
    /// When the connection was accepted; past the deadline it is swept.
    born: Instant,
    deadline: Duration,
    /// Response fully written (or the peer vanished) — drop me.
    pub done: bool,
}

impl StatusConn {
    /// Wraps a freshly accepted stream.
    pub fn new(stream: NetStream) -> Self {
        Self::with_deadline(stream, STATUS_CONN_DEADLINE)
    }

    /// Wraps a stream with an explicit lifetime deadline (tests).
    pub fn with_deadline(stream: NetStream, deadline: Duration) -> Self {
        StatusConn {
            stream,
            inbuf: Vec::new(),
            out: Vec::new(),
            pos: 0,
            born: Instant::now(),
            deadline,
            done: false,
        }
    }

    /// Whether the connection has outlived its deadline. The collector's
    /// sweep drops expired connections — a stalled scraper (silent socket,
    /// so no poll wake-up ever fires for it) cannot wedge the poll loop or
    /// hold its slot forever.
    pub fn expired(&self) -> bool {
        self.born.elapsed() > self.deadline
    }

    /// The raw descriptor for the poll set; poll for writability once a
    /// response is pending.
    pub fn raw_fd(&self) -> std::os::fd::RawFd {
        self.stream.raw_fd()
    }

    /// Whether the connection waits to write.
    pub fn wants_write(&self) -> bool {
        !self.out.is_empty() && self.pos < self.out.len()
    }

    /// Advances the connection: reads request bytes until the newline, then
    /// renders via `render` and writes the response out.
    pub fn drive(&mut self, state: &LiveState) {
        if self.done {
            return;
        }
        if self.out.is_empty() {
            let mut chunk = [0u8; 256];
            loop {
                match self.stream.read(&mut chunk) {
                    Ok(0) => {
                        self.done = true;
                        return;
                    }
                    Ok(k) => {
                        self.inbuf.extend_from_slice(&chunk[..k]);
                        if self.inbuf.len() > 4096 {
                            self.done = true;
                            return;
                        }
                        if self.inbuf.contains(&b'\n') {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                    Err(_) => {
                        self.done = true;
                        return;
                    }
                }
            }
            let line = self
                .inbuf
                .split(|&b| b == b'\n')
                .next()
                .unwrap_or_default();
            let request = String::from_utf8_lossy(line);
            let response = match request.trim() {
                "metrics" => state.render_prometheus(),
                "json" => state.render_json(),
                "top" => state.render_top(),
                other => format!("error: unknown request '{other}' (want metrics|json|top)\n"),
            };
            self.out = response.into_bytes();
        }
        while self.pos < self.out.len() {
            match self.stream.write(&self.out[self.pos..]) {
                Ok(0) => {
                    self.done = true;
                    return;
                }
                Ok(k) => self.pos += k,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    self.done = true;
                    return;
                }
            }
        }
        let _ = self.stream.flush();
        self.done = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beacon(node: u32, round: u64) -> HealthBeacon {
        HealthBeacon {
            node,
            round,
            round_ms: 250,
            peers_live: 2,
            sent_round: 6,
            alerts_round: 0,
            ..HealthBeacon::default()
        }
    }

    #[test]
    fn live_state_merges_and_budgets() {
        let mut st = LiveState::new(3, 1, 10);
        let mut delta = MetricsDelta::default();
        delta.counters.insert("uls/accepted".into(), 5);
        st.on_metrics(0, &delta);
        st.on_metrics(1, &delta);
        assert_eq!(st.merged.counter("uls/accepted"), 10);
        assert_eq!(st.per_node[0].counter("uls/accepted"), 5);

        // Two nodes with fresh mark timeouts in the same unit beat t=1.
        let mut b1 = beacon(1, 3);
        b1.mark_timeouts = 1;
        st.on_beacon(0, b1);
        assert!(st.alarms.is_empty());
        let mut b2 = beacon(2, 4);
        b2.mark_timeouts = 2;
        st.on_beacon(1, b2);
        assert_eq!(st.alarms.len(), 1);
        assert_eq!(st.alarms[0].kind, "budget_exceeded");
        assert_eq!(st.alarms[0].severity, Severity::Critical);
        // Fires once per unit.
        let mut b3 = beacon(3, 5);
        b3.mark_timeouts = 1;
        st.on_beacon(2, b3);
        assert_eq!(st.alarms.len(), 1);
        let (unit, impaired) = st.budget_state();
        assert_eq!((unit, impaired), (0, 3));
    }

    #[test]
    fn node_alarms_count_toward_budget() {
        let mut st = LiveState::new(2, 0, 10);
        st.on_alarm(Alarm {
            node: 2,
            round: 12,
            severity: Severity::Warning,
            kind: "uls_alert".into(),
            detail: "uls/alerts +1".into(),
        });
        assert_eq!(st.alarms.len(), 2); // the alarm itself + budget_exceeded
        assert!(st.alarms.iter().any(|a| a.kind == "budget_exceeded"));
        let (unit, impaired) = st.budget_state();
        assert_eq!((unit, impaired), (1, 1));
    }

    #[test]
    fn forgery_rejection_does_not_impair_the_rejector() {
        // A node dropping forged/round-stale frames is the protocol working;
        // it must not eat into the unit's Definition-7 budget.
        let mut st = LiveState::new(2, 0, 10);
        st.on_alarm(Alarm {
            node: 2,
            round: 12,
            severity: Severity::Warning,
            kind: "forgery_reject".into(),
            detail: "uls/rejected +3".into(),
        });
        assert_eq!(st.alarms.len(), 1); // the alarm alone, no budget breach
        let (_, impaired) = st.budget_state();
        assert_eq!(impaired, 0);
        // Late frames *received* don't impair the receiver either.
        let mut b = beacon(1, 12);
        b.late_frames = 9;
        st.on_beacon(0, b);
        let (_, impaired) = st.budget_state();
        assert_eq!(impaired, 0);
    }

    #[test]
    fn renders_are_well_formed() {
        let mut st = LiveState::new(2, 1, 10);
        let mut delta = MetricsDelta::default();
        delta.counters.insert("uls/accepted".into(), 3);
        delta.maxes.insert("engine/peak".into(), 9);
        st.on_metrics(0, &delta);
        st.on_beacon(0, beacon(1, 2));
        let prom = st.render_prometheus();
        assert!(prom.contains("proauth_uls_accepted 3"));
        assert!(prom.contains("proauth_uls_accepted{node=\"1\"} 3"));
        assert!(prom.contains("proauth_node_round{node=\"1\"} 2"));
        assert!(prom.contains("proauth_budget_t 1"));
        let json = st.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"uls/accepted\":3"));
        assert!(json.contains("\"exceeded\":false"));
        let top = st.render_top();
        assert!(top.contains("within budget"));
    }

    #[test]
    fn trace_assembler_orders_rounds_and_nodes() {
        use crate::clock::Schedule;
        let spec = TraceSpec {
            n: 2,
            s: 2,
            seed: 7,
            schedule: Schedule::new(4, 1, 1),
            setup_rounds: 2,
            total_rounds: 4,
        };
        let mut asm = TraceAssembler::new(spec);
        // Node 2 races ahead; rounds must still come out in order with node
        // blobs in NodeId order.
        for r in 0..4u64 {
            asm.on_trace(1, r, format!("{{\"ev\":\"x\",\"node\":2,\"round\":{r}}}\n").into_bytes());
            asm.on_beacon(1, &beacon(2, r));
        }
        assert!(!asm.complete());
        assert_eq!(asm.contents(), "");
        for r in 0..4u64 {
            asm.on_trace(0, r, format!("{{\"ev\":\"x\",\"node\":1,\"round\":{r}}}\n").into_bytes());
            asm.on_beacon(0, &beacon(1, r));
        }
        assert!(asm.complete());
        let trace = asm.contents();
        let lines: Vec<&str> = trace.lines().collect();
        assert!(lines[0].starts_with("{\"ev\":\"run_start\",\"n\":2"));
        assert!(trace.ends_with("\"alerts\":0}\n"));
        let n1 = trace.find("\"node\":1,\"round\":0").expect("node 1 round 0");
        let n2 = trace.find("\"node\":2,\"round\":0").expect("node 2 round 0");
        assert!(n1 < n2, "node blobs must be in NodeId order");
        assert!(trace.contains("\"ev\":\"round_end\",\"round\":3"));
        assert!(trace.contains("\"ev\":\"unit_end\""));
    }
}
