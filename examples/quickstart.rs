//! Quickstart: a five-node network maintaining authenticated communication
//! over fully adversarial (here: faithful) links.
//!
//! ```text
//! cargo run -p proauth-examples --bin quickstart
//! ```
//!
//! Builds a ULS network (the paper's §4.2 construction), runs three time
//! units with proactive key refreshes in between, and reports the
//! authenticated heartbeat traffic that flowed.

use proauth_core::authenticator::HeartbeatApp;
use proauth_core::uls::{uls_schedule, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_sim::adversary::FaithfulUl;
use proauth_sim::message::{NodeId, OutputEvent};
use proauth_sim::runner::{run_ul, SimConfig};

fn main() {
    let n = 5;
    let t = 2;
    let schedule = uls_schedule(12);
    let units = 3;

    println!("proauth quickstart: n = {n}, t = {t}, {units} time units");
    println!("  unit length  : {} rounds", schedule.unit_rounds);
    println!(
        "  refresh phase: {} rounds (Part I {}, Part II {})",
        schedule.refresh_rounds(),
        schedule.part1_rounds,
        schedule.part2_rounds
    );

    let mut cfg = SimConfig::new(n, t, schedule);
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = schedule.unit_rounds * units;
    cfg.seed = 1;

    let group = Group::new(GroupId::Toy64);
    let result = run_ul(
        cfg,
        |id| UlsNode::new(UlsConfig::new(group.clone(), n, t), id, HeartbeatApp::default()),
        &mut FaithfulUl,
    );

    println!("\nper-node summary:");
    for id in NodeId::all(n) {
        let log = &result.outputs[id.idx()];
        let accepted = log
            .iter()
            .filter(|(_, e)| matches!(e, OutputEvent::Accepted { .. }))
            .count();
        let sent = log
            .iter()
            .filter(|(_, e)| matches!(e, OutputEvent::Sent { .. }))
            .count();
        let alerts = log.iter().filter(|(_, e)| *e == OutputEvent::Alert).count();
        println!(
            "  {id}: sent {sent} heartbeats, accepted {accepted} authenticated, alerts {alerts}"
        );
    }
    println!(
        "\nnetwork totals: {} messages sent, {} delivered, all nodes operational: {}",
        result.stats.messages_sent,
        result.stats.messages_delivered,
        result.final_operational.iter().all(|&b| b)
    );
    println!("three refreshes completed; the PDS verification key in ROM never changed.");
}
