//! E6 — §6 "Relaxations for small t": message complexity `O(n²)` vs `O(nt)`.
//!
//! Measures the actual number of physical messages per node per refresh
//! cycle under the full DISPERSE fan-out and the relaxed `2t+1` fan-out, as
//! `n` grows with `t` fixed. The paper's claim: per-node complexity drops
//! from `O(n²)` to `O(nt)` — so the *ratio* full/relaxed should grow
//! linearly in `n/t`.

use proauth_bench::print_table;
use proauth_core::authenticator::HeartbeatApp;
use proauth_core::disperse::DisperseMode;
use proauth_core::uls::{uls_schedule, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_sim::adversary::FaithfulUl;
use proauth_sim::runner::{run_ul, SimConfig};

const NORMAL: u64 = 4;

fn run_one(n: usize, t: usize, mode: DisperseMode, seed: u64) -> f64 {
    let sched = uls_schedule(NORMAL);
    let mut cfg = SimConfig::new(n, t, sched);
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = sched.unit_rounds * 2; // one full refresh cycle inside
    cfg.seed = seed;
    let group = Group::new(GroupId::Toy64);
    let result = run_ul(
        cfg,
        |id| {
            let mut c = UlsConfig::new(group.clone(), n, t);
            c.disperse = mode;
            UlsNode::new(c, id, HeartbeatApp::default())
        },
        &mut FaithfulUl,
    );
    result.stats.messages_sent as f64 / n as f64
}

fn main() {
    let t = 2usize;
    let mut rows = Vec::new();
    for n in [5usize, 9, 13, 17, 25] {
        let full = run_one(n, t, DisperseMode::Full, 61);
        let relaxed = run_one(n, t, DisperseMode::Relaxed { fanout: 2 * t + 1 }, 61);
        rows.push(vec![
            n.to_string(),
            t.to_string(),
            format!("{full:.0}"),
            format!("{relaxed:.0}"),
            format!("{:.2}", full / relaxed),
            format!("{:.2}", n as f64 / (2 * t + 2) as f64),
        ]);
    }
    print_table(
        "E6 / §6 — messages per node per run: full vs relaxed (2t+1) DISPERSE, t = 2",
        &[
            "n",
            "t",
            "full (O(n²))",
            "relaxed (O(nt))",
            "measured ratio",
            "n/(2t+2) (predicted ratio)",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: the relaxed fan-out's per-node cost grows linearly in n while the\n\
         full fan-out grows quadratically, so the ratio tracks ≈ n/(2t+2) — the paper's\n\
         O(n²) → O(nt) claim. (Deliveries still succeed: the 2t+1 lowest-indexed relays\n\
         preserve Lemma 15's common-neighbor argument.)"
    );
}
