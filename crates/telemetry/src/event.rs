//! JSONL event encoding for the flight recorder.
//!
//! One event is one JSON object on one line. The encoder is hand-rolled (no
//! external deps, like every other substrate in this workspace) and emits
//! fields in exactly the order they are added, so a given event sequence has
//! exactly one byte representation — that is what makes golden-trace
//! comparisons across engine configurations meaningful.
//!
//! # The `wall_` convention
//!
//! Field names starting with `wall_` carry wall-clock measurements (always
//! plain numbers). They are the only fields allowed to differ between two
//! runs of the same seed, and [`strip_wall_fields`] removes them so traces
//! can be compared byte-for-byte across worker-pool sizes.

use std::fmt::Write as _;

/// A dynamically-typed field value for [`crate::trace`] call sites.
#[derive(Debug, Clone, Copy)]
pub enum Field<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// String (JSON-escaped on encode).
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

/// Escapes `s` into `out` as JSON string contents (no surrounding quotes).
pub fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Builder for one JSONL event line. The event kind is always the first
/// field (`"ev"`), so every line starts `{"ev":"…"`.
#[derive(Debug)]
pub struct EventBuf {
    buf: String,
}

impl EventBuf {
    /// Starts an event of the given kind.
    pub fn new(kind: &str) -> Self {
        let mut buf = String::with_capacity(64);
        buf.push_str("{\"ev\":\"");
        escape_json(kind, &mut buf);
        buf.push('"');
        EventBuf { buf }
    }

    fn key(&mut self, name: &str) {
        self.buf.push_str(",\"");
        escape_json(name, &mut self.buf);
        self.buf.push_str("\":");
    }

    /// Adds an unsigned-integer field.
    pub fn u64(&mut self, name: &str, v: u64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a signed-integer field.
    pub fn i64(&mut self, name: &str, v: i64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a string field.
    pub fn str(&mut self, name: &str, v: &str) -> &mut Self {
        self.key(name);
        self.buf.push('"');
        escape_json(v, &mut self.buf);
        self.buf.push('"');
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, name: &str, v: bool) -> &mut Self {
        self.key(name);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a dynamically-typed field.
    pub fn field(&mut self, name: &str, v: Field<'_>) -> &mut Self {
        match v {
            Field::U64(x) => self.u64(name, x),
            Field::I64(x) => self.i64(name, x),
            Field::Str(x) => self.str(name, x),
            Field::Bool(x) => self.bool(name, x),
        }
    }

    /// Closes the object and returns the line (with trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push_str("}\n");
        self.buf
    }
}

/// Removes every `"wall_*": <number>` field from a JSONL text, returning the
/// deterministic residue used for golden-trace comparison.
///
/// Wall fields are always numeric and never the first field of an object
/// (the `"ev"` kind is), so each occurrence is `,"wall_…":<digits>` — the
/// scan below needs no JSON parser.
pub fn strip_wall_fields(jsonl: &str) -> String {
    let mut out = String::with_capacity(jsonl.len());
    let bytes = jsonl.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b',' && jsonl[i..].starts_with(",\"wall_") {
            // Skip to the closing quote of the key, then the value.
            let key_end = jsonl[i + 2..].find('"').map(|p| i + 2 + p);
            if let Some(ke) = key_end {
                let mut j = ke + 1;
                if bytes.get(j) == Some(&b':') {
                    j += 1;
                    while j < bytes.len()
                        && matches!(bytes[j], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                    {
                        j += 1;
                    }
                    i = j;
                    continue;
                }
            }
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_encoding_is_ordered_and_escaped() {
        let mut ev = EventBuf::new("round_start");
        ev.u64("round", 3).str("phase", "refresh\"1\"").bool("ok", true).i64("d", -2);
        assert_eq!(
            ev.finish(),
            "{\"ev\":\"round_start\",\"round\":3,\"phase\":\"refresh\\\"1\\\"\",\"ok\":true,\"d\":-2}\n"
        );
    }

    #[test]
    fn control_chars_escaped() {
        let mut s = String::new();
        escape_json("a\u{1}b\nc", &mut s);
        assert_eq!(s, "a\\u0001b\\nc");
    }

    #[test]
    fn strip_wall_removes_only_wall_fields() {
        let line = "{\"ev\":\"round_end\",\"round\":7,\"wall_ns\":123456,\"sent\":10,\"wall_rss\":9}\n";
        assert_eq!(
            strip_wall_fields(line),
            "{\"ev\":\"round_end\",\"round\":7,\"sent\":10}\n"
        );
        // Untouched text survives byte-for-byte.
        let plain = "{\"ev\":\"x\",\"walled\":1}\n";
        assert_eq!(strip_wall_fields(plain), plain);
    }

    #[test]
    fn strip_wall_handles_multiple_lines() {
        let text = "{\"ev\":\"a\",\"wall_ns\":1}\n{\"ev\":\"b\",\"n\":2,\"wall_ns\":3}\n";
        assert_eq!(strip_wall_fields(text), "{\"ev\":\"a\"}\n{\"ev\":\"b\",\"n\":2}\n");
    }
}
