//! Adapter running an [`AlPds`] directly in the AL-model simulator —
//! the reference execution for Theorem 13 ("there exist t-secure PDS schemes
//! in the AL model"), and the baseline the ULS construction is compared
//! against.
//!
//! In the AL model one logical PDS round equals one physical round.
//! Client requests arrive as per-round external inputs (the `x_{i,w}`
//! channel), either as a legacy raw byte string ("sign these bytes in the
//! current unit") or as an encoded [`ClientBatch`] of sign/verify
//! operations from the open-loop workload generator.
//!
//! Responder-side verification is amortized through a [`VerifyWindow`]:
//! requests queue up and flush through the batch-verify path either when
//! the window fills or at the round boundary, with per-item fallback when
//! a batch rejects.

use crate::api::{AlPds, PdsPhase, PdsTime, SignatureRecord};
use crate::als::AlsPds;
use crate::msg::signing_payload;
use proauth_crypto::schnorr::{self, Signature, VerifyKey};
use proauth_sim::clock::Phase;
use proauth_sim::message::OutputEvent;
use proauth_sim::process::{Process, RoundCtx, SetupCtx};
use proauth_sim::workload::{ClientBatch, ClientOp};
use proauth_telemetry as telemetry;
use std::collections::VecDeque;

/// How many completed signatures a responder keeps around to serve client
/// verify requests against.
const RECENT_CAP: usize = 256;

/// The responder's amortization window over the batch-verify path: verify
/// requests queue here and are flushed together — on size (the window
/// filled mid-round) or on the round boundary — through
/// [`schnorr::batch_verify`], falling back to per-item verification when a
/// batch rejects.
#[derive(Debug, Default)]
pub struct VerifyWindow {
    queue: Vec<(Vec<u8>, u64, Signature)>,
    /// Flush threshold; `≤ 1` means per-item verification (amortization
    /// off).
    cap: usize,
}

impl VerifyWindow {
    /// A window flushing at `cap` queued items.
    pub fn new(cap: usize) -> Self {
        VerifyWindow {
            queue: Vec::new(),
            cap: cap.max(1),
        }
    }

    /// Queues one `(msg, unit, sig)` verification; returns `true` when the
    /// window is full and must flush.
    pub fn push(&mut self, msg: Vec<u8>, unit: u64, sig: Signature) -> bool {
        self.queue.push((msg, unit, sig));
        self.queue.len() >= self.cap
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Verifies everything queued, returning `(msg, ok)` per item in queue
    /// order. Batches of ≥ 2 go through [`schnorr::batch_verify`] (one
    /// table promotion amortized across the batch); a rejecting batch falls
    /// back to per-item verification so one forgery cannot poison its
    /// batch-mates.
    pub fn flush(&mut self, vk: &VerifyKey) -> Vec<(Vec<u8>, bool)> {
        let items = std::mem::take(&mut self.queue);
        if items.is_empty() {
            return Vec::new();
        }
        let payloads: Vec<Vec<u8>> = items
            .iter()
            .map(|(msg, unit, _)| signing_payload(msg, *unit))
            .collect();
        if self.cap > 1 && items.len() >= 2 {
            let batch: Vec<(&[u8], &Signature)> = payloads
                .iter()
                .map(Vec::as_slice)
                .zip(items.iter().map(|(_, _, sig)| sig))
                .collect();
            if schnorr::batch_verify(vk, &batch) {
                telemetry::count("pds/verify_batched", items.len() as u64);
                return items.into_iter().map(|(msg, _, _)| (msg, true)).collect();
            }
            // Fall through: per-item verification pinpoints the bad ones.
        }
        items
            .into_iter()
            .zip(payloads.iter())
            .map(|((msg, _, sig), payload)| {
                let ok = vk.verify(payload, &sig);
                (msg, ok)
            })
            .collect()
    }
}

/// A simulator node executing an ALS instance over authenticated links.
pub struct AlsProcess {
    /// The wrapped PDS state machine (public so adversary strategies can
    /// corrupt it through `state_mut`).
    pub pds: AlsPds,
    /// Recently completed signatures, serving client verify requests.
    recent: VecDeque<SignatureRecord>,
    /// Round-robin cursor over `recent`.
    verify_cursor: usize,
    /// The responder-side amortization window.
    window: VerifyWindow,
}

impl AlsProcess {
    /// Wraps an ALS state machine.
    pub fn new(pds: AlsPds) -> Self {
        let window = VerifyWindow::new(pds.config().verify_window);
        AlsProcess {
            pds,
            recent: VecDeque::new(),
            verify_cursor: 0,
            window,
        }
    }

    /// Applies one client operation from the input channel.
    fn apply_op(&mut self, op: ClientOp, ctx: &mut RoundCtx<'_>) {
        match op {
            ClientOp::Sign { msg } => {
                ctx.emit(OutputEvent::SignRequested {
                    msg: msg.clone(),
                    unit: ctx.time.unit,
                });
                self.pds.request_sign(msg, ctx.time.unit);
            }
            ClientOp::Verify => {
                if self.recent.is_empty() {
                    // Nothing signed yet: the request is a no-op, counted so
                    // benchmark accounting stays honest.
                    telemetry::count("pds/verify_noop", 1);
                    return;
                }
                self.verify_cursor = (self.verify_cursor + 1) % self.recent.len();
                let rec = self.recent[self.verify_cursor].clone();
                if self.window.push(rec.msg, rec.unit, rec.sig) {
                    self.flush_window(ctx);
                }
            }
            ClientOp::Refresh => {
                telemetry::count("pds/client_refresh", 1);
                self.pds.preprocess(ctx.rng);
            }
        }
    }

    /// Flushes the verify window, emitting [`OutputEvent::Verified`] per
    /// accepted item.
    fn flush_window(&mut self, ctx: &mut RoundCtx<'_>) {
        if self.window.is_empty() {
            return;
        }
        // The key is this node's own adopted DKG output (a subgroup member
        // by construction), so the trusted constructor skips the membership
        // modpow that `from_element` would re-pay on every flush.
        let Some(vk) = self
            .pds
            .public_key_element()
            .cloned()
            .map(|pk| VerifyKey::from_element_trusted(&self.pds.config().group, pk))
        else {
            return; // key unknown (wiped mid-recovery): retry next flush
        };
        for (msg, ok) in self.window.flush(&vk) {
            telemetry::count(if ok { "pds/verify_ok" } else { "pds/verify_bad" }, 1);
            if ok {
                ctx.emit(OutputEvent::Verified { msg });
            }
        }
    }
}

/// Maps simulator phases to PDS phases: the PDS refresh protocol (`ARfr`)
/// runs during refresh Part II (Part I belongs to the ULS layer and is a
/// no-op for a bare AL-model PDS).
pub fn pds_time_of(phase: Phase, unit: u64) -> PdsTime {
    match phase {
        Phase::RefreshPart2 { step } => PdsTime {
            unit,
            phase: PdsPhase::Refresh { step },
        },
        _ => PdsTime {
            unit,
            phase: PdsPhase::Normal,
        },
    }
}

impl Process for AlsProcess {
    fn on_setup_round(&mut self, ctx: &mut SetupCtx<'_>) {
        let inbox: Vec<_> = ctx
            .inbox
            .iter()
            .map(|e| (e.from, e.payload.to_vec()))
            .collect();
        let outs = self.pds.on_setup_round(ctx.setup_round, &inbox, ctx.rng);
        // Burn the joint verification key into ROM once available.
        if let Some(pk) = self.pds.public_key() {
            ctx.rom.write("v_cert", pk);
        }
        for env in outs {
            ctx.send(env.to, env.payload);
        }
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
        // External input: a workload batch of sign/verify operations, or a
        // legacy raw "sign these bytes" input.
        if let Some(input) = ctx.input {
            match ClientBatch::from_bytes(input) {
                Some(batch) => {
                    for op in batch.ops {
                        self.apply_op(op, ctx);
                    }
                }
                None => {
                    let msg = input.to_vec();
                    ctx.emit(OutputEvent::SignRequested {
                        msg: msg.clone(),
                        unit: ctx.time.unit,
                    });
                    self.pds.request_sign(msg, ctx.time.unit);
                }
            }
        }
        let time = pds_time_of(ctx.time.phase, ctx.time.unit);
        let inbox: Vec<_> = ctx
            .inbox
            .iter()
            .map(|e| (e.from, e.payload.to_vec()))
            .collect();
        let outs = self.pds.on_logical_round(time, &inbox, ctx.rng);
        for env in outs {
            ctx.send(env.to, env.payload);
        }
        for rec in self.pds.take_completed() {
            ctx.emit(OutputEvent::Signed {
                msg: rec.msg.clone(),
                unit: rec.unit,
            });
            self.recent.push_back(rec);
            if self.recent.len() > RECENT_CAP {
                self.recent.pop_front();
            }
        }
        // Round boundary: whatever verification queued this round flushes
        // now, so client-visible latency is bounded by one round.
        self.flush_window(ctx);
        // Alert on refresh failure, mirroring the ULS behaviour (§4.2.3).
        if ctx.time.phase == (Phase::RefreshPart2 { step: 6 }) && self.pds.refresh_failed() {
            ctx.emit(OutputEvent::Alert);
        }
    }

    fn state_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
