//! Composed and environment-stress attacks: multiple simultaneous adversary
//! capabilities, the Definition-5 rule ablation, and the relaxed DISPERSE
//! fan-out under attack — the corners a single-capability test suite misses.

use proauth_adversary::{Composed, Hijacker, LimitObserver, RandomDropper, Replayer};
use proauth_core::authenticator::HeartbeatApp;
use proauth_core::awareness;
use proauth_core::disperse::DisperseMode;
use proauth_core::uls::{uls_schedule, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_sim::message::{NodeId, OutputEvent};
use proauth_sim::reliability::OperationalRule;
use proauth_sim::runner::{run_ul, SimConfig};

const N: usize = 5;
const T: usize = 2;
const NORMAL: u64 = 12;

fn cfg(total_units: u64, seed: u64) -> SimConfig {
    let schedule = uls_schedule(NORMAL);
    let mut c = SimConfig::new(N, T, schedule);
    c.setup_rounds = SETUP_ROUNDS;
    c.total_rounds = schedule.unit_rounds * total_units;
    c.seed = seed;
    c
}

fn make_node(mode: DisperseMode) -> impl Fn(NodeId) -> UlsNode<HeartbeatApp> {
    move |id| {
        let group = Group::new(GroupId::Toy64);
        let mut c = UlsConfig::new(group, N, T);
        c.disperse = mode;
        UlsNode::new(c, id, HeartbeatApp::default())
    }
}

#[test]
fn hijack_composed_with_light_dropping_still_covered_by_alerts() {
    // The hijacker rides on top of a 2% random dropper: forgery accounting
    // and awareness must still hold.
    let sched = uls_schedule(NORMAL);
    let group = Group::new(GroupId::Toy64);
    let inner = Composed {
        first: RandomDropper::new(0.02, 404),
        second: Hijacker::new(group, NodeId(3), 1, sched.unit_rounds),
    };
    let mut adv = LimitObserver::new(inner);
    let result = run_ul(cfg(2, 41), make_node(DisperseMode::Full), &mut adv);
    // The victim alerts in the attack unit, regardless of the extra noise.
    assert!(result.alerted_in_unit(NodeId(3), 1, &sched));
    // No impersonation of a never-broken node goes unalerted.
    let uncovered = awareness::unalerted_impersonations(
        &result.outputs,
        &sched,
        |_, _| false,
        |node, unit| result.alerted_in_unit(node, unit, &sched),
    );
    assert!(uncovered.is_empty(), "{uncovered:?}");
}

#[test]
fn replay_composed_with_dropping_never_forges() {
    let inner = Composed {
        first: RandomDropper::new(0.05, 405),
        second: Replayer::new(4),
    };
    let mut adv = LimitObserver::new(inner);
    let result = run_ul(cfg(2, 42), make_node(DisperseMode::Full), &mut adv);
    let sched = uls_schedule(NORMAL);
    let imps = awareness::find_impersonations(&result.outputs, &sched, |_, _| false);
    assert!(imps.is_empty(), "{imps:?}");
}

#[test]
fn relaxed_disperse_mode_survives_a_full_lifecycle() {
    // The §6 O(nt) fan-out must preserve all guarantees on the happy path:
    // refreshes succeed, heartbeats flow, no alerts.
    let mut adv = proauth_sim::adversary::FaithfulUl;
    let result = run_ul(
        cfg(3, 43),
        make_node(DisperseMode::Relaxed { fanout: 2 * T + 1 }),
        &mut adv,
    );
    assert_eq!(result.stats.alerts.iter().sum::<u64>(), 0);
    assert!(result.final_operational.iter().all(|&b| b));
    let accepted = result
        .outputs
        .iter()
        .flat_map(|l| l.iter())
        .filter(|(_, e)| matches!(e, OutputEvent::Accepted { .. }))
        .count();
    assert!(accepted > 4 * N);
}

#[test]
fn relaxed_disperse_still_recovers_wiped_nodes() {
    use proauth_sim::adversary::{BreakPlan, NetView, UlAdversary};
    use proauth_sim::clock::TimeView;
    use proauth_sim::message::Envelope;
    struct Wiper;
    impl UlAdversary for Wiper {
        fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
            match view.time.round {
                4 => BreakPlan::break_into([NodeId(5)]),
                8 => BreakPlan::leave([NodeId(5)]),
                _ => BreakPlan::none(),
            }
        }
        fn corrupt(&mut self, _n: NodeId, state: &mut dyn std::any::Any, _t: &TimeView) {
            if let Some(node) = state.downcast_mut::<UlsNode<HeartbeatApp>>() {
                node.corrupt_wipe();
            }
        }
        fn deliver(&mut self, sent: &[Envelope], _v: &NetView<'_>) -> Vec<Envelope> {
            sent.to_vec()
        }
    }
    let result = run_ul(
        cfg(3, 44),
        make_node(DisperseMode::Relaxed { fanout: 2 * T + 1 }),
        &mut Wiper,
    );
    assert!(result.final_operational[NodeId(5).idx()]);
}

#[test]
fn main_text_rule_ablation_reports_more_compromised_nodes() {
    // Run the same wipe scenario under both Definition-5 readings: the
    // main-text rule classifies strictly more node-rounds as non-operational
    // (the collateral effect DESIGN.md documents).
    use proauth_sim::adversary::{BreakPlan, NetView, UlAdversary};
    use proauth_sim::clock::TimeView;
    use proauth_sim::message::Envelope;
    struct DoubleWipe;
    impl UlAdversary for DoubleWipe {
        fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
            match view.time.round {
                4 => BreakPlan::break_into([NodeId(1), NodeId(2)]),
                8 => BreakPlan::leave([NodeId(1), NodeId(2)]),
                _ => BreakPlan::none(),
            }
        }
        fn corrupt(&mut self, _n: NodeId, state: &mut dyn std::any::Any, _t: &TimeView) {
            if let Some(node) = state.downcast_mut::<UlsNode<HeartbeatApp>>() {
                node.corrupt_wipe();
            }
        }
        fn deliver(&mut self, sent: &[Envelope], _v: &NetView<'_>) -> Vec<Envelope> {
            sent.to_vec()
        }
    }
    let run_with = |rule: OperationalRule| {
        let mut c = cfg(2, 45);
        c.rule = rule;
        run_ul(c, make_node(DisperseMode::Full), &mut DoubleWipe)
    };
    let lax = run_with(OperationalRule::Parenthetical);
    let strict = run_with(OperationalRule::MainText);
    let non_op = |r: &proauth_sim::runner::SimResult| {
        r.stats.non_operational_rounds.iter().sum::<u64>()
    };
    assert!(
        non_op(&strict) >= non_op(&lax),
        "main-text reading is never more permissive: {} vs {}",
        non_op(&strict),
        non_op(&lax)
    );
    // Under the parenthetical rule the network fully heals.
    assert!(lax.final_operational.iter().all(|&b| b));
}
