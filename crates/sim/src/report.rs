//! Unit-by-unit summaries of a run — the "system log" view of the global
//! output that an operator (the consumer of alerts, per the paper's
//! awareness discussion) would actually read.

use crate::clock::Schedule;
use crate::message::{NodeId, OutputEvent};
use crate::runner::{SimResult, SimStats};
use proauth_telemetry::Telemetry;
use std::fmt;
use std::fmt::Write as _;
use std::time::Duration;

/// Wall-clock throughput of a run, for benchmark reporting (experiment E11).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputSummary {
    /// Rounds executed per second.
    pub rounds_per_sec: f64,
    /// Honest messages sent per second.
    pub msgs_per_sec: f64,
    /// Honest payload bytes sent per second.
    pub bytes_per_sec: f64,
}

impl ThroughputSummary {
    /// Derives throughput from a run's statistics and its wall-clock time.
    pub fn from_run(stats: &SimStats, total_rounds: u64, elapsed: Duration) -> Self {
        let secs = elapsed.as_secs_f64().max(f64::EPSILON);
        ThroughputSummary {
            rounds_per_sec: total_rounds as f64 / secs,
            msgs_per_sec: stats.messages_sent as f64 / secs,
            bytes_per_sec: stats.bytes_sent as f64 / secs,
        }
    }
}

impl fmt::Display for ThroughputSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} rounds/s, {:.1} msgs/s, {:.1} KiB/s",
            self.rounds_per_sec,
            self.msgs_per_sec,
            self.bytes_per_sec / 1024.0
        )
    }
}

impl fmt::Display for SimStats {
    /// The operator-facing traffic line, including the adversary-side
    /// counters (drops / injections / modifications from the per-round
    /// delivery diff) and, when any fired, the chaos-side crash accounting.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} messages sent, {} delivered, {} bytes; adversary: {} dropped, {} injected, {} modified",
            self.messages_sent,
            self.messages_delivered,
            self.bytes_sent,
            self.messages_dropped,
            self.messages_injected,
            self.messages_modified,
        )?;
        if self.crashes > 0 || self.restarts > 0 {
            write!(
                f,
                "; chaos: {} crashes ({} from panics), {} restarts",
                self.crashes, self.panics, self.restarts
            )?;
        }
        Ok(())
    }
}

/// Formats nanoseconds with a human-scale unit.
fn fmt_ns(ns: u64) -> String {
    match ns {
        u64::MAX => ">1s".into(),
        ns if ns >= 1_000_000_000 => format!("{:.2}s", ns as f64 / 1e9),
        ns if ns >= 1_000_000 => format!("{:.2}ms", ns as f64 / 1e6),
        ns if ns >= 1_000 => format!("{:.1}µs", ns as f64 / 1e3),
        ns => format!("{ns}ns"),
    }
}

/// Renders the telemetry registry as the operator's metrics report: a
/// per-unit counter table (metrics as rows, time units as columns, plus a
/// total column) followed by a latency-histogram summary. Returns `None`
/// when the handle is off or nothing was recorded.
pub fn render_metrics(tele: &Telemetry) -> Option<String> {
    let units = tele.units();
    let snap = tele.snapshot()?;
    let mut out = String::new();

    if !units.is_empty() && units.iter().any(|u| !u.counters.is_empty()) {
        // Row set: every counter name seen in any unit, in sorted order
        // (BTreeMap keys already are).
        let names: std::collections::BTreeSet<&str> = units
            .iter()
            .flat_map(|u| u.counters.keys().copied())
            .collect();
        let name_w = names.iter().map(|n| n.len()).max().unwrap_or(6).max(6);
        let col_w = 10;
        let _ = write!(out, "{:name_w$}", "metric");
        for u in &units {
            let _ = write!(out, " {:>col_w$}", format!("unit {}", u.unit));
        }
        let _ = writeln!(out, " {:>col_w$}", "total");
        for name in names {
            let _ = write!(out, "{name:name_w$}");
            let mut total = 0u64;
            for u in &units {
                let v = u.counters.get(name).copied().unwrap_or(0);
                total += v;
                let _ = write!(out, " {v:>col_w$}");
            }
            let _ = writeln!(out, " {total:>col_w$}");
        }
    }

    if !snap.maxes.is_empty() {
        let _ = writeln!(out, "\ngauges (max):");
        for (name, v) in &snap.maxes {
            let _ = writeln!(out, "  {name} = {v}");
        }
    }

    if !snap.hists.is_empty() {
        let _ = writeln!(
            out,
            "\n{:28} {:>8} {:>9} {:>9} {:>9}",
            "latency", "count", "mean", "p50", "p99"
        );
        for (name, h) in &snap.hists {
            let qs = h.quantiles_ns(&[0.5, 0.99]);
            let _ = writeln!(
                out,
                "{name:28} {:>8} {:>9} {:>9} {:>9}",
                h.total,
                fmt_ns(h.mean_ns()),
                fmt_ns(qs[0]),
                fmt_ns(qs[1]),
            );
        }
    }

    if !snap.value_hists.is_empty() {
        // Unitless distributions (e.g. recovery latency in rounds); the
        // quantiles are power-of-2 bucket upper bounds.
        let _ = writeln!(
            out,
            "\n{:28} {:>8} {:>9} {:>9} {:>9}",
            "distribution", "count", "mean", "p50", "p99"
        );
        for (name, h) in &snap.value_hists {
            let qs = h.quantiles_value(&[0.5, 0.99]);
            let _ = writeln!(
                out,
                "{name:28} {:>8} {:>9} {:>9} {:>9}",
                h.total,
                h.mean_ns(),
                qs[0],
                qs[1],
            );
        }
    }

    (!out.is_empty()).then_some(out)
}

/// Aggregates for one node in one time unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeUnitSummary {
    /// Top-layer messages sent.
    pub sent: usize,
    /// Authenticated messages accepted.
    pub accepted: usize,
    /// Alerts raised.
    pub alerts: usize,
    /// Whether a "compromised" line appeared this unit.
    pub compromised: bool,
    /// Whether a "recovered" line appeared this unit.
    pub recovered: bool,
    /// Threshold signatures reported.
    pub signed: usize,
}

/// Aggregates for one time unit across the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitSummary {
    /// The time unit index.
    pub unit: u64,
    /// Per-node rows.
    pub nodes: Vec<NodeUnitSummary>,
}

impl UnitSummary {
    /// Total alerts in the unit.
    pub fn total_alerts(&self) -> usize {
        self.nodes.iter().map(|n| n.alerts).sum()
    }

    /// Nodes that were compromised at some point in the unit.
    pub fn compromised_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.compromised)
            .map(|(i, _)| NodeId::from_idx(i))
            .collect()
    }
}

/// Builds per-unit summaries from a run's global output.
pub fn unit_summaries(result: &SimResult, schedule: &Schedule) -> Vec<UnitSummary> {
    let n = result.outputs.len();
    let last_round = result
        .outputs
        .iter()
        .flat_map(|l| l.iter().map(|(r, _)| *r))
        .max()
        .unwrap_or(0);
    let units = schedule.unit_of(last_round) + 1;
    let mut out: Vec<UnitSummary> = (0..units)
        .map(|unit| UnitSummary {
            unit,
            nodes: vec![NodeUnitSummary::default(); n],
        })
        .collect();
    for (idx, log) in result.outputs.iter().enumerate() {
        for (round, ev) in log {
            let unit = schedule.unit_of(*round) as usize;
            let cell = &mut out[unit].nodes[idx];
            match ev {
                OutputEvent::Sent { .. } => cell.sent += 1,
                OutputEvent::Accepted { .. } => cell.accepted += 1,
                OutputEvent::Alert => cell.alerts += 1,
                OutputEvent::Compromised => cell.compromised = true,
                OutputEvent::Recovered => cell.recovered = true,
                OutputEvent::Signed { .. } => cell.signed += 1,
                _ => {}
            }
        }
    }
    out
}

impl fmt::Display for UnitSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "unit {}:", self.unit)?;
        for (idx, node) in self.nodes.iter().enumerate() {
            let mut flags = String::new();
            if node.compromised {
                flags.push_str(" COMPROMISED");
            }
            if node.recovered {
                flags.push_str(" RECOVERED");
            }
            if node.alerts > 0 {
                flags.push_str(&format!(" ALERT×{}", node.alerts));
            }
            writeln!(
                f,
                "  {}: sent {:4}  accepted {:4}  signed {:2}{}",
                NodeId::from_idx(idx),
                node.sent,
                node.accepted,
                node.signed,
                flags
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Rom;
    use crate::runner::{SimResult, SimStats};

    fn mk_result(outputs: Vec<Vec<(u64, OutputEvent)>>) -> SimResult {
        let n = outputs.len();
        SimResult {
            outputs,
            adversary_output: Vec::new(),
            stats: SimStats::default(),
            final_operational: vec![true; n],
            roms: vec![Rom::new(); n],
            transcript: None,
        }
    }

    #[test]
    fn summaries_bucket_by_unit() {
        let schedule = Schedule::new(10, 2, 2);
        let result = mk_result(vec![
            vec![
                (1, OutputEvent::Sent { to: NodeId(2), msg: vec![] }),
                (12, OutputEvent::Alert),
                (13, OutputEvent::Compromised),
            ],
            vec![(3, OutputEvent::Accepted { from: NodeId(1), msg: vec![] })],
        ]);
        let summaries = unit_summaries(&result, &schedule);
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].nodes[0].sent, 1);
        assert_eq!(summaries[0].nodes[1].accepted, 1);
        assert_eq!(summaries[0].total_alerts(), 0);
        assert_eq!(summaries[1].nodes[0].alerts, 1);
        assert!(summaries[1].nodes[0].compromised);
        assert_eq!(summaries[1].compromised_nodes(), vec![NodeId(1)]);
    }

    #[test]
    fn display_renders_flags() {
        let schedule = Schedule::new(10, 2, 2);
        let result = mk_result(vec![vec![
            (0, OutputEvent::Alert),
            (1, OutputEvent::Recovered),
        ]]);
        let text = format!("{}", unit_summaries(&result, &schedule)[0]);
        assert!(text.contains("ALERT×1"));
        assert!(text.contains("RECOVERED"));
    }

    #[test]
    fn throughput_summary_from_run() {
        let stats = SimStats {
            messages_sent: 1000,
            bytes_sent: 4096,
            ..SimStats::default()
        };
        let t = ThroughputSummary::from_run(&stats, 100, Duration::from_secs(2));
        assert!((t.rounds_per_sec - 50.0).abs() < 1e-9);
        assert!((t.msgs_per_sec - 500.0).abs() < 1e-9);
        assert!(format!("{t}").contains("rounds/s"));
    }

    #[test]
    fn stats_display_includes_adversary_counters() {
        let stats = SimStats {
            messages_sent: 10,
            messages_delivered: 8,
            messages_dropped: 2,
            messages_injected: 1,
            messages_modified: 3,
            bytes_sent: 99,
            ..SimStats::default()
        };
        let line = format!("{stats}");
        assert!(line.contains("2 dropped"));
        assert!(line.contains("1 injected"));
        assert!(line.contains("3 modified"));
    }

    #[test]
    fn render_metrics_tables() {
        assert!(render_metrics(&Telemetry::off()).is_none());
        let tele = Telemetry::enabled();
        tele.add("uls/accepted", 4);
        tele.unit_mark(0);
        tele.add("uls/accepted", 6);
        tele.add("disperse/sent", 2);
        tele.unit_mark(1);
        tele.gauge_max("adversary/max_impaired", 3);
        tele.observe_ns("crypto/verify_ns", 2_000_000);
        let text = render_metrics(&tele).expect("rendered");
        // Counter rows carry per-unit and total columns.
        assert!(text.contains("unit 0"));
        assert!(text.contains("unit 1"));
        assert!(text.contains("uls/accepted"));
        assert!(text.contains("10")); // total column
        assert!(text.contains("adversary/max_impaired = 3"));
        assert!(text.contains("crypto/verify_ns"));
        assert!(text.contains("ms"));
    }

    #[test]
    fn render_metrics_value_distributions() {
        let tele = Telemetry::enabled();
        tele.observe_value("engine/recovery_rounds", 11);
        tele.observe_value("engine/recovery_rounds", 3);
        let text = render_metrics(&tele).expect("rendered");
        assert!(text.contains("distribution"));
        assert!(text.contains("engine/recovery_rounds"));
        // p50 lands on the power-of-2 bucket bound of the observation 3 → 4,
        // p99 on that of 11 → 16.
        let row = text
            .lines()
            .find(|l| l.starts_with("engine/recovery_rounds"))
            .expect("row");
        assert!(row.contains('4'));
        assert!(row.contains("16"));
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(5), "5ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
        assert_eq!(fmt_ns(u64::MAX), ">1s");
    }

    #[test]
    fn empty_run_yields_one_empty_unit() {
        let schedule = Schedule::new(10, 2, 2);
        let result = mk_result(vec![vec![], vec![]]);
        let summaries = unit_summaries(&result, &schedule);
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].total_alerts(), 0);
    }
}
