//! Property tests for the Montgomery exponentiation and HMAC substrates:
//! agreement with the reference implementations across random inputs.

use proauth_primitives::bigint::BigUint;
use proauth_primitives::hmac::{hmac_sha256, tags_equal};
use proauth_primitives::montgomery::Montgomery;
use proauth_primitives::sha256::Sha256;
use proptest::prelude::*;

fn big(limbs: usize) -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 1..=limbs).prop_map(BigUint::from_limbs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn montgomery_matches_generic(a in big(4), e in big(2), m in big(4)) {
        // Force odd modulus > 1.
        let m = if m.is_even() { m.add(&BigUint::one()) } else { m };
        prop_assume!(!m.is_one() && !m.is_zero());
        match Montgomery::new(&m) {
            Some(ctx) => {
                prop_assert_eq!(ctx.modpow(&a, &e), a.modpow_generic(&e, &m));
            }
            None => prop_assert!(m.is_one() || m.is_even()),
        }
    }

    #[test]
    fn modpow_dispatch_is_transparent(a in big(4), e in big(2), m in big(4)) {
        prop_assume!(!m.is_zero());
        prop_assert_eq!(a.modpow(&e, &m), a.modpow_generic(&e, &m));
    }

    #[test]
    fn montgomery_respects_exponent_laws(a in big(3), e1 in 0u64..200, e2 in 0u64..200, m in big(3)) {
        let m = if m.is_even() { m.add(&BigUint::one()) } else { m };
        prop_assume!(!m.is_one() && !m.is_zero());
        let Some(ctx) = Montgomery::new(&m) else { return Ok(()); };
        // a^(e1+e2) = a^e1 · a^e2 (mod m)
        let lhs = ctx.modpow(&a, &BigUint::from_u64(e1 + e2));
        let rhs = ctx
            .modpow(&a, &BigUint::from_u64(e1))
            .mul_mod(&ctx.modpow(&a, &BigUint::from_u64(e2)), &m);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn hmac_differs_from_plain_hash(key in proptest::collection::vec(any::<u8>(), 1..64),
                                     data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let tag = hmac_sha256(&key, &data);
        prop_assert_ne!(tag, Sha256::digest(&data));
        // Deterministic and key-sensitive.
        prop_assert!(tags_equal(&tag, &hmac_sha256(&key, &data)));
        let mut key2 = key.clone();
        key2[0] ^= 1;
        prop_assert!(!tags_equal(&tag, &hmac_sha256(&key2, &data)));
    }

    #[test]
    fn hmac_data_sensitivity(key in proptest::collection::vec(any::<u8>(), 1..32),
                              data in proptest::collection::vec(any::<u8>(), 1..64),
                              flip in any::<prop::sample::Index>()) {
        let tag = hmac_sha256(&key, &data);
        let mut data2 = data.clone();
        let i = flip.index(data2.len());
        data2[i] ^= 0xFF;
        prop_assert!(!tags_equal(&tag, &hmac_sha256(&key, &data2)));
    }
}
