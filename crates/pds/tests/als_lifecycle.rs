//! End-to-end tests of the AL-model PDS running in the simulator:
//! DKG → threshold signing → proactive refresh → break-in → share recovery.
//! This is the executable content of Theorem 13.

use proauth_crypto::group::{Group, GroupId};
use proauth_crypto::schnorr::Signature;
use proauth_pds::als::{AlsConfig, AlsPds};
use proauth_pds::als_node::AlsProcess;
use proauth_pds::ideal::IdealChecker;
use proauth_pds::msg::signing_payload;
use proauth_sim::adversary::{AlAdversary, BreakPlan, NetView, PassiveAl};
use proauth_sim::clock::{Schedule, TimeView};
use proauth_sim::message::{NodeId, OutputEvent};
use proauth_sim::runner::{run_al, run_al_with_inputs, SimConfig, SimResult};
use proauth_primitives::bigint::BigUint;

const N: usize = 5;
const T: usize = 2;

fn schedule() -> Schedule {
    // 1 part-I round (no-op for a bare PDS) + 8 part-II rounds (7 refresh
    // steps + slack), 20 rounds per unit.
    Schedule::new(20, 1, 8)
}

fn cfg(total_units: u64) -> SimConfig {
    let mut c = SimConfig::new(N, T, schedule());
    c.setup_rounds = 2;
    c.total_rounds = schedule().unit_rounds * total_units;
    c.seed = 7;
    c
}

fn make_node(id: NodeId) -> AlsProcess {
    let group = Group::new(GroupId::Toy64);
    AlsProcess::new(AlsPds::new(AlsConfig::new(group, N, T), id))
}

/// Extracts every `Signed{msg, unit}` event with its signature verified
/// against the joint public key taken from the transcript... signatures are
/// not in the output log, so instead verify through the returned state.
fn signed_events(result: &SimResult) -> Vec<(NodeId, Vec<u8>, u64)> {
    let mut out = Vec::new();
    for (idx, log) in result.outputs.iter().enumerate() {
        for (_, ev) in log {
            if let OutputEvent::Signed { msg, unit } = ev {
                out.push((NodeId::from_idx(idx), msg.clone(), *unit));
            }
        }
    }
    out
}

#[test]
fn sign_in_unit_zero() {
    let c = cfg(1);
    let result = run_al_with_inputs(c, make_node, &mut PassiveAl, |_, round| {
        // Ask every node to sign at round 2 of unit 0.
        (round == 2).then(|| b"hello world".to_vec())
    });
    let signed = signed_events(&result);
    // All nodes report (m, 0) signed.
    assert_eq!(signed.len(), N, "{signed:?}");
    assert!(signed.iter().all(|(_, m, u)| m == b"hello world" && *u == 0));
    // Ideal-process conformance.
    let checker = IdealChecker::new(T);
    let all: Vec<NodeId> = NodeId::all(N).collect();
    assert!(checker
        .check(&result.outputs, &all, &[], &schedule())
        .is_empty());
}

#[test]
fn sign_after_refresh_with_same_public_key() {
    let c = cfg(3);
    let result = run_al_with_inputs(c, make_node, &mut PassiveAl, |_, round| {
        // One signature per unit, in each unit's normal phase.
        match round {
            2 => Some(b"unit0".to_vec()),
            30 => Some(b"unit1".to_vec()),
            50 => Some(b"unit2".to_vec()),
            _ => None,
        }
    });
    let signed = signed_events(&result);
    for unit in 0..3u64 {
        let count = signed.iter().filter(|(_, _, u)| *u == unit).count();
        assert_eq!(count, N, "unit {unit}: all nodes report signed");
    }
    // No alerts: every refresh succeeded.
    assert!(result.stats.alerts.iter().all(|&a| a == 0));
}

#[test]
fn quorum_of_exactly_t_plus_one_requesters_suffices() {
    let c = cfg(1);
    let result = run_al_with_inputs(c, make_node, &mut PassiveAl, |id, round| {
        (round == 2 && id.0 <= (T + 1) as u32).then(|| b"quorum".to_vec())
    });
    let signed = signed_events(&result);
    assert_eq!(signed.len(), T + 1);
}

#[test]
fn below_quorum_produces_no_signature() {
    let c = cfg(1);
    let result = run_al_with_inputs(c, make_node, &mut PassiveAl, |id, round| {
        (round == 2 && id.0 <= T as u32).then(|| b"below".to_vec())
    });
    assert!(signed_events(&result).is_empty());
    // And the ideal checker has no liveness complaint (below threshold).
    let checker = IdealChecker::new(T);
    let all: Vec<NodeId> = NodeId::all(N).collect();
    assert!(checker.check(&result.outputs, &all, &[], &schedule()).is_empty());
}

/// Breaks node 3 during unit 0, wipes its key material, leaves before the
/// unit-1 refresh.
struct WipeOne {
    target: NodeId,
}

impl AlAdversary for WipeOne {
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        match view.time.round {
            5 => BreakPlan::break_into([self.target]),
            8 => BreakPlan::leave([self.target]),
            _ => BreakPlan::none(),
        }
    }

    fn corrupt(&mut self, _node: NodeId, state: &mut dyn std::any::Any, _time: &TimeView) {
        if let Some(p) = state.downcast_mut::<AlsProcess>() {
            p.pds.corrupt_wipe();
        }
    }
}

#[test]
fn wiped_node_recovers_its_share_at_next_refresh() {
    let c = cfg(3);
    let result = run_al_with_inputs(
        c,
        make_node,
        &mut WipeOne { target: NodeId(3) },
        |_, round| (round == 50).then(|| b"post-recovery".to_vec()),
    );
    // In unit 2 (after the unit-1 refresh where recovery ran... the wiped
    // node announces RecoveryNeed in the unit-1 refresh; by unit 2 it signs).
    let signed = signed_events(&result);
    let node3_signed = signed
        .iter()
        .any(|(id, m, _)| *id == NodeId(3) && m == b"post-recovery");
    assert!(node3_signed, "node 3 participates again after recovery: {signed:?}");
    assert_eq!(signed.len(), N);
}

/// Corrupts node 2's share silently (garbage value) instead of wiping.
struct GarbleShare;

impl AlAdversary for GarbleShare {
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        match view.time.round {
            5 => BreakPlan::break_into([NodeId(2)]),
            6 => BreakPlan::leave([NodeId(2)]),
            _ => BreakPlan::none(),
        }
    }

    fn corrupt(&mut self, _node: NodeId, state: &mut dyn std::any::Any, _time: &TimeView) {
        if let Some(p) = state.downcast_mut::<AlsProcess>() {
            p.pds.corrupt_share(BigUint::from_u64(0xDEAD));
        }
    }
}

#[test]
fn garbled_share_detected_and_recovered() {
    let c = cfg(3);
    let result = run_al_with_inputs(c, make_node, &mut GarbleShare, |_, round| {
        (round == 50).then(|| b"after-garble".to_vec())
    });
    let signed = signed_events(&result);
    // Node 2's self-consistency check catches the garbage share; it recovers
    // at the unit-1 refresh and signs in unit 2.
    assert!(
        signed.iter().any(|(id, _, _)| *id == NodeId(2)),
        "node 2 signs after recovery: {signed:?}"
    );
}

#[test]
fn broken_node_share_exposure_does_not_forge_alone() {
    // A single exposed share (t=2) is insufficient to forge: run with one
    // break-in, then check that only legitimately-requested messages verify.
    let c = cfg(2);
    let result = run_al_with_inputs(
        c,
        make_node,
        &mut WipeOne { target: NodeId(1) },
        |_, round| (round == 2).then(|| b"legit".to_vec()),
    );
    let checker = IdealChecker::new(T);
    let all: Vec<NodeId> = NodeId::all(N).collect();
    let violations = checker.check_no_forgery(&result.outputs, &[]);
    assert!(violations.is_empty(), "{violations:?}");
    let _ = all;
}

#[test]
fn deterministic_across_runs() {
    let r1 = run_al(cfg(2), make_node, &mut PassiveAl);
    let r2 = run_al(cfg(2), make_node, &mut PassiveAl);
    assert_eq!(r1.outputs, r2.outputs);
    assert_eq!(r1.stats.messages_sent, r2.stats.messages_sent);
}

/// Verifies an actual signature extracted from a node's state would verify —
/// driving `AVer` end to end (signature bytes round-trip the real group).
#[test]
fn aver_matches_schnorr_verification() {
    let group = Group::new(GroupId::Toy64);
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    // Make a centralized key and check AlsPds::verify agrees with VerifyKey.
    let sk = proauth_crypto::schnorr::SigningKey::generate(&group, &mut rng);
    let payload = signing_payload(b"msg", 4);
    let sig: Signature = sk.sign(&payload, &mut rng);
    assert!(AlsPds::verify(
        &group,
        sk.verify_key().element(),
        b"msg",
        4,
        &sig
    ));
    assert!(!AlsPds::verify(
        &group,
        sk.verify_key().element(),
        b"msg",
        5,
        &sig
    ));
}
