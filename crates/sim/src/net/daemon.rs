//! The multi-process engine backend: one OS process per node, speaking
//! [`NetMsg`] frames over TCP or Unix sockets.
//!
//! Execution mirrors the in-process engine's semantics exactly:
//!
//! * **setup** uses hard barriers (every peer's [`NetMsg::SetupMark`] must
//!   arrive) — the set-up phase is adversary-free and faithful by model, and
//!   stream FIFO ordering guarantees a mark implies its round's messages;
//! * **rounds** use barriers with wall-clock pacing on the Fig-1
//!   schedule: a node advances when every live peer's [`NetMsg::RoundMark`]
//!   has arrived (but not before `min_round_ms`). The pacing deadline
//!   (`round_ms`) sets tempo only — a live, connected peer that is merely
//!   slow is waited out, because round alignment is a correctness property
//!   (AUTH-SEND binds the send round into its authentication). Only the
//!   failure-detector deadline (`mark_timeout_ms` past the pacing deadline)
//!   abandons a hung-but-connected peer; crashed peers close their
//!   connections and leave the barrier immediately;
//! * **inbox order** reproduces the simulator's merge: deliveries sorted by
//!   `(round, sender, seq)` equal "senders in `NodeId` order, each sender's
//!   outbox in send order", which is why a faithful daemon run is
//!   bit-identical to `run_ul` under the same seed;
//! * frames that miss their nominal round (adversary delay, pacing slip)
//!   deliver in a later round — exactly the UL adversary's prerogative.

use super::msg::{Alarm, HealthBeacon, NetMsg, NodeReport, Severity};
use super::peer::{AddrPlan, Conn, NetListener, NetStream, PendingQueue};
use super::poll;
use super::state::{StateDir, Watermark};
use crate::clock::{Schedule, TimeView};
use crate::driver::NodeDriver;
use crate::message::{Envelope, NodeId};
use proauth_telemetry::{self as telemetry, MetricsSnapshot, Shard, Telemetry};
use std::collections::BTreeMap;
use std::io;
use std::os::fd::RawFd;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Counter deltas promoted into the typed alarm stream when they rise in a
/// round: `(counter name, alarm kind, severity)`.
const ALARM_COUNTERS: &[(&str, &str, Severity)] = &[
    ("uls/rejected", "forgery_reject", Severity::Warning),
    ("uls/alerts", "uls_alert", Severity::Warning),
    ("adversary/break_ins", "break_in", Severity::Warning),
    ("adversary/wipes", "wipe", Severity::Warning),
];

/// Cap on frames parked for a peer whose connection is down; beyond this the
/// oldest are discarded — matching engine crash semantics, where pending
/// traffic to a crashed node is dropped.
const PENDING_CAP: usize = 4096;

/// How many barrier marks a peer replays to a rejoiner at most (a rejoin
/// after a short supervisor respawn needs a handful; anything older than
/// this window the rejoiner waits out at its accelerated catch-up pace).
const REJOIN_REPLAY_WINDOW: u64 = 256;

/// Accelerated pacing deadline (ms) for catch-up rounds — rounds the cluster
/// is known (via marks/acks) to have already left behind. Keeps a rejoiner's
/// resynchronization bounded by `missed_rounds × 50ms` even when marks for a
/// missed round were lost with the dead connection.
const CATCHUP_ROUND_MS: u64 = 50;

/// Deployment parameters of one node process.
#[derive(Debug, Clone)]
pub struct NodeNetConfig {
    /// This node.
    pub me: NodeId,
    /// Network size.
    pub n: usize,
    /// Master seed (must match every peer's).
    pub seed: u64,
    /// Address plan shared by the whole deployment.
    pub plan: AddrPlan,
    /// Route all protocol traffic through the chaos proxy instead of a full
    /// mesh.
    pub via_proxy: bool,
    /// Dial the collector and stream events/report to it.
    pub report: bool,
    /// Round/unit layout (Fig. 1).
    pub schedule: Schedule,
    /// Adversary-free setup rounds.
    pub setup_rounds: u64,
    /// Post-setup rounds to execute.
    pub total_rounds: u64,
    /// Pacing deadline per round, ms: the tempo target. A round whose live
    /// peers' marks are all in never outlasts it, but slow live peers are
    /// waited out past it (see `mark_timeout_ms`).
    pub round_ms: u64,
    /// Pacing floor per round, ms (0 = advance as soon as marks allow).
    pub min_round_ms: u64,
    /// Failure-detector allowance past the pacing deadline, ms: how long a
    /// live, connected peer may stall the barrier before the round gives up
    /// on its mark. Crashed peers are excluded as soon as their connection
    /// dies; this bound only catches hung-but-connected processes.
    pub mark_timeout_ms: u64,
    /// Budget for connection establishment and setup barriers, ms.
    pub connect_timeout_ms: u64,
    /// Scenario digest; every process of a deployment must agree.
    pub run_id: u64,
    /// Record node-layer telemetry and stream per-round metrics deltas,
    /// health beacons, and alarms to the collector (needs `report`).
    pub telemetry: bool,
    /// Also stream per-round flight-recorder trace events for cluster-trace
    /// assembly on the collector (needs `telemetry`).
    pub stream_trace: bool,
    /// Adaptive pacing: bounded AIMD on the per-round deadline, between
    /// `adapt_floor_ms` and `round_ms`, driven by observed late frames and
    /// mark timeouts.
    pub adaptive: bool,
    /// Floor for the adaptive controller, ms.
    pub adapt_floor_ms: u64,
    /// Root of the durable state tree (`<root>/node-<id>/...`). When set,
    /// the node persists its ROM image after setup and its round watermark
    /// after every barrier; `None` leaves the self-healing layer inert.
    pub state_dir: Option<PathBuf>,
    /// Rejoin mode: skip setup (the ROM was loaded from durable state) and
    /// resume executing at this round — the durable watermark of rounds
    /// already completed. `None` runs setup and starts at round 0.
    pub resume: Option<u64>,
}

impl NodeNetConfig {
    /// A default deployment config for node `me` of `n` under `plan`.
    pub fn new(me: NodeId, n: usize, plan: AddrPlan, schedule: Schedule) -> Self {
        NodeNetConfig {
            me,
            n,
            seed: 0,
            plan,
            via_proxy: false,
            report: false,
            schedule,
            setup_rounds: 8,
            total_rounds: schedule.unit_rounds * 2,
            round_ms: 250,
            min_round_ms: 0,
            mark_timeout_ms: 5_000,
            connect_timeout_ms: 30_000,
            run_id: 0,
            telemetry: false,
            stream_trace: false,
            adaptive: false,
            adapt_floor_ms: 20,
            state_dir: None,
            resume: None,
        }
    }
}

/// Arrival-order bookkeeping for one `(round, from)` stream, for duplicate
/// and reordering observation (delivery itself is unchanged — duplication
/// and reordering are the UL adversary's prerogative).
#[derive(Default)]
struct SeqTrack {
    /// Last seq observed, in arrival order.
    last: Option<u32>,
    /// Every seq observed so far.
    seen: Vec<u32>,
}

/// Protocol traffic buffered by the round it was sent in.
#[derive(Default)]
struct RoundBuffer {
    /// `(round, from, seq, payload)` entries not yet delivered.
    msgs: BTreeMap<u64, Vec<(NodeId, u32, Vec<u8>)>>,
    /// Received marks per round.
    marks: BTreeMap<u64, Vec<bool>>,
}

/// The peer fabric: a full mesh of per-peer connections, or one connection
/// to the routing (chaos) proxy.
enum Fabric {
    Mesh {
        /// Connection per node index; `me`'s slot stays `None`.
        conns: Vec<Option<Conn>>,
        listener: NetListener,
        /// Accepted but not yet identified (no Hello read) connections.
        limbo: Vec<Conn>,
        /// Per-peer store-and-forward backlog: frames addressed to a peer
        /// whose connection is down, flushed when it re-handshakes. This is
        /// slot retention — a crashed peer keeps its place in the table.
        pending: Vec<PendingQueue>,
    },
    Proxy {
        conn: Conn,
        /// Frames parked while the proxy link is down (socket reset chaos),
        /// flushed after the redial.
        pending: PendingQueue,
    },
}

/// One node process's engine loop. Drives a [`NodeDriver`] from sockets.
pub struct NodeLoop<'d> {
    cfg: NodeNetConfig,
    driver: &'d mut dyn NodeDriver,
    fabric: Fabric,
    collector: Option<Conn>,
    buf: RoundBuffer,
    setup_msgs: BTreeMap<u64, Vec<(NodeId, u32, Vec<u8>)>>,
    setup_marks: BTreeMap<u64, Vec<bool>>,
    /// Peers that sent Bye or whose connection died and could not be
    /// re-established; their marks are considered satisfied.
    departed: Vec<bool>,
    /// Last reconnect attempt per peer (rate-limits redials).
    last_redial: Vec<Option<Instant>>,
    report: NodeReport,
    /// The node's local flight recorder (off unless `cfg.telemetry`).
    tele: Telemetry,
    /// Shared buffer of the memory sink behind `tele`, drained once per
    /// round into [`NetMsg::Trace`] frames (`None` without `stream_trace`).
    tele_buf: Option<Arc<Mutex<Vec<u8>>>>,
    /// The recording shard reused across rounds (engine parity: same scope
    /// discipline as `exec_slot`).
    shard: Option<Shard>,
    /// Registry snapshot at the previous metrics ship, for delta folding.
    last_snap: MetricsSnapshot,
    /// The pacing deadline currently in force (== `cfg.round_ms` unless
    /// adaptive).
    cur_round_ms: u64,
    /// Wall-clock start of round 0, the zero point for schedule lag.
    rounds_started: Option<Instant>,
    /// Per-`(round, sender)` seq tracking for dup/reorder observation.
    seq_tracks: BTreeMap<(u64, u32), SeqTrack>,
    /// The round currently executing (== the resume watermark before the
    /// first round). Marks for rounds already completed are stale and
    /// ignored — a rejoining peer's replayed marks would otherwise leak
    /// rows into `buf.marks` forever.
    cur_round: u64,
    /// Highest round any peer is known to have reached (marks observed,
    /// rejoin acks). When this runs ahead of `cur_round + 1` the node is
    /// behind the cluster and paces catch-up rounds at
    /// [`CATCHUP_ROUND_MS`]; in a healthy run it never exceeds
    /// `cur_round + 1`, so clean pacing is untouched.
    live_round_hint: u64,
    /// Durable state handle (`None` leaves the self-healing layer inert).
    state: Option<StateDir>,
}

impl<'d> NodeLoop<'d> {
    /// Establishes the fabric (dial low peers, accept high peers — or dial
    /// the proxy) and the collector connection.
    pub fn connect(cfg: NodeNetConfig, driver: &'d mut dyn NodeDriver) -> io::Result<Self> {
        let deadline = Instant::now() + Duration::from_millis(cfg.connect_timeout_ms);
        let hello = NetMsg::Hello {
            node: cfg.me.0,
            run_id: cfg.run_id,
        };
        let fabric = if cfg.via_proxy {
            let mut conn = Conn::new(NetStream::dial(&cfg.plan.proxy(), deadline)?);
            conn.send(&hello);
            Fabric::Proxy {
                conn,
                pending: PendingQueue::new(PENDING_CAP),
            }
        } else {
            let listener = NetListener::bind(&cfg.plan.node(cfg.me.0))?;
            let mut conns: Vec<Option<Conn>> = (0..cfg.n).map(|_| None).collect();
            // Dial every lower-numbered peer (their listeners bind before any
            // dial can matter; retry covers start-order races).
            for j in 1..cfg.me.0 {
                let mut conn = Conn::new(NetStream::dial(&cfg.plan.node(j), deadline)?);
                conn.send(&hello);
                conns[NodeId(j).idx()] = Some(conn);
            }
            Fabric::Mesh {
                conns,
                listener,
                limbo: Vec::new(),
                pending: (0..cfg.n).map(|_| PendingQueue::new(PENDING_CAP)).collect(),
            }
        };
        let collector = if cfg.report {
            let mut conn = Conn::new(NetStream::dial(&cfg.plan.collector(), deadline)?);
            conn.send(&hello);
            Some(conn)
        } else {
            None
        };
        let n = cfg.n;
        let me = cfg.me.0;
        let (tele, tele_buf) = if cfg.telemetry {
            if cfg.stream_trace {
                let (t, buf) = Telemetry::with_memory_sink();
                (t, Some(buf))
            } else {
                (Telemetry::enabled(), None)
            }
        } else {
            (Telemetry::off(), None)
        };
        let cur_round_ms = cfg.round_ms;
        let state = match &cfg.state_dir {
            Some(root) => Some(StateDir::open(root, cfg.me.0)?),
            None => None,
        };
        let start_round = cfg.resume.unwrap_or(0);
        let mut this = NodeLoop {
            cfg,
            driver,
            fabric,
            collector,
            buf: RoundBuffer::default(),
            setup_msgs: BTreeMap::new(),
            setup_marks: BTreeMap::new(),
            departed: vec![false; n],
            last_redial: vec![None; n],
            report: NodeReport {
                node: me,
                ..NodeReport::default()
            },
            tele,
            tele_buf,
            shard: None,
            last_snap: MetricsSnapshot::default(),
            cur_round_ms,
            rounds_started: None,
            seq_tracks: BTreeMap::new(),
            cur_round: start_round,
            live_round_hint: start_round,
            state,
        };
        // Mesh: wait for every higher-numbered peer to dial in and identify.
        if !this.cfg.via_proxy {
            while !this.mesh_complete() {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("node {}: peers did not all connect", this.cfg.me),
                    ));
                }
                this.pump(Some(50))?;
            }
        }
        Ok(this)
    }

    fn mesh_complete(&self) -> bool {
        match &self.fabric {
            Fabric::Mesh { conns, .. } => {
                NodeId::all(self.cfg.n)
                    .filter(|&j| j != self.cfg.me)
                    .all(|j| conns[j.idx()].is_some())
            }
            Fabric::Proxy { .. } => true,
        }
    }

    /// Sends `msg` toward node `to` (directly or via the proxy). A peer
    /// whose connection is down keeps its slot: traffic parks in its
    /// pending queue and is flushed when the peer re-handshakes.
    fn send_to(&mut self, to: NodeId, msg: &NetMsg) {
        let idx = to.idx();
        match &mut self.fabric {
            Fabric::Mesh { conns, pending, .. } => match conns[idx].as_mut() {
                Some(conn) if !conn.closed => conn.send(msg),
                _ => {
                    if !self.departed[idx] {
                        pending[idx].push(msg.clone());
                    }
                }
            },
            Fabric::Proxy { conn, pending } => {
                if conn.closed {
                    pending.push(msg.clone());
                } else {
                    conn.send(msg);
                }
            }
        }
    }

    /// Sends a barrier mark to every peer. Through the proxy one frame
    /// suffices (the proxy fans marks out); a mesh sends one per connection,
    /// parking frames for peers whose connection is currently down.
    fn broadcast(&mut self, msg: &NetMsg) {
        let me_idx = self.cfg.me.idx();
        match &mut self.fabric {
            Fabric::Mesh { conns, pending, .. } => {
                for (idx, slot) in conns.iter_mut().enumerate() {
                    if idx == me_idx || self.departed[idx] {
                        continue;
                    }
                    match slot.as_mut() {
                        Some(conn) if !conn.closed => conn.send(msg),
                        _ => pending[idx].push(msg.clone()),
                    }
                }
            }
            Fabric::Proxy { conn, pending } => {
                if conn.closed {
                    pending.push(msg.clone());
                } else {
                    conn.send(msg);
                }
            }
        }
    }

    /// One poll iteration: flush pending writes, accept/identify inbound
    /// connections, read and dispatch every available message.
    fn pump(&mut self, timeout_ms: Option<u64>) -> io::Result<()> {
        // Build the poll set: (fd, want_write) for every live descriptor.
        let mut fds: Vec<(RawFd, bool)> = Vec::new();
        enum Slot {
            Peer(usize),
            Limbo,
            Listener,
            Collector,
            ProxyConn,
        }
        let mut slots: Vec<Slot> = Vec::new();
        match &self.fabric {
            Fabric::Mesh {
                conns,
                listener,
                limbo,
                ..
            } => {
                for (idx, conn) in conns.iter().enumerate() {
                    if let Some(c) = conn {
                        if !c.closed {
                            fds.push((c.raw_fd(), c.wants_write()));
                            slots.push(Slot::Peer(idx));
                        }
                    }
                }
                for c in limbo.iter() {
                    if !c.closed {
                        fds.push((c.raw_fd(), false));
                        slots.push(Slot::Limbo);
                    }
                }
                fds.push((listener.raw_fd(), false));
                slots.push(Slot::Listener);
            }
            Fabric::Proxy { conn, .. } => {
                if !conn.closed {
                    fds.push((conn.raw_fd(), conn.wants_write()));
                    slots.push(Slot::ProxyConn);
                }
            }
        }
        if let Some(c) = &self.collector {
            if !c.closed && c.wants_write() {
                fds.push((c.raw_fd(), true));
                slots.push(Slot::Collector);
            }
        }
        let ready = poll::poll(&fds, timeout_ms)?;

        let mut inbound: Vec<NetMsg> = Vec::new();
        let mut accepted: Vec<Conn> = Vec::new();
        match &mut self.fabric {
            Fabric::Mesh {
                conns,
                listener,
                limbo,
                ..
            } => {
                for (slot, r) in slots.iter().zip(&ready) {
                    match slot {
                        Slot::Peer(idx) => {
                            let conn = conns[*idx].as_mut().expect("slot maps live conn");
                            if r.writable {
                                let _ = conn.flush();
                            }
                            if r.readable || r.hangup {
                                inbound.extend(conn.recv());
                            }
                        }
                        Slot::Limbo => {
                            // Identification reads happen in
                            // `adopt_identified` so the Hello is not consumed
                            // here; the poll wake-up is all that's needed.
                        }
                        Slot::Listener => {
                            if r.readable {
                                while let Some(stream) = listener.accept()? {
                                    accepted.push(Conn::new(stream));
                                }
                            }
                        }
                        Slot::Collector | Slot::ProxyConn => {}
                    }
                }
                limbo.extend(accepted);
            }
            Fabric::Proxy { conn, .. } => {
                for (slot, r) in slots.iter().zip(&ready) {
                    if matches!(slot, Slot::ProxyConn) {
                        if r.writable {
                            let _ = conn.flush();
                        }
                        if r.readable || r.hangup {
                            inbound.extend(conn.recv());
                        }
                    }
                }
            }
        }
        if let Some(c) = self.collector.as_mut() {
            if !c.closed && c.wants_write() {
                let _ = c.flush();
            }
        }
        for msg in inbound {
            self.dispatch(msg);
        }
        self.adopt_identified();
        Ok(())
    }

    /// Moves limbo connections that have sent their Hello into their peer
    /// slot (the Hello was consumed by `dispatch`, which records the claimed
    /// id in `pending_adoptions` via the limbo scan below).
    fn adopt_identified(&mut self) {
        let mut to_dispatch: Vec<NetMsg> = Vec::new();
        let mut adopted: Vec<usize> = Vec::new();
        if let Fabric::Mesh {
            conns,
            limbo,
            pending,
            ..
        } = &mut self.fabric
        {
            // A limbo conn is adopted once its decoder yielded a Hello; since
            // dispatch() cannot know which conn a message came from, Hello
            // handling happens here: drain each limbo conn's already-decoded
            // messages looking for the Hello, then re-queue the rest.
            let mut k = 0;
            while k < limbo.len() {
                let msgs = limbo[k].recv();
                let mut hello_from: Option<u32> = None;
                let mut rest: Vec<NetMsg> = Vec::new();
                for m in msgs {
                    match m {
                        NetMsg::Hello { node, run_id } => {
                            if run_id == self.cfg.run_id && node >= 1 && node as usize <= self.cfg.n
                            {
                                hello_from = Some(node);
                            }
                        }
                        other => rest.push(other),
                    }
                }
                if let Some(node) = hello_from {
                    let mut conn = limbo.remove(k);
                    let idx = NodeId(node).idx();
                    // Slot retention: flush the backlog parked while the
                    // peer's connection was down before installing the new
                    // one, so a rejoiner sees the frames it missed.
                    pending[idx].drain_into(&mut conn);
                    conns[idx] = Some(conn);
                    adopted.push(idx);
                    to_dispatch.extend(rest);
                } else {
                    if limbo[k].closed {
                        limbo.remove(k);
                        continue;
                    }
                    // No Hello yet; leave it in limbo (any pre-Hello traffic
                    // from a conforming peer is impossible, drop `rest`).
                    k += 1;
                }
            }
        }
        for idx in adopted {
            self.departed[idx] = false;
        }
        for m in to_dispatch {
            self.dispatch(m);
        }
    }

    /// Routes one received message into the right buffer.
    fn dispatch(&mut self, msg: NetMsg) {
        let n = self.cfg.n;
        match msg {
            NetMsg::Hello { .. } => {} // mesh adoption handles these in limbo
            NetMsg::Setup {
                setup_round,
                seq,
                from,
                to,
                payload,
            } => {
                if to == self.cfg.me && from.idx() < n {
                    self.setup_msgs
                        .entry(setup_round)
                        .or_default()
                        .push((from, seq, payload));
                }
            }
            NetMsg::SetupMark { setup_round, from } => {
                if from.idx() < n {
                    self.setup_marks
                        .entry(setup_round)
                        .or_insert_with(|| vec![false; n])[from.idx()] = true;
                }
            }
            NetMsg::Round {
                round,
                seq,
                from,
                to,
                payload,
            } => {
                if to == self.cfg.me && from.idx() < n {
                    // Observation only: duplicates and reordering are the UL
                    // adversary's prerogative, so both still deliver — but
                    // they are counted, reported, and exposed as metrics.
                    let track = self.seq_tracks.entry((round, from.0)).or_default();
                    if track.seen.contains(&seq) {
                        self.report.dup_frames += 1;
                        self.tele.add("net/dup_frames", 1);
                    } else {
                        if track.last.is_some_and(|last| seq < last) {
                            self.report.reorder_frames += 1;
                            self.tele.add("net/reorder_frames", 1);
                        }
                        track.seen.push(seq);
                    }
                    track.last = Some(seq);
                    self.buf
                        .msgs
                        .entry(round)
                        .or_default()
                        .push((from, seq, payload));
                }
            }
            NetMsg::RoundMark { round, from } => {
                if from.idx() < n {
                    if round >= self.live_round_hint {
                        self.live_round_hint = round;
                    }
                    // Marks for rounds already completed here are stale
                    // (replayed to a rejoiner, or chaos-delayed); recording
                    // them would leak rows into `buf.marks` forever.
                    if round >= self.cur_round {
                        self.buf.marks.entry(round).or_insert_with(|| vec![false; n])[from.idx()] =
                            true;
                    }
                }
            }
            NetMsg::Bye { node } => {
                if node >= 1 && node as usize <= n {
                    self.departed[NodeId(node).idx()] = true;
                }
            }
            NetMsg::Rejoin {
                node,
                run_id,
                watermark,
            } => {
                // A restarted peer is back: clear its departure, replay the
                // barrier marks it may have lost with its dead connection
                // (bounded window), and tell it how far the cluster is so it
                // can pace its catch-up.
                if run_id == self.cfg.run_id
                    && node >= 1
                    && node as usize <= n
                    && NodeId(node) != self.cfg.me
                {
                    let idx = NodeId(node).idx();
                    self.departed[idx] = false;
                    if self.rounds_started.is_some() {
                        let cur = self.cur_round;
                        let lo = watermark
                            .saturating_sub(1)
                            .max(cur.saturating_sub(REJOIN_REPLAY_WINDOW));
                        let me = self.cfg.me;
                        for r in lo..=cur {
                            self.send_to(NodeId(node), &NetMsg::RoundMark { round: r, from: me });
                        }
                        self.send_to(
                            NodeId(node),
                            &NetMsg::RejoinAck {
                                node: me.0,
                                round: cur,
                            },
                        );
                    }
                }
            }
            NetMsg::RejoinAck { node: _, round } => {
                if round > self.live_round_hint {
                    self.live_round_hint = round;
                }
            }
            // Collector-bound traffic never reaches a node.
            NetMsg::Event { .. }
            | NetMsg::Report(_)
            | NetMsg::Metrics { .. }
            | NetMsg::Beacon(_)
            | NetMsg::Alarm(_)
            | NetMsg::Trace { .. } => {}
        }
    }

    /// Whether every live peer's mark for `marks[round]` is present.
    fn marks_complete(&self, marks: &BTreeMap<u64, Vec<bool>>, round: u64) -> bool {
        let row = marks.get(&round);
        NodeId::all(self.cfg.n)
            .filter(|&j| j != self.cfg.me)
            .all(|j| {
                self.departed[j.idx()]
                    || self.conn_dead(j)
                    || row.map(|r| r[j.idx()]).unwrap_or(false)
            })
    }

    /// A peer with no live connection cannot deliver a mark; treating it as
    /// departed keeps a crashed peer from stalling every round to the
    /// deadline.
    fn conn_dead(&self, j: NodeId) -> bool {
        match &self.fabric {
            Fabric::Mesh { conns, .. } => {
                conns[j.idx()].as_ref().map(|c| c.closed).unwrap_or(true)
            }
            Fabric::Proxy { conn, .. } => conn.closed,
        }
    }

    /// Attempts to re-establish closed dial-side connections (rate-limited;
    /// the accept side heals via the listener instead).
    fn maybe_reconnect(&mut self) {
        let now = Instant::now();
        let hello = NetMsg::Hello {
            node: self.cfg.me.0,
            run_id: self.cfg.run_id,
        };
        let redial_after = Duration::from_millis(500);
        match &mut self.fabric {
            Fabric::Mesh { conns, pending, .. } => {
                for j in 1..self.cfg.me.0 {
                    let idx = NodeId(j).idx();
                    let dead = conns[idx].as_ref().map(|c| c.closed).unwrap_or(true);
                    if !dead || self.departed[idx] {
                        continue;
                    }
                    let due = self.last_redial[idx]
                        .map(|t| now.duration_since(t) >= redial_after)
                        .unwrap_or(true);
                    if !due {
                        continue;
                    }
                    self.last_redial[idx] = Some(now);
                    if let Ok(stream) = NetStream::dial(&self.cfg.plan.node(j), now) {
                        let mut conn = Conn::new(stream);
                        conn.send(&hello);
                        pending[idx].drain_into(&mut conn);
                        conns[idx] = Some(conn);
                    }
                }
            }
            Fabric::Proxy { conn, pending } => {
                if conn.closed {
                    let due = self.last_redial[0]
                        .map(|t| now.duration_since(t) >= redial_after)
                        .unwrap_or(true);
                    if due {
                        self.last_redial[0] = Some(now);
                        if let Ok(stream) = NetStream::dial(&self.cfg.plan.proxy(), now) {
                            let mut c = Conn::new(stream);
                            c.send(&hello);
                            pending.drain_into(&mut c);
                            *conn = c;
                        }
                    }
                }
            }
        }
    }

    /// Runs the full deployment: setup barriers, paced rounds, final report.
    /// Returns this node's report (also sent to the collector when one is
    /// connected).
    pub fn run(mut self, mut input_fn: impl FnMut(NodeId, u64) -> Option<Vec<u8>>) -> io::Result<NodeReport> {
        let total = self.cfg.total_rounds;
        let start = match self.cfg.resume {
            None => {
                self.run_setup()?;
                // The ROM freezes at the end of setup (write-once by model);
                // persist its image now so a later restart can rejoin
                // without re-running setup.
                if let Some(sd) = &self.state {
                    sd.save_rom(self.driver.rom())?;
                }
                0
            }
            Some(watermark) => {
                // Rejoin: the ROM was restored from durable state, setup is
                // skipped. Announce the return so peers clear our departure,
                // replay lost marks, and ack with the live round; then
                // re-execute from the watermark to resynchronize.
                let rejoin = NetMsg::Rejoin {
                    node: self.cfg.me.0,
                    run_id: self.cfg.run_id,
                    watermark,
                };
                self.broadcast(&rejoin);
                if let Some(c) = self.collector.as_mut() {
                    c.send(&rejoin);
                }
                watermark.min(total)
            }
        };
        self.cur_round = start;
        for round in start..total {
            self.run_round(round, &mut input_fn)?;
        }
        self.report.rounds = total - start;
        let rom = self.driver.rom();
        self.report.rom_keys = rom.entries().map(|(k, _)| k.to_owned()).collect();
        self.report.rom_values = rom.entries().map(|(_, v)| v.to_vec()).collect();
        // Flush-and-drain: ship the final metrics delta (counters that moved
        // after the last per-round ship, e.g. the closing barrier's transport
        // counters), then the report, then Bye — FIFO order guarantees the
        // collector sees everything before the departure marker, and the
        // blocking flush drains the queue before the process exits.
        if let Some(c) = self.collector.as_mut() {
            if let Some(snap) = self.tele.snapshot() {
                let delta = snap.delta_since(&self.last_snap);
                self.last_snap = snap;
                if !delta.is_empty() {
                    c.send(&NetMsg::Metrics {
                        node: self.cfg.me.0,
                        round: total,
                        delta,
                    });
                }
            }
            c.send(&NetMsg::Report(self.report.clone()));
            c.send(&NetMsg::Bye {
                node: self.cfg.me.0,
            });
            c.flush_blocking(Duration::from_secs(5));
            if c.wants_write() && !c.closed {
                eprintln!(
                    "node {}: collector stream not fully drained at exit",
                    self.cfg.me
                );
            }
        }
        let bye = NetMsg::Bye {
            node: self.cfg.me.0,
        };
        self.broadcast(&bye);
        match &mut self.fabric {
            Fabric::Mesh { conns, .. } => {
                for conn in conns.iter_mut().flatten() {
                    conn.flush_blocking(Duration::from_millis(500));
                }
            }
            Fabric::Proxy { conn, .. } => conn.flush_blocking(Duration::from_millis(500)),
        }
        Ok(self.report)
    }

    fn run_setup(&mut self) -> io::Result<()> {
        let deadline = Instant::now() + Duration::from_millis(self.cfg.connect_timeout_ms);
        let me = self.cfg.me;
        for sr in 0..self.cfg.setup_rounds {
            // Inbox: everything sent in the previous setup round, in the
            // engine's merge order.
            let mut entries = if sr == 0 {
                Vec::new()
            } else {
                self.setup_msgs.remove(&(sr - 1)).unwrap_or_default()
            };
            entries.sort_by_key(|a| (a.0, a.1));
            let inbox: Vec<Envelope> = entries
                .into_iter()
                .map(|(from, _, payload)| Envelope::new(from, me, payload))
                .collect();
            self.report.received += inbox.len() as u64;
            let outbox = self.driver.setup_step(sr, &inbox);
            let mut seq = 0u32;
            for entry in &outbox {
                for env in entry.envelopes() {
                    self.report.sent += 1;
                    self.report.bytes_sent += env.payload.len() as u64;
                    let msg = NetMsg::Setup {
                        setup_round: sr,
                        seq,
                        from: env.from,
                        to: env.to,
                        payload: env.payload.to_vec(),
                    };
                    self.send_to(env.to, &msg);
                    seq += 1;
                }
            }
            self.broadcast(&NetMsg::SetupMark {
                setup_round: sr,
                from: me,
            });
            // Hard barrier: setup is faithful, every peer must mark.
            while !self.marks_complete_setup(sr) {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("node {me}: setup round {sr} barrier timed out"),
                    ));
                }
                self.pump(Some(50))?;
            }
            self.setup_marks.remove(&sr);
        }
        Ok(())
    }

    fn marks_complete_setup(&self, sr: u64) -> bool {
        let row = self.setup_marks.get(&sr);
        NodeId::all(self.cfg.n)
            .filter(|&j| j != self.cfg.me)
            .all(|j| row.map(|r| r[j.idx()]).unwrap_or(false))
    }

    fn run_round(
        &mut self,
        round: u64,
        input_fn: &mut impl FnMut(NodeId, u64) -> Option<Vec<u8>>,
    ) -> io::Result<()> {
        let me = self.cfg.me;
        self.cur_round = round;
        let round_start = Instant::now();
        if self.rounds_started.is_none() {
            self.rounds_started = Some(round_start);
        }
        let late_before = self.report.late_frames;
        // Deliveries: everything sent in an earlier round and not yet
        // delivered. Frames older than the immediately preceding round were
        // delayed past their nominal delivery — count them.
        let eligible: Vec<u64> = self
            .buf
            .msgs
            .range(..round)
            .map(|(k, _)| *k)
            .collect();
        let mut entries: Vec<(u64, NodeId, u32, Vec<u8>)> = Vec::new();
        for k in eligible {
            if round > 0 && k < round - 1 {
                let late = self.buf.msgs.get(&k).map(|v| v.len() as u64).unwrap_or(0);
                self.report.late_frames += late;
                self.tele.add("net/late_frames", late);
            }
            for (from, seq, payload) in self.buf.msgs.remove(&k).unwrap_or_default() {
                entries.push((k, from, seq, payload));
            }
        }
        entries.sort_by_key(|a| (a.0, a.1, a.2));
        let inbox: Vec<Envelope> = entries
            .into_iter()
            .map(|(_, from, _, payload)| Envelope::new(from, me, payload))
            .collect();
        self.report.received += inbox.len() as u64;

        let input = input_fn(me, round);
        let time = TimeView::at(&self.cfg.schedule, round);
        // Install the recording shard around the step with the same scope
        // discipline as the engine's `exec_slot`, so node-layer counters and
        // trace events are identical to an in-process run.
        let scoped = self.tele.is_on();
        let prev = if scoped {
            let mut shard = self
                .shard
                .take()
                .or_else(|| self.tele.new_shard())
                .expect("telemetry on");
            shard.set_ctx(me.0, round);
            telemetry::install(Some(shard))
        } else {
            None
        };
        let (outbox, step) = self.driver.round_step(time, &inbox, input.as_deref());
        if scoped {
            let mut shard = telemetry::install(prev);
            if let Some(sh) = shard.as_mut() {
                self.tele.merge_shard(sh);
            }
            self.shard = shard;
        }
        if step.panicked {
            return Err(io::Error::other(format!(
                "node {me}: step panicked at round {round}"
            )));
        }
        self.report.alerts += step.alerts;
        let mut seq = 0u32;
        for entry in &outbox {
            for env in entry.envelopes() {
                self.report.sent += 1;
                self.report.bytes_sent += env.payload.len() as u64;
                let msg = NetMsg::Round {
                    round,
                    seq,
                    from: env.from,
                    to: env.to,
                    payload: env.payload.to_vec(),
                };
                self.send_to(env.to, &msg);
                seq += 1;
            }
        }
        self.broadcast(&NetMsg::RoundMark { round, from: me });

        // Stream freshly emitted events to the collector.
        if self.collector.is_some() {
            let events = self.driver.drain_new_events();
            if let Some(c) = self.collector.as_mut() {
                for (r, event) in events {
                    c.send(&NetMsg::Event {
                        node: me,
                        round: r,
                        event,
                    });
                }
            }
        }

        // Observability streaming: this round's trace events, metrics delta,
        // alarms, and the health beacon. The beacon goes last — stream FIFO
        // order makes it the collector's "round r complete from this node"
        // signal, guaranteeing the trace and metrics frames precede it.
        if scoped {
            self.tele.observe_value("net/round_ms", self.cur_round_ms);
            self.stream_observability(round, seq as u64, step.alerts);
        }

        // Catch-up detection: peers are known (marks, rejoin acks) to be ≥2
        // rounds ahead — impossible in a healthy run, where no peer can get
        // two barriers past us. Pace such rounds at the accelerated deadline
        // so a rejoiner resynchronizes instead of replaying at full pace.
        let catchup = self.live_round_hint > round + 1;
        let pace_ms = if catchup {
            CATCHUP_ROUND_MS.min(self.cur_round_ms)
        } else {
            self.cur_round_ms
        };
        // Barrier: marks from every live peer, floored by the pacing
        // minimum. The pacing deadline is tempo, not correctness — a live,
        // connected peer that is merely slow (a crypto-heavy refresh round,
        // scheduler pressure) is waited out well past it, because the
        // AUTH-SEND layer binds the send round into message authentication:
        // letting a live peer's frames slip one round gets them rejected as
        // forgeries and collapses the refresh. Only the failure-detector
        // deadline abandons a peer that is connected but hung; a crashed
        // peer's connection dies and `marks_complete` excludes it at once.
        // Catch-up rounds keep the accelerated hard deadline and skip the
        // floor: the cluster has already left them behind (their marks were
        // replayed at rejoin or stream in live), and pacing them at
        // `min_round_ms` would hold the gap open forever when the cluster
        // itself advances at the floor — the rejoiner must replay strictly
        // faster than live rounds tick to resynchronize before the next
        // refresh phase begins.
        let hard_deadline = round_start + Duration::from_millis(pace_ms);
        let barrier_deadline = if catchup {
            hard_deadline
        } else {
            hard_deadline + Duration::from_millis(self.cfg.mark_timeout_ms)
        };
        let floor = if catchup {
            round_start
        } else {
            round_start + Duration::from_millis(self.cfg.min_round_ms)
        };
        let mut timed_out = false;
        loop {
            let now = Instant::now();
            let complete = self.marks_complete(&self.buf.marks, round);
            if complete && now >= floor {
                break;
            }
            if !complete && now >= barrier_deadline {
                self.report.mark_timeouts += 1;
                self.tele.add("net/mark_timeouts", 1);
                timed_out = true;
                break;
            }
            self.maybe_reconnect();
            let wait_until = if complete { floor } else { barrier_deadline };
            let ms = wait_until
                .saturating_duration_since(now)
                .as_millis()
                .clamp(1, 50) as u64;
            self.pump(Some(ms))?;
        }
        self.buf.marks.remove(&round);
        // Durable watermark: this round is complete; a restart resumes at
        // `round + 1`. Persist failure degrades durability (a later restart
        // replays more rounds), never the run itself.
        if let Some(sd) = &self.state {
            if let Err(e) = sd.save_watermark(Watermark {
                completed_rounds: round + 1,
                epoch: time.unit,
            }) {
                eprintln!("node {me}: watermark persist failed: {e}");
            }
        }
        // Drop seq bookkeeping old enough that even chaos-delayed frames are
        // past; anything later is observation loss, not a correctness issue.
        self.seq_tracks = self.seq_tracks.split_off(&(round.saturating_sub(8), 0));

        // Bounded AIMD on the pacing deadline: congestion (a mark timeout or
        // freshly late frames) doubles it back toward the configured ceiling;
        // a comfortable round — marks complete within half the deadline —
        // shaves off an additive step toward the floor.
        if self.cfg.adaptive && !catchup {
            let ceiling = self.cfg.round_ms.max(1);
            let floor_ms = self
                .cfg
                .adapt_floor_ms
                .max(self.cfg.min_round_ms)
                .min(ceiling);
            let used_ms = round_start.elapsed().as_millis() as u64;
            let congested = timed_out
                || self.report.late_frames > late_before
                || used_ms > self.cur_round_ms;
            if congested {
                self.cur_round_ms = (self.cur_round_ms.saturating_mul(2)).min(ceiling);
            } else if used_ms.saturating_mul(2) <= self.cur_round_ms {
                let step_ms = (ceiling / 20).max(1);
                self.cur_round_ms = self.cur_round_ms.saturating_sub(step_ms).max(floor_ms);
            }
        }
        Ok(())
    }

    /// Ships the round's observability frames to the collector: trace blob,
    /// metrics delta, promoted alarms, health beacon (in that order).
    fn stream_observability(&mut self, round: u64, sent_round: u64, alerts_round: u64) {
        if self.collector.is_none() {
            return;
        }
        let me = self.cfg.me.0;
        // Trace blob: everything the memory sink accumulated this round.
        let trace_events = self
            .tele_buf
            .as_ref()
            .map(|buf| {
                let mut guard = buf.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                std::mem::take(&mut *guard)
            })
            .unwrap_or_default();
        let snap = self.tele.snapshot().unwrap_or_default();
        let delta = snap.delta_since(&self.last_snap);
        let alarms: Vec<Alarm> = ALARM_COUNTERS
            .iter()
            .filter_map(|(counter, kind, severity)| {
                delta.counters.get(*counter).map(|&d| Alarm {
                    node: me,
                    round,
                    severity: *severity,
                    kind: (*kind).to_owned(),
                    detail: format!("{counter} +{d}"),
                })
            })
            .collect();
        self.last_snap = snap;
        let lag_ms = self.rounds_started.map_or(0, |t0| {
            let nominal_ms = (round + 1).saturating_mul(self.cfg.round_ms);
            (t0.elapsed().as_millis() as u64).saturating_sub(nominal_ms)
        });
        let beacon = HealthBeacon {
            node: me,
            round,
            round_ms: self.cur_round_ms,
            lag_ms,
            inbox_depth: self.buf.msgs.values().map(|v| v.len() as u64).sum(),
            late_frames: self.report.late_frames,
            mark_timeouts: self.report.mark_timeouts,
            peers_live: self.peers_live(),
            sent_round,
            alerts_round,
        };
        let stream_trace = self.cfg.stream_trace;
        if let Some(c) = self.collector.as_mut() {
            if stream_trace {
                c.send(&NetMsg::Trace {
                    node: me,
                    round,
                    events: trace_events,
                });
            }
            if !delta.is_empty() {
                c.send(&NetMsg::Metrics {
                    node: me,
                    round,
                    delta,
                });
            }
            for alarm in alarms {
                c.send(&NetMsg::Alarm(alarm));
            }
            c.send(&NetMsg::Beacon(beacon));
        }
    }

    /// Open peer connections right now (mesh) or whether the proxy link is
    /// up (proxy fabric).
    fn peers_live(&self) -> u32 {
        match &self.fabric {
            Fabric::Mesh { conns, .. } => conns
                .iter()
                .flatten()
                .filter(|c| !c.closed)
                .count() as u32,
            Fabric::Proxy { conn, .. } => u32::from(!conn.closed),
        }
    }
}

/// Convenience: connect and run in one call.
pub fn run_node(
    cfg: NodeNetConfig,
    driver: &mut dyn NodeDriver,
    input_fn: impl FnMut(NodeId, u64) -> Option<Vec<u8>>,
) -> io::Result<NodeReport> {
    NodeLoop::connect(cfg, driver)?.run(input_fn)
}
