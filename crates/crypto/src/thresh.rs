//! Threshold Schnorr signing over a [`crate::dkg::KeyShare`].
//!
//! `t+1` signers jointly produce an ordinary Schnorr signature
//! ([`crate::schnorr::Signature`]) verifiable against the joint public key —
//! the *unchanging* PDS verification key the paper stores in ROM (§1.3).
//!
//! Protocol shape (two logical message rounds, matching the efficient schemes
//! the paper cites \[20\], \[23\]):
//!
//! 1. each signer `i` in the signer set `S` samples a nonce `k_i` and
//!    publishes `R_i = g^{k_i}`;
//! 2. everyone computes `R = Π R_i`, `e = H(R ‖ y ‖ m)`, and signer `i`
//!    publishes `z_i = k_i + e·λ_i·x_i` where `λ_i` is the Lagrange
//!    coefficient of `S` at zero;
//! 3. anyone combines `z = Σ z_i`, giving the signature `(e, z)`.
//!
//! Each partial `z_i` is publicly checkable against `R_i` and the share key
//! `X_i = g^{x_i}`: `g^{z_i} = R_i · X_i^{e·λ_i}` — this is what makes the
//! scheme *robust* (cheating signers are identified and excluded, and the
//! session restarted with another signer set).
//!
//! # Examples
//!
//! See `tests::full_threshold_signature` in this module.

use crate::dkg::KeyShare;
use crate::group::Group;
use crate::schnorr::{self, Signature};
use crate::shamir;
use proauth_primitives::bigint::BigUint;
use proauth_primitives::sha256;

/// A signer's nonce for one signing session.
///
/// Must be used at most once; the session driver enforces this.
#[derive(Debug, Clone)]
pub struct Nonce {
    /// Secret nonce scalar `k_i`.
    pub k: BigUint,
    /// Public nonce commitment `R_i = g^{k_i}`.
    pub commitment: BigUint,
}

/// Samples a fresh signing nonce.
pub fn generate_nonce<R: rand::RngCore>(group: &Group, rng: &mut R) -> Nonce {
    let k = group.random_nonzero_scalar(rng);
    let commitment = group.exp_g(&k);
    Nonce { k, commitment }
}

/// Aggregates the nonce commitments of the signer set: `R = Π R_i`.
///
/// # Panics
///
/// Panics if `commitments` is empty.
pub fn combine_nonces(group: &Group, commitments: &[BigUint]) -> BigUint {
    assert!(!commitments.is_empty(), "empty signer set");
    commitments
        .iter()
        .fold(group.identity(), |acc, r| group.mul(&acc, r))
}

/// The signing challenge `e = H(R ‖ y ‖ m)` — identical to the centralized
/// Schnorr challenge, so threshold signatures verify as ordinary ones.
pub fn challenge(group: &Group, combined_nonce: &BigUint, public_key: &BigUint, msg: &[u8]) -> BigUint {
    schnorr::challenge(group, combined_nonce, public_key, msg)
}

/// Computes signer `i`'s partial signature `z_i = k_i + e·λ_i·x_i`.
///
/// `signer_set` must contain `key.index` and be the exact set whose nonces
/// were combined.
pub fn partial_sign(
    group: &Group,
    key: &KeyShare,
    signer_set: &[u32],
    nonce: &Nonce,
    e: &BigUint,
) -> BigUint {
    let lambda = shamir::lagrange_coeff_at_zero(group, signer_set, key.index);
    let weighted = group.scalar_mul(e, &group.scalar_mul(&lambda, &key.share));
    group.scalar_add(&nonce.k, &weighted)
}

/// Verifies signer `i`'s partial signature: `g^{z_i} = R_i · X_i^{e·λ_i}`.
///
/// The left side comes squaring-free from the generator's comb table; the
/// `X_i` term uses the windowed Montgomery path (and a promoted table once
/// the share key repeats across sessions).
pub fn verify_partial(
    group: &Group,
    signer_set: &[u32],
    signer: u32,
    share_key: &BigUint,
    nonce_commitment: &BigUint,
    e: &BigUint,
    z_i: &BigUint,
) -> bool {
    if z_i >= group.q() || !group.contains(nonce_commitment) {
        return false;
    }
    let lambda = shamir::lagrange_coeff_at_zero(group, signer_set, signer);
    let expected = group.mul(
        nonce_commitment,
        &group.exp(share_key, &group.scalar_mul(e, &lambda)),
    );
    group.exp_g(z_i) == expected
}

/// One partial-signature check, for [`batch_verify_partials`].
#[derive(Debug, Clone, Copy)]
pub struct PartialCheck<'a> {
    /// The signer index `i` (must be in the signer set).
    pub signer: u32,
    /// The signer's share key `X_i = g^{x_i}`.
    pub share_key: &'a BigUint,
    /// The signer's transmitted nonce commitment `R_i`.
    pub nonce_commitment: &'a BigUint,
    /// The partial signature `z_i`.
    pub z_i: &'a BigUint,
}

/// Randomized batch verification of a session's partial signatures:
/// `true` ⟹ accept them all.
///
/// Unlike full `(e, s)` Schnorr signatures, partials CAN be batched with a
/// random linear combination, because the commitment `R_i` is transmitted
/// rather than recomputed: raising each equation
/// `g^{z_i} = R_i · X_i^{e·λ_i}` to a coefficient `r_i` and multiplying
/// gives the single equation
///
/// ```text
/// g^{Σ r_i·z_i}  ==  Π R_i^{r_i} · Π X_i^{r_i·e·λ_i}
/// ```
///
/// — one comb evaluation plus one shared-squaring multi-exponentiation in
/// place of `|S|` full verifications. Coefficients are deterministic
/// Fiat–Shamir hashes of the transcript so all honest verifiers agree (see
/// [`crate::feldman::batch_verify_shares`] for why), and the right-hand
/// exponents stay integer products, so all-valid sets are accepted
/// *identically*, not just with high probability. On `false`, fall back to
/// per-signer [`verify_partial`] to identify the cheater.
pub fn batch_verify_partials(
    group: &Group,
    signer_set: &[u32],
    e: &BigUint,
    checks: &[PartialCheck<'_>],
) -> bool {
    if checks.is_empty() {
        return true;
    }
    if checks.len() == 1 {
        let c = &checks[0];
        return verify_partial(
            group,
            signer_set,
            c.signer,
            c.share_key,
            c.nonce_commitment,
            e,
            c.z_i,
        );
    }
    if checks
        .iter()
        .any(|c| c.z_i >= group.q() || !group.contains(c.nonce_commitment))
    {
        return false;
    }
    let mut transcript = Vec::new();
    for c in checks {
        transcript.extend_from_slice(&c.signer.to_be_bytes());
        transcript.extend_from_slice(&c.share_key.to_bytes_be());
        transcript.extend_from_slice(&c.nonce_commitment.to_bytes_be());
        transcript.extend_from_slice(&c.z_i.to_bytes_be());
    }
    let digest = sha256::hash_parts("proauth/thresh/batch/v1", &[&e.to_bytes_be(), &transcript]);

    let mut lhs_exp = BigUint::zero();
    let mut rhs: Vec<(&BigUint, BigUint)> = Vec::with_capacity(2 * checks.len());
    for (j, c) in checks.iter().enumerate() {
        let r_j = group.hash_to_scalar(
            "proauth/thresh/batch/coeff/v1",
            &[&digest, &(j as u64).to_be_bytes()],
        );
        lhs_exp = group.scalar_add(&lhs_exp, &group.scalar_mul(&r_j, c.z_i));
        let lambda = shamir::lagrange_coeff_at_zero(group, signer_set, c.signer);
        // Integer product r_j · (e·λ_i mod q): no subgroup assumption on X_i.
        let x_exp = r_j.mul(&group.scalar_mul(e, &lambda));
        for (base, exp) in [(c.nonce_commitment, r_j), (c.share_key, x_exp)] {
            match rhs.iter_mut().find(|(b, _)| *b == base) {
                Some((_, acc)) => *acc = acc.add(&exp),
                None => rhs.push((base, exp)),
            }
        }
    }
    let rhs_pairs: Vec<(&BigUint, &BigUint)> = rhs.iter().map(|(b, e)| (*b, e)).collect();
    group.exp_g(&lhs_exp) == group.multi_exp(&rhs_pairs)
}

/// Combines partial signatures into a full Schnorr signature `(e, Σ z_i)`.
///
/// # Panics
///
/// Panics if `partials` is empty.
pub fn combine_partials(group: &Group, e: &BigUint, partials: &[BigUint]) -> Signature {
    assert!(!partials.is_empty(), "no partial signatures");
    let s = partials
        .iter()
        .fold(BigUint::zero(), |acc, z| group.scalar_add(&acc, z));
    Signature { e: e.clone(), s }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dkg::{self, ReceivedDealing};
    use crate::group::GroupId;
    use crate::schnorr::VerifyKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dkg_keys(n: usize, t: usize, seed: u64) -> (Group, Vec<KeyShare>) {
        let group = Group::new(GroupId::Toy64);
        let mut rng = StdRng::seed_from_u64(seed);
        let dealings: Vec<(u32, crate::feldman::Dealing)> = (1..=n as u32)
            .map(|i| (i, dkg::deal(&group, t, n, &mut rng)))
            .collect();
        let shares = (1..=n as u32)
            .map(|me| {
                let inputs: Vec<ReceivedDealing> = dealings
                    .iter()
                    .map(|(dealer, d)| ReceivedDealing {
                        dealer: *dealer,
                        commitments: d.commitments.clone(),
                        share: d.share_for(me).clone(),
                    })
                    .collect();
                dkg::aggregate(&group, t, n, me, &inputs).unwrap()
            })
            .collect();
        (group, shares)
    }

    fn sign_with(
        group: &Group,
        keys: &[KeyShare],
        signer_set: &[u32],
        msg: &[u8],
        rng: &mut StdRng,
    ) -> Signature {
        let nonces: Vec<(u32, Nonce)> = signer_set
            .iter()
            .map(|&i| (i, generate_nonce(group, rng)))
            .collect();
        let commitments: Vec<BigUint> = nonces.iter().map(|(_, n)| n.commitment.clone()).collect();
        let r = combine_nonces(group, &commitments);
        let pk = &keys[0].public_key;
        let e = challenge(group, &r, pk, msg);
        let partials: Vec<BigUint> = nonces
            .iter()
            .map(|(i, nonce)| {
                let key = &keys[(*i - 1) as usize];
                let z = partial_sign(group, key, signer_set, nonce, &e);
                assert!(verify_partial(
                    group,
                    signer_set,
                    *i,
                    key.share_key(*i),
                    &nonce.commitment,
                    &e,
                    &z
                ));
                z
            })
            .collect();
        combine_partials(group, &e, &partials)
    }

    #[test]
    fn full_threshold_signature() {
        let (group, keys) = dkg_keys(5, 2, 71);
        let mut rng = StdRng::seed_from_u64(72);
        let sig = sign_with(&group, &keys, &[1, 3, 5], b"threshold message", &mut rng);
        let vk = VerifyKey::from_element(&group, keys[0].public_key.clone()).unwrap();
        assert!(vk.verify(b"threshold message", &sig));
        assert!(!vk.verify(b"other", &sig));
    }

    #[test]
    fn any_quorum_produces_valid_signature() {
        let (group, keys) = dkg_keys(5, 2, 73);
        let mut rng = StdRng::seed_from_u64(74);
        let vk = VerifyKey::from_element(&group, keys[0].public_key.clone()).unwrap();
        for set in [[1u32, 2, 3], [2, 4, 5], [1, 4, 5]] {
            let sig = sign_with(&group, &keys, &set, b"m", &mut rng);
            assert!(vk.verify(b"m", &sig), "set {set:?}");
        }
    }

    #[test]
    fn bad_partial_detected() {
        let (group, keys) = dkg_keys(4, 1, 75);
        let mut rng = StdRng::seed_from_u64(76);
        let signer_set = [1u32, 2];
        let nonce = generate_nonce(&group, &mut rng);
        let r = combine_nonces(&group, std::slice::from_ref(&nonce.commitment));
        let e = challenge(&group, &r, &keys[0].public_key, b"m");
        let z = partial_sign(&group, &keys[0], &signer_set, &nonce, &e);
        let bad_z = group.scalar_add(&z, &BigUint::one());
        assert!(!verify_partial(
            &group,
            &signer_set,
            1,
            keys[0].share_key(1),
            &nonce.commitment,
            &e,
            &bad_z
        ));
        // Also: a correct z_i presented for the wrong signer fails.
        assert!(!verify_partial(
            &group,
            &signer_set,
            2,
            keys[1].share_key(2),
            &nonce.commitment,
            &e,
            &z
        ));
    }

    #[test]
    fn out_of_range_partial_rejected() {
        let (group, keys) = dkg_keys(3, 1, 77);
        let e = BigUint::from_u64(5);
        let too_big = group.q().add(&BigUint::one());
        assert!(!verify_partial(
            &group,
            &[1, 2],
            1,
            keys[0].share_key(1),
            &group.exp_g(&BigUint::from_u64(3)),
            &e,
            &too_big
        ));
        // Nonce commitment outside the group rejected.
        assert!(!verify_partial(
            &group,
            &[1, 2],
            1,
            keys[0].share_key(1),
            &BigUint::zero(),
            &e,
            &BigUint::one()
        ));
    }

    #[test]
    fn batch_partials_accepts_valid_rejects_tampered() {
        let (group, keys) = dkg_keys(5, 2, 80);
        let mut rng = StdRng::seed_from_u64(81);
        let signer_set = [1u32, 3, 5];
        let nonces: Vec<(u32, Nonce)> = signer_set
            .iter()
            .map(|&i| (i, generate_nonce(&group, &mut rng)))
            .collect();
        let commitments: Vec<BigUint> = nonces.iter().map(|(_, n)| n.commitment.clone()).collect();
        let r = combine_nonces(&group, &commitments);
        let e = challenge(&group, &r, &keys[0].public_key, b"batch");
        let partials: Vec<(u32, BigUint)> = nonces
            .iter()
            .map(|(i, nonce)| {
                (*i, partial_sign(&group, &keys[(*i - 1) as usize], &signer_set, nonce, &e))
            })
            .collect();
        let checks: Vec<PartialCheck<'_>> = signer_set
            .iter()
            .enumerate()
            .map(|(idx, &i)| PartialCheck {
                signer: i,
                share_key: keys[(i - 1) as usize].share_key(i),
                nonce_commitment: &nonces[idx].1.commitment,
                z_i: &partials[idx].1,
            })
            .collect();
        assert!(batch_verify_partials(&group, &signer_set, &e, &checks));
        assert!(batch_verify_partials(&group, &signer_set, &e, &[]));
        assert!(batch_verify_partials(&group, &signer_set, &e, &checks[..1]));

        let bad = group.scalar_add(&partials[1].1, &BigUint::one());
        let mut bad_checks = checks.clone();
        bad_checks[1].z_i = &bad;
        assert!(!batch_verify_partials(&group, &signer_set, &e, &bad_checks));
    }

    #[test]
    fn undersized_signer_set_fails_verification() {
        // t = 2 needs 3 signers; 2 signers produce an invalid signature.
        let (group, keys) = dkg_keys(5, 2, 78);
        let mut rng = StdRng::seed_from_u64(79);
        let sig = sign_with(&group, &keys, &[1, 2], b"m", &mut rng);
        let vk = VerifyKey::from_element(&group, keys[0].public_key.clone()).unwrap();
        assert!(!vk.verify(b"m", &sig));
    }
}
