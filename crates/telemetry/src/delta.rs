//! Cross-process metrics shipping: the compact **delta** wire form a node
//! process folds its registry into and streams to the collector, and the
//! merge that rebuilds a cluster-wide registry on the other side.
//!
//! # Shape
//!
//! A [`MetricsDelta`] carries owned `String` names (the `&'static str` keys
//! of a [`Registry`] mean nothing in another process) and one section per
//! metric family:
//!
//! * **counters** — increments since the previous delta (zero rows omitted);
//!   merge is addition, so applying a node's deltas in order reconstructs
//!   its counter totals exactly;
//! * **maxes** — absolute gauge values (merge is `max`, so resending the
//!   absolute value is idempotent and loss of an intermediate delta cannot
//!   understate the gauge);
//! * **hists** / **value_hists** — per-bucket count increments plus
//!   `total`/`sum_ns` increments; merge is bucket-wise addition.
//!
//! Applying every delta a node ever shipped therefore yields the same
//! registry contents the node holds locally — the property the daemon e2e
//! asserts (collector merge == sum of per-node registries).
//!
//! # Determinism
//!
//! Deltas are computed from [`MetricsSnapshot`]s (BTreeMap-backed), so
//! section ordering is canonical by name and the encoded bytes are a pure
//! function of the registry contents. Wall-clock histograms ride along for
//! display but are kept out of trace synthesis by the collector.

use crate::intern_name;
use crate::registry::{Histogram, MetricsSnapshot, Registry};
use proauth_primitives::wire::{Decode, Encode, Reader, WireError, Writer};
use std::collections::BTreeMap;

/// Increments (and absolute gauge values) accumulated between two registry
/// snapshots, in a form that can cross a process boundary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsDelta {
    /// Counter increments by name (zero rows omitted).
    pub counters: BTreeMap<String, u64>,
    /// Absolute max-gauge values by name (only gauges that rose since the
    /// previous snapshot are included).
    pub maxes: BTreeMap<String, u64>,
    /// Latency-histogram increments by name (empty deltas omitted).
    pub hists: BTreeMap<String, Histogram>,
    /// Value-histogram increments by name (empty deltas omitted).
    pub value_hists: BTreeMap<String, Histogram>,
}

impl MetricsDelta {
    /// Whether there is anything to ship.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.maxes.is_empty()
            && self.hists.is_empty()
            && self.value_hists.is_empty()
    }

    /// Merges this delta into a registry (the collector's per-node or
    /// cluster-wide store). Names intern once per process — the metric-name
    /// family is small and fixed, which is exactly what [`intern_name`] is
    /// for.
    pub fn apply_to(&self, registry: &Registry) {
        for (name, v) in &self.counters {
            if *v > 0 {
                registry.add(intern_name(name), *v);
            }
        }
        for (name, v) in &self.maxes {
            registry.gauge_max(intern_name(name), *v);
        }
        for (name, h) in &self.hists {
            registry.merge_hist(intern_name(name), h);
        }
        for (name, h) in &self.value_hists {
            registry.merge_value_hist(intern_name(name), h);
        }
    }
}

impl Histogram {
    /// The per-bucket increments between `prev` and `self` (`self` must be a
    /// later snapshot of the same histogram; saturating so a corrupted pair
    /// cannot panic).
    pub fn delta_since(&self, prev: &Histogram) -> Histogram {
        let mut d = Histogram::default();
        for (slot, (a, b)) in d
            .counts
            .iter_mut()
            .zip(self.counts.iter().zip(prev.counts.iter()))
        {
            *slot = a.saturating_sub(*b);
        }
        d.total = self.total.saturating_sub(prev.total);
        d.sum_ns = self.sum_ns.saturating_sub(prev.sum_ns);
        d
    }

    /// Whether the histogram holds no observations.
    pub fn is_empty(&self) -> bool {
        self.total == 0 && self.sum_ns == 0 && self.counts.iter().all(|&c| c == 0)
    }
}

impl MetricsSnapshot {
    /// Everything that changed since `prev`, as a shippable delta: counter
    /// and histogram increments, absolute values for gauges that rose.
    pub fn delta_since(&self, prev: &MetricsSnapshot) -> MetricsDelta {
        let mut delta = MetricsDelta::default();
        for (name, v) in &self.counters {
            let d = v.saturating_sub(prev.counters.get(name).copied().unwrap_or(0));
            if d > 0 {
                delta.counters.insert((*name).to_owned(), d);
            }
        }
        for (name, v) in &self.maxes {
            if *v > prev.maxes.get(name).copied().unwrap_or(0) {
                delta.maxes.insert((*name).to_owned(), *v);
            }
        }
        for (name, h) in &self.hists {
            let d = match prev.hists.get(name) {
                Some(p) => h.delta_since(p),
                None => h.clone(),
            };
            if !d.is_empty() {
                delta.hists.insert((*name).to_owned(), d);
            }
        }
        for (name, h) in &self.value_hists {
            let d = match prev.value_hists.get(name) {
                Some(p) => h.delta_since(p),
                None => h.clone(),
            };
            if !d.is_empty() {
                delta.value_hists.insert((*name).to_owned(), d);
            }
        }
        delta
    }
}

impl Encode for Histogram {
    fn encode(&self, w: &mut Writer) {
        for c in &self.counts {
            w.put_u64(*c);
        }
        w.put_u64(self.total);
        w.put_u64(self.sum_ns);
    }
}

impl Decode for Histogram {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut h = Histogram::default();
        for c in &mut h.counts {
            *c = r.get_u64()?;
        }
        h.total = r.get_u64()?;
        h.sum_ns = r.get_u64()?;
        Ok(h)
    }
}

fn encode_u64_section(w: &mut Writer, map: &BTreeMap<String, u64>) {
    w.put_u32(map.len() as u32);
    for (name, v) in map {
        name.encode(w);
        w.put_u64(*v);
    }
}

fn decode_u64_section(r: &mut Reader<'_>) -> Result<BTreeMap<String, u64>, WireError> {
    let len = r.get_u32()? as usize;
    if len > r.remaining() {
        return Err(WireError::BadLength);
    }
    let mut map = BTreeMap::new();
    for _ in 0..len {
        let name = String::decode(r)?;
        let v = r.get_u64()?;
        map.insert(name, v);
    }
    Ok(map)
}

fn encode_hist_section(w: &mut Writer, map: &BTreeMap<String, Histogram>) {
    w.put_u32(map.len() as u32);
    for (name, h) in map {
        name.encode(w);
        h.encode(w);
    }
}

fn decode_hist_section(r: &mut Reader<'_>) -> Result<BTreeMap<String, Histogram>, WireError> {
    let len = r.get_u32()? as usize;
    if len > r.remaining() {
        return Err(WireError::BadLength);
    }
    let mut map = BTreeMap::new();
    for _ in 0..len {
        let name = String::decode(r)?;
        let h = Histogram::decode(r)?;
        map.insert(name, h);
    }
    Ok(map)
}

impl Encode for MetricsDelta {
    fn encode(&self, w: &mut Writer) {
        encode_u64_section(w, &self.counters);
        encode_u64_section(w, &self.maxes);
        encode_hist_section(w, &self.hists);
        encode_hist_section(w, &self.value_hists);
    }
}

impl Decode for MetricsDelta {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(MetricsDelta {
            counters: decode_u64_section(r)?,
            maxes: decode_u64_section(r)?,
            hists: decode_hist_section(r)?,
            value_hists: decode_hist_section(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::HIST_BOUNDS_VALUE;

    fn snap_of(reg: &Registry) -> MetricsSnapshot {
        reg.snapshot()
    }

    #[test]
    fn delta_roundtrip_and_apply_reconstructs() {
        let src = Registry::default();
        src.add("uls/accepted", 12);
        src.add("pds/signed", 3);
        src.gauge_max("engine/peak", 40);
        src.observe_ns("crypto/sign_ns", 1_500);
        src.observe_value("net/round_ms", 250);
        let first = snap_of(&src);
        let d1 = first.delta_since(&MetricsSnapshot::default());

        src.add("uls/accepted", 5);
        src.gauge_max("engine/peak", 55);
        src.observe_ns("crypto/sign_ns", 9_000_000);
        let second = snap_of(&src);
        let d2 = second.delta_since(&first);
        assert_eq!(d2.counters.get("uls/accepted"), Some(&5));
        assert!(!d2.counters.contains_key("pds/signed"));
        assert_eq!(d2.maxes.get("engine/peak"), Some(&55));

        // Wire round-trip of both deltas, applied in order, reconstructs the
        // source registry exactly.
        let dst = Registry::default();
        for d in [&d1, &d2] {
            let bytes = d.to_bytes();
            let decoded = MetricsDelta::from_bytes(&bytes).expect("decode");
            assert_eq!(decoded, *d);
            decoded.apply_to(&dst);
        }
        assert_eq!(snap_of(&dst), second);
    }

    #[test]
    fn empty_and_unchanged_deltas() {
        let d = MetricsDelta::default();
        assert!(d.is_empty());
        let bytes = d.to_bytes();
        assert_eq!(MetricsDelta::from_bytes(&bytes).expect("decode"), d);

        let reg = Registry::default();
        reg.add("a", 1);
        let snap = reg.snapshot();
        assert!(snap.delta_since(&snap).is_empty());
    }

    #[test]
    fn histogram_delta_since() {
        let mut a = Histogram::default();
        a.observe_bounded(&HIST_BOUNDS_VALUE, 3);
        let mut b = a.clone();
        b.observe_bounded(&HIST_BOUNDS_VALUE, 700);
        let d = b.delta_since(&a);
        assert_eq!(d.total, 1);
        assert!(!d.is_empty());
        assert!(a.delta_since(&a).is_empty());
        // Corrupted (reversed) pair saturates instead of panicking.
        assert!(a.delta_since(&b).is_empty());
    }

    #[test]
    fn truncated_bytes_rejected() {
        let reg = Registry::default();
        reg.add("x", 7);
        reg.observe_value("v", 3);
        let snap = reg.snapshot();
        let d = snap.delta_since(&MetricsSnapshot::default());
        let bytes = d.to_bytes();
        for cut in 0..bytes.len() {
            assert!(MetricsDelta::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn absurd_section_length_rejected() {
        let mut w = Writer::default();
        w.put_u32(u32::MAX); // counters section claims 4 billion entries
        let bytes = w.into_bytes();
        assert!(matches!(
            MetricsDelta::from_bytes(&bytes),
            Err(WireError::BadLength) | Err(WireError::UnexpectedEof)
        ));
    }
}
