//! Feldman verifiable secret sharing.
//!
//! A dealer publishing commitments `C_k = g^{a_k}` to the coefficients of its
//! Shamir polynomial lets every receiver check its share non-interactively:
//! `g^{f(i)} = Π_k C_k^{i^k}`. This is the verifiability layer used by the
//! joint-Feldman DKG ([`crate::dkg`]), by partial-signature verification in
//! [`crate::thresh`], and by the proactive update/recovery dealings in
//! [`crate::refresh`].
//!
//! # Examples
//!
//! ```
//! use proauth_crypto::group::{Group, GroupId};
//! use proauth_crypto::shamir::Polynomial;
//! use proauth_crypto::feldman::Commitments;
//!
//! let group = Group::new(GroupId::Toy64);
//! let mut rng = rand::thread_rng();
//! let poly = Polynomial::random(&group, 2, &mut rng);
//! let comms = Commitments::from_polynomial(&group, &poly);
//! assert!(comms.verify_share_in(&group, 3, &poly.eval_at(3)));
//! ```

use crate::group::Group;
use crate::shamir::Polynomial;
use proauth_primitives::bigint::BigUint;
use proauth_primitives::sha256;
use proauth_primitives::wire::{Decode, Encode, Reader, WireError, Writer};

/// Feldman coefficient commitments `C_k = g^{a_k}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Commitments {
    c: Vec<BigUint>,
}

impl Commitments {
    /// Commits to every coefficient of `poly`.
    pub fn from_polynomial(group: &Group, poly: &Polynomial) -> Self {
        Commitments {
            c: poly.coeffs().iter().map(|a| group.exp_g(a)).collect(),
        }
    }

    /// Constructs from raw commitment elements, validating group membership.
    ///
    /// Returns `None` if any element is not in the group or the list is empty.
    pub fn from_elements(group: &Group, c: Vec<BigUint>) -> Option<Self> {
        if c.is_empty() || !c.iter().all(|e| group.contains(e)) {
            return None;
        }
        Some(Commitments { c })
    }

    /// The committed polynomial degree.
    pub fn degree(&self) -> usize {
        self.c.len() - 1
    }

    /// Commitment to the secret: `C_0 = g^{f(0)}`.
    pub fn secret_commitment(&self) -> &BigUint {
        &self.c[0]
    }

    /// The raw commitment elements.
    pub fn elements(&self) -> &[BigUint] {
        &self.c
    }

    /// Computes `g^{f(i)}` "in the exponent": `Π_k C_k^{i^k} mod p`.
    ///
    /// One interleaved multi-exponentiation. The `i^k` exponents are tiny
    /// (`i ≤ n`, so ≲ 60 bits even at `k = 4`), and the shared Straus
    /// squaring chain only runs to the *longest* of them — a fraction of the
    /// `t+1` sequential full modpows of [`Self::eval_in_exponent_naive`].
    pub fn eval_in_exponent(&self, group: &Group, i: u32) -> BigUint {
        let pairs = self.eval_pairs(group, i);
        let borrowed: Vec<(&BigUint, &BigUint)> = self.c.iter().zip(pairs.iter()).collect();
        group.multi_exp(&borrowed)
    }

    /// `g^{f(i)}` along the seed code path (a loop of sequential modpows).
    /// Kept for the E9 ablation and the property tests.
    pub fn eval_in_exponent_naive(&self, group: &Group, i: u32) -> BigUint {
        let pairs = self.eval_pairs(group, i);
        let mut acc = group.identity();
        for (ck, i_pow) in self.c.iter().zip(pairs.iter()) {
            acc = group.mul(&acc, &group.exp_binary(ck, i_pow));
        }
        acc
    }

    /// The exponents `i^k mod q` for `k = 0..=degree`.
    fn eval_pairs(&self, group: &Group, i: u32) -> Vec<BigUint> {
        let q = group.q();
        let i_scalar = BigUint::from_u64(i as u64).rem(q);
        let mut pows = Vec::with_capacity(self.c.len());
        let mut i_pow = BigUint::one();
        for _ in &self.c {
            pows.push(i_pow.clone());
            i_pow = i_pow.mul_mod(&i_scalar, q);
        }
        pows
    }

    /// Verifies that `share` equals `f(i)` for the committed polynomial.
    pub fn verify_share_in(&self, group: &Group, i: u32, share: &BigUint) -> bool {
        if share >= group.q() {
            return false;
        }
        group.exp_g(share) == self.eval_in_exponent(group, i)
    }

    /// Share verification along the seed code path (see
    /// [`Self::eval_in_exponent_naive`]); the E9 ablation baseline.
    pub fn verify_share_in_naive(&self, group: &Group, i: u32, share: &BigUint) -> bool {
        if share >= group.q() {
            return false;
        }
        group.exp_binary(group.g(), share) == self.eval_in_exponent_naive(group, i)
    }

    /// Pointwise product of commitments: commits to the *sum* polynomial.
    ///
    /// # Panics
    ///
    /// Panics if degrees differ.
    pub fn combine(&self, group: &Group, other: &Commitments) -> Commitments {
        assert_eq!(self.c.len(), other.c.len(), "degree mismatch");
        Commitments {
            c: self
                .c
                .iter()
                .zip(&other.c)
                .map(|(a, b)| group.mul(a, b))
                .collect(),
        }
    }
}

/// One share-against-commitments check, for [`batch_verify_shares`].
#[derive(Debug, Clone, Copy)]
pub struct ShareCheck<'a> {
    /// The dealer's coefficient commitments.
    pub commitments: &'a Commitments,
    /// The receiver index `i` the share is claimed for (1-based).
    pub index: u32,
    /// The claimed share `f(i)`.
    pub share: &'a BigUint,
}

/// Randomized batch verification of many Feldman share checks (typically:
/// one receiver, many dealers): `true` ⟹ accept the whole set.
///
/// Each check `g^{s_j} = Π_k C_{j,k}^{i_j^k}` is raised to a random
/// coefficient `r_j` and all are multiplied into a single equation
///
/// ```text
/// g^{Σ_j r_j·s_j}  ==  Π_j Π_k C_{j,k}^{r_j·i_j^k}
/// ```
///
/// evaluated as one interleaved multi-exponentiation per side (equal
/// commitment bases merge their exponents). If every individual check
/// holds the batch equation holds **identically** — the right-hand
/// exponents are kept as integer products, so no subgroup-order assumption
/// on the `C_{j,k}` is needed and there are no false negatives. A set with
/// an invalid share passes with probability `≤ 1/q` per the standard
/// small-exponents argument.
///
/// The coefficients are *deterministic* Fiat–Shamir hashes of the full
/// check transcript, not fresh randomness: every honest node evaluating
/// the same adoption/complaint evidence computes the same coefficients and
/// therefore reaches the same accept/reject decision, which the
/// consensus-style call sites (certificate adoption, refresh complaints)
/// require. On `false`, callers fall back to per-item
/// [`Commitments::verify_share_in`] to identify the culprit.
pub fn batch_verify_shares(group: &Group, checks: &[ShareCheck<'_>]) -> bool {
    if checks.is_empty() {
        return true;
    }
    if checks.len() == 1 {
        let c = &checks[0];
        return c.commitments.verify_share_in(group, c.index, c.share);
    }
    if checks.iter().any(|c| c.share >= group.q()) {
        return false;
    }
    // Transcript-derived coefficients (see doc comment).
    let mut transcript = Vec::new();
    for c in checks {
        transcript.extend_from_slice(&c.commitments.to_bytes());
        transcript.extend_from_slice(&c.index.to_be_bytes());
        transcript.extend_from_slice(&c.share.to_bytes_be());
    }
    let digest = sha256::hash_parts("proauth/feldman/batch/v1", &[&transcript]);

    let mut lhs_exp = BigUint::zero();
    // (base, integer exponent) pairs for the right-hand side.
    let mut rhs: Vec<(&BigUint, BigUint)> = Vec::new();
    for (j, c) in checks.iter().enumerate() {
        let r_j = group.hash_to_scalar(
            "proauth/feldman/batch/coeff/v1",
            &[&digest, &(j as u64).to_be_bytes()],
        );
        lhs_exp = group.scalar_add(&lhs_exp, &group.scalar_mul(&r_j, c.share));
        let i_pows = c.commitments.eval_pairs(group, c.index);
        for (ck, i_pow) in c.commitments.c.iter().zip(i_pows.iter()) {
            // Integer product — deliberately NOT reduced mod q (the C_k are
            // only assumed to be elements of Z_p^*, not of the subgroup).
            let e = r_j.mul(i_pow);
            match rhs.iter_mut().find(|(b, _)| *b == ck) {
                Some((_, acc)) => *acc = acc.add(&e),
                None => rhs.push((ck, e)),
            }
        }
    }
    let rhs_pairs: Vec<(&BigUint, &BigUint)> = rhs.iter().map(|(b, e)| (*b, e)).collect();
    group.exp_g(&lhs_exp) == group.multi_exp(&rhs_pairs)
}

impl Encode for Commitments {
    fn encode(&self, w: &mut Writer) {
        self.c.encode(w);
    }
}

impl Decode for Commitments {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let c = Vec::<BigUint>::decode(r)?;
        if c.is_empty() {
            return Err(WireError::BadLength);
        }
        Ok(Commitments { c })
    }
}

/// A full Feldman dealing: public commitments plus the per-node shares
/// (`shares[i-1]` is node `i`'s share). The dealer sends each node its share
/// privately and the commitments to everyone.
#[derive(Debug, Clone)]
pub struct Dealing {
    /// Public part.
    pub commitments: Commitments,
    /// Private shares, indexed by node (1-based node `i` ↦ `shares[i-1]`).
    pub shares: Vec<BigUint>,
}

impl Dealing {
    /// Deals a random degree-`threshold` sharing of `secret` to `n` nodes.
    pub fn deal<R: rand::RngCore>(
        group: &Group,
        threshold: usize,
        n: usize,
        secret: BigUint,
        rng: &mut R,
    ) -> Self {
        let poly = Polynomial::random_with_secret(group, threshold, secret, rng);
        Self::from_polynomial(group, &poly, n)
    }

    /// Deals a sharing of zero (used by proactive refresh).
    pub fn deal_zero<R: rand::RngCore>(
        group: &Group,
        threshold: usize,
        n: usize,
        rng: &mut R,
    ) -> Self {
        Self::deal(group, threshold, n, BigUint::zero(), rng)
    }

    /// Builds the dealing for an explicit polynomial.
    pub fn from_polynomial(group: &Group, poly: &Polynomial, n: usize) -> Self {
        Dealing {
            commitments: Commitments::from_polynomial(group, poly),
            shares: (1..=n as u32).map(|i| poly.eval_at(i)).collect(),
        }
    }

    /// Node `i`'s share (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn share_for(&self, i: u32) -> &BigUint {
        &self.shares[(i - 1) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Group, StdRng) {
        (Group::new(GroupId::Toy64), StdRng::seed_from_u64(21))
    }

    #[test]
    fn honest_shares_verify() {
        let (group, mut rng) = setup();
        let secret = group.random_scalar(&mut rng);
        let dealing = Dealing::deal(&group, 2, 5, secret.clone(), &mut rng);
        for i in 1..=5u32 {
            assert!(dealing
                .commitments
                .verify_share_in(&group, i, dealing.share_for(i)));
        }
        assert_eq!(
            dealing.commitments.secret_commitment(),
            &group.exp_g(&secret)
        );
    }

    #[test]
    fn tampered_share_rejected() {
        let (group, mut rng) = setup();
        let dealing = Dealing::deal(&group, 2, 5, BigUint::from_u64(7), &mut rng);
        let bad = group.scalar_add(dealing.share_for(3), &BigUint::one());
        assert!(!dealing.commitments.verify_share_in(&group, 3, &bad));
        // Share valid for node 3 is not valid for node 4 (w.h.p.).
        assert!(!dealing
            .commitments
            .verify_share_in(&group, 4, dealing.share_for(3)));
    }

    #[test]
    fn out_of_range_share_rejected() {
        let (group, mut rng) = setup();
        let dealing = Dealing::deal(&group, 1, 3, BigUint::zero(), &mut rng);
        let oversized = dealing.share_for(1).add(group.q());
        assert!(!dealing.commitments.verify_share_in(&group, 1, &oversized));
    }

    #[test]
    fn zero_dealing_has_identity_secret_commitment() {
        let (group, mut rng) = setup();
        let dealing = Dealing::deal_zero(&group, 2, 5, &mut rng);
        assert!(dealing.commitments.secret_commitment().is_one());
        for i in 1..=5u32 {
            assert!(dealing
                .commitments
                .verify_share_in(&group, i, dealing.share_for(i)));
        }
    }

    #[test]
    fn combine_commits_to_sum() {
        let (group, mut rng) = setup();
        let d1 = Dealing::deal(&group, 2, 4, BigUint::from_u64(3), &mut rng);
        let d2 = Dealing::deal(&group, 2, 4, BigUint::from_u64(9), &mut rng);
        let combined = d1.commitments.combine(&group, &d2.commitments);
        for i in 1..=4u32 {
            let sum_share = group.scalar_add(d1.share_for(i), d2.share_for(i));
            assert!(combined.verify_share_in(&group, i, &sum_share));
        }
        assert_eq!(
            combined.secret_commitment(),
            &group.exp_g(&BigUint::from_u64(12))
        );
    }

    #[test]
    fn eval_in_exponent_matches_direct() {
        let (group, mut rng) = setup();
        let poly = Polynomial::random(&group, 3, &mut rng);
        let comms = Commitments::from_polynomial(&group, &poly);
        for i in [1u32, 2, 9, 20] {
            assert_eq!(
                comms.eval_in_exponent(&group, i),
                group.exp_g(&poly.eval_at(i))
            );
        }
    }

    #[test]
    fn fast_and_naive_eval_agree() {
        let (group, mut rng) = setup();
        let poly = Polynomial::random(&group, 3, &mut rng);
        let comms = Commitments::from_polynomial(&group, &poly);
        for i in [1u32, 2, 9, 20, 1000] {
            assert_eq!(
                comms.eval_in_exponent(&group, i),
                comms.eval_in_exponent_naive(&group, i)
            );
        }
        for i in 1..=4u32 {
            let share = poly.eval_at(i);
            assert!(comms.verify_share_in(&group, i, &share));
            assert!(comms.verify_share_in_naive(&group, i, &share));
        }
    }

    #[test]
    fn batch_accepts_all_valid_and_rejects_any_invalid() {
        let (group, mut rng) = setup();
        let dealings: Vec<Dealing> = (0..4)
            .map(|k| Dealing::deal(&group, 2, 5, BigUint::from_u64(k), &mut rng))
            .collect();
        // Receiver 3 checks its share from every dealer.
        let checks: Vec<ShareCheck<'_>> = dealings
            .iter()
            .map(|d| ShareCheck {
                commitments: &d.commitments,
                index: 3,
                share: d.share_for(3),
            })
            .collect();
        assert!(batch_verify_shares(&group, &checks));
        assert!(batch_verify_shares(&group, &[]));
        assert!(batch_verify_shares(&group, &checks[..1]));

        // Corrupt one share: the batch must reject.
        let bad = group.scalar_add(dealings[2].share_for(3), &BigUint::one());
        let mut bad_checks = checks.clone();
        bad_checks[2].share = &bad;
        assert!(!batch_verify_shares(&group, &bad_checks));

        // Out-of-range share: reject without panicking.
        let oversized = dealings[0].share_for(3).add(group.q());
        bad_checks[2].share = &oversized;
        assert!(!batch_verify_shares(&group, &bad_checks));
    }

    #[test]
    fn wire_roundtrip() {
        let (group, mut rng) = setup();
        let dealing = Dealing::deal(&group, 2, 3, BigUint::from_u64(5), &mut rng);
        let bytes = dealing.commitments.to_bytes();
        let decoded = Commitments::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, dealing.commitments);
    }

    #[test]
    fn from_elements_validates() {
        let (group, mut rng) = setup();
        let dealing = Dealing::deal(&group, 1, 3, BigUint::one(), &mut rng);
        let elems = dealing.commitments.elements().to_vec();
        assert!(Commitments::from_elements(&group, elems).is_some());
        assert!(Commitments::from_elements(&group, vec![]).is_none());
        assert!(Commitments::from_elements(&group, vec![BigUint::zero()]).is_none());
    }
}
