//! Collection strategies (mirror of `proptest::collection`).

use crate::strategy::{Reason, Strategy};
use rand::rngs::StdRng;
use rand::Rng;

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_incl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max_incl: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max_incl: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max_incl: *r.end() }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn try_new_value(&self, rng: &mut StdRng) -> Result<Vec<S::Value>, Reason> {
        let len = rng.gen_range(self.size.min..=self.size.max_incl);
        (0..len).map(|_| self.element.try_new_value(rng)).collect()
    }
}

/// A `Vec` of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
