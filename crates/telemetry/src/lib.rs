//! `proauth-telemetry` — hand-rolled flight-recorder telemetry for the
//! proauth workspace: a metrics registry (counters, max-gauges, fixed-bucket
//! latency histograms), a span-style phase timer keyed to the time-unit /
//! refreshment schedule, and a JSONL flight-recorder sink.
//!
//! Zero external dependencies, consistent with the vendored rand / proptest /
//! criterion shims: the build environment has no crates.io access, and the
//! paper's substrates are all built from scratch anyway.
//!
//! # Shape
//!
//! A [`Telemetry`] handle is either **off** (`Telemetry::off()`, the
//! default — a `None` inner, every operation a no-op) or **on**, holding a
//! [`Registry`] and optionally a [`Sink`]. The simulation engine owns the
//! handle (via `SimConfig`); deep layers (DISPERSE, ULS, PA, PDS sessions,
//! adversaries) never see it — they record through the ambient thread-local
//! scope ([`count`], [`observe_ns`], [`timed`], [`trace`]), which the engine
//! installs per node execution and per adversary callback.
//!
//! # Determinism
//!
//! The round engine must stay bit-identical across worker-pool sizes with
//! telemetry on or off. Three rules enforce that (see `registry`):
//! per-node shards merged at round barriers in `NodeId` order, commutative
//! counter/gauge merges, and wall-clock values confined to histograms and
//! `wall_*` event fields (which [`strip_wall_fields`] removes for golden
//! comparisons). Telemetry reads nothing back into the simulation: enabling
//! it cannot change a `SimResult`.
//!
//! # Cost when disabled
//!
//! Instrumented call sites compile to a relaxed atomic load and a branch
//! (the process-global hot flag, raised only while an enabled handle
//! exists). The e11 benchmark's telemetry ablation row measures exactly
//! this.

pub mod delta;
pub mod event;
pub mod phase;
pub mod registry;
pub mod sink;
mod scope;

pub use delta::MetricsDelta;
pub use event::{strip_wall_fields, EventBuf, Field};
pub use phase::{PhaseTimer, PHASE_NORMAL, PHASE_REFRESH1, PHASE_REFRESH2};
pub use registry::{
    Histogram, MetricsSnapshot, Registry, Shard, UnitMetrics, HIST_BOUNDS_NS, HIST_BOUNDS_VALUE,
};
pub use scope::{
    count, gauge_max, hot, install, observe_ns, observe_value, scope_active, timed, trace,
};
pub use sink::{memory_contents, Sink};

/// Interns a dynamically-built metric name (e.g. the per-cluster keys of the
/// §6 hierarchy: `"engine/cluster3/non_op_rounds"`) into a process-lifetime
/// string usable with the `&'static str` metric APIs. Each unique name leaks
/// exactly once per process; intended for small bounded key families
/// (clusters, phases), never for unbounded identifiers.
pub fn intern_name(name: &str) -> &'static str {
    use std::collections::BTreeMap;
    use std::sync::OnceLock;
    static INTERNED: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let map = INTERNED.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut map = lock(map);
    if let Some(&s) = map.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    map.insert(name.to_owned(), leaked);
    leaked
}

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Environment variable naming the JSONL trace file for a run.
pub const TRACE_ENV: &str = "PROAUTH_TRACE";

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[derive(Debug)]
struct Inner {
    registry: Registry,
    sink: Option<Sink>,
    /// Per-unit counter deltas captured by [`Telemetry::unit_mark`].
    units: Mutex<Vec<UnitMetrics>>,
    /// Snapshot at the previous unit mark, for delta computation.
    last_mark: Mutex<MetricsSnapshot>,
    /// Keeps the process-global hot flag raised while this handle lives.
    _active: scope::ActiveToken,
}

/// A cloneable telemetry handle; clones share the same registry and sink.
/// The default handle is **off** and near-free to carry around.
///
/// Note that because clones share state, two simulation runs that should be
/// metered independently need two separately-constructed handles.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Telemetry(off)"),
            Some(inner) => write!(
                f,
                "Telemetry(on, sink: {})",
                match &inner.sink {
                    None => "none",
                    Some(Sink::File(_)) => "file",
                    Some(Sink::Memory(_)) => "memory",
                }
            ),
        }
    }
}

impl Telemetry {
    /// The disabled handle (the default everywhere).
    pub fn off() -> Self {
        Telemetry { inner: None }
    }

    fn on(sink: Option<Sink>) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                registry: Registry::default(),
                sink,
                units: Mutex::new(Vec::new()),
                last_mark: Mutex::new(MetricsSnapshot::default()),
                _active: scope::ActiveToken::new(),
            })),
        }
    }

    /// Metrics registry only — no flight-recorder sink.
    pub fn enabled() -> Self {
        Telemetry::on(None)
    }

    /// Metrics plus a JSONL flight recorder writing to `path`
    /// (created/truncated).
    pub fn with_trace_path(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(Telemetry::on(Some(Sink::file(path.as_ref())?)))
    }

    /// Metrics plus an in-memory JSONL sink; returns the shared buffer for
    /// later inspection (see [`memory_contents`]).
    pub fn with_memory_sink() -> (Self, Arc<Mutex<Vec<u8>>>) {
        let (sink, buf) = Sink::memory();
        (Telemetry::on(Some(sink)), buf)
    }

    /// Off unless `PROAUTH_TRACE=path` is set, in which case a file-sink
    /// handle (falling back to off, with a note on stderr, if the path
    /// cannot be created). Intended for single runs — two concurrent runs
    /// constructed from the same environment would race on the file.
    pub fn from_env() -> Self {
        match std::env::var(TRACE_ENV) {
            Ok(path) if !path.is_empty() => match Telemetry::with_trace_path(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("proauth-telemetry: cannot open {TRACE_ENV}={path}: {e}");
                    Telemetry::off()
                }
            },
            _ => Telemetry::off(),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// A fresh shard for a node (or the engine) to record into; `None` when
    /// the handle is off, so disabled runs allocate nothing.
    pub fn new_shard(&self) -> Option<Shard> {
        self.is_on().then(Shard::default)
    }

    /// Merges a shard's metrics into the registry and appends its buffered
    /// trace events to the sink. The engine calls this at round barriers in
    /// `NodeId` order — that ordering is what makes the trace byte-identical
    /// across worker-pool sizes.
    pub fn merge_shard(&self, shard: &mut Shard) {
        let Some(inner) = &self.inner else {
            return;
        };
        if shard.is_empty() {
            return;
        }
        let events = shard.drain_into(&inner.registry);
        if let Some(sink) = &inner.sink {
            sink.write(events.as_bytes());
        }
    }

    /// Appends pre-encoded JSONL event bytes straight to the sink
    /// (cluster-trace assembly: node-shard blobs cross the process boundary
    /// already encoded, and must land between the synthesized round events
    /// byte-for-byte).
    pub fn append_raw(&self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        if let Some(inner) = &self.inner {
            if let Some(sink) = &inner.sink {
                sink.write(bytes);
            }
        }
    }

    /// Emits one event straight to the sink (engine-thread use: run/round/
    /// unit boundaries, phase spans).
    pub fn emit_event(&self, kind: &str, fill: impl FnOnce(&mut EventBuf)) {
        let Some(inner) = &self.inner else {
            return;
        };
        let Some(sink) = &inner.sink else {
            return;
        };
        let mut ev = EventBuf::new(kind);
        fill(&mut ev);
        sink.write(ev.finish().as_bytes());
    }

    /// Adds to a counter directly (engine-thread accounting such as the
    /// delivery diff).
    pub fn add(&self, name: &'static str, v: u64) {
        if let Some(inner) = &self.inner {
            if v > 0 {
                inner.registry.add(name, v);
            }
        }
    }

    /// Raises a max-gauge directly.
    pub fn gauge_max(&self, name: &'static str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge_max(name, v);
        }
    }

    /// Records a latency observation directly.
    pub fn observe_ns(&self, name: &'static str, ns: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.observe_ns(name, ns);
        }
    }

    /// Records a unitless value observation (e.g. rounds) directly.
    pub fn observe_value(&self, name: &'static str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.observe_value(name, v);
        }
    }

    /// Current value of a counter (0 when off or never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.registry.counter(name))
    }

    /// A point-in-time copy of every metric (`None` when off).
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|inner| inner.registry.snapshot())
    }

    /// Closes a time unit: captures the counter deltas since the previous
    /// mark as a [`UnitMetrics`] row and emits a `unit_end` event carrying
    /// them (counters are deterministic at round barriers, so these fields
    /// are part of the golden trace).
    pub fn unit_mark(&self, unit: u64) {
        let Some(inner) = &self.inner else {
            return;
        };
        let snap = inner.registry.snapshot();
        let deltas = {
            let mut last = lock(&inner.last_mark);
            let deltas = snap.counter_deltas(&last);
            *last = snap;
            deltas
        };
        self.emit_event("unit_end", |ev| {
            ev.u64("unit", unit);
            for (name, v) in &deltas {
                ev.u64(name, *v);
            }
        });
        lock(&inner.units).push(UnitMetrics {
            unit,
            counters: deltas,
        });
    }

    /// The per-unit counter-delta rows captured so far.
    pub fn units(&self) -> Vec<UnitMetrics> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |inner| lock(&inner.units).clone())
    }

    /// Flushes the sink (file sinks buffer).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            if let Some(sink) = &inner.sink {
                sink.flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_inert() {
        let t = Telemetry::off();
        assert!(!t.is_on());
        assert!(t.new_shard().is_none());
        t.add("x", 5);
        t.unit_mark(0);
        assert_eq!(t.counter("x"), 0);
        assert!(t.snapshot().is_none());
        assert!(t.units().is_empty());
        assert_eq!(format!("{t:?}"), "Telemetry(off)");
    }

    #[test]
    fn enabled_handle_counts_and_marks_units() {
        let t = Telemetry::enabled();
        assert!(t.is_on());
        t.add("layer/x", 3);
        t.unit_mark(0);
        t.add("layer/x", 4);
        t.add("layer/y", 1);
        t.unit_mark(1);
        let units = t.units();
        assert_eq!(units.len(), 2);
        assert_eq!(units[0].counters["layer/x"], 3);
        assert_eq!(units[1].counters["layer/x"], 4);
        assert_eq!(units[1].counters["layer/y"], 1);
        assert_eq!(t.counter("layer/x"), 7);
    }

    #[test]
    fn shard_merge_reaches_sink_and_registry() {
        let (t, buf) = Telemetry::with_memory_sink();
        let mut shard = t.new_shard().expect("shard");
        shard.set_ctx(2, 9);
        shard.count("c", 1);
        shard.trace("tick", |ev| {
            ev.u64("v", 7);
        });
        t.merge_shard(&mut shard);
        t.emit_event("round_end", |ev| {
            ev.u64("round", 9);
        });
        assert_eq!(t.counter("c"), 1);
        assert_eq!(
            memory_contents(&buf),
            "{\"ev\":\"tick\",\"node\":2,\"round\":9,\"v\":7}\n\
             {\"ev\":\"round_end\",\"round\":9}\n"
        );
    }

    #[test]
    fn unit_end_event_carries_sorted_deltas() {
        let (t, buf) = Telemetry::with_memory_sink();
        t.add("b/two", 2);
        t.add("a/one", 1);
        t.unit_mark(0);
        assert_eq!(
            memory_contents(&buf),
            "{\"ev\":\"unit_end\",\"unit\":0,\"a/one\":1,\"b/two\":2}\n"
        );
    }

    #[test]
    fn hot_flag_follows_handle_lifetime() {
        // Another test may hold a handle concurrently, so only assert the
        // monotone part: while we hold one, the flag is up.
        let t = Telemetry::enabled();
        assert!(hot());
        drop(t);
    }
}
