//! `proauth` — scenario runner CLI.
//!
//! Runs a configurable ULS network against a chosen adversary and prints a
//! full report: per-node traffic, alerts, impersonation analysis, ideal-model
//! conformance, and (s,t)-limit accounting.
//!
//! ```text
//! cargo run -p proauth-examples --bin proauth -- [options]
//! cargo run -p proauth-examples --bin proauth -- chaos [options]
//! cargo run -p proauth-examples --bin proauth -- service [options]
//!
//! The `chaos` subcommand runs the degradation sweep instead of a single
//! scenario: the standard intensity ramp (calm / sub-budget / over-budget)
//! across the (s,t) boundary, one full ULS run per point. Exit code 0 means
//! the boundary was demonstrated (sub-budget guarantees held, over-budget
//! degraded loudly), 1 means it was not. `chaos` takes --n --t --units
//! --normal --seed.
//!
//! The `service` subcommand runs the ALS layer as a signing service: an
//! open-loop client workload (Poisson-like arrivals, 3:1 sign:verify) drives
//! concurrent sign sessions, and the run reports completion, online/sustained
//! signatures per second, and latency quantiles from telemetry. `service`
//! takes --n --t --units --seed --group, plus:
//!   --rate <int>         mean offered ops per round, in milli-ops
//!                        (default 2000 = 2 ops/round)
//!   --window <int>       batch-verify window; 1 disables amortization
//!                        (default 8)
//!   --mix <spec>         op mix, e.g. sign=8,verify=1,refresh=0.01
//!                        (default sign=3,verify=1)
//!   --preprocess         enable nonce preprocessing + Lagrange precompute
//!
//! Options:
//!   --n <int>            nodes (default 5)
//!   --t <int>            threshold (default (n-1)/2)
//!   --units <int>        time units to simulate (default 3)
//!   --normal <int>       normal-operation rounds per unit, even (default 12)
//!   --seed <int>         master seed (default 0)
//!   --group <id>         toy64 | s256 | s512 | s1024 (default toy64)
//!   --auth <mode>        sign | mac (default sign)
//!   --adversary <name>   none | drop:<pct> | replay | isolate:<node> |
//!                        wipe:<node> | hijack:<node> (default none)
//!   --clusters           run the §6 two-level hierarchy (√n clusters, each
//!                        with its own PDS, top-level PDS over
//!                        representatives) instead of the flat scheme;
//!                        supports adversary none | drop:<pct> | replay |
//!                        isolate:<node>
//!   --trace <path>       write a JSONL flight-recorder trace to <path>
//!                        (also enables the metrics report; PROAUTH_TRACE=path
//!                        works too)
//!   --parallel           run nodes on worker threads
//!   --verbose            print every output event
//! ```

use proauth_adversary::{run_sweep, Hijacker, LimitObserver, LinkCutter, Replayer, SweepConfig};
use proauth_core::authenticator::HeartbeatApp;
use proauth_core::awareness;
use proauth_core::uls::{uls_schedule, AuthMode, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_sim::adversary::{
    BreakPlan, FaithfulUl, NetView, UlAdversary,
};
use proauth_sim::clock::TimeView;
use proauth_sim::message::{Envelope, NodeId, OutputEvent};
use proauth_sim::runner::{run_ul, SimConfig, SimResult};
use std::collections::HashMap;
use std::process::exit;

struct Wiper {
    target: NodeId,
    break_at: u64,
    leave_at: u64,
}

impl UlAdversary for Wiper {
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        if view.time.round == self.break_at {
            BreakPlan::break_into([self.target])
        } else if view.time.round == self.leave_at {
            BreakPlan::leave([self.target])
        } else {
            BreakPlan::none()
        }
    }
    fn corrupt(&mut self, _n: NodeId, state: &mut dyn std::any::Any, _t: &TimeView) {
        if let Some(node) = state.downcast_mut::<UlsNode<HeartbeatApp>>() {
            node.corrupt_wipe();
            proauth_sim::telemetry::count("adversary/wipes", 1);
        }
    }
    fn deliver(&mut self, sent: &[Envelope], _v: &NetView<'_>) -> Vec<Envelope> {
        sent.to_vec()
    }
}

fn usage() -> ! {
    eprintln!("see the module docs at the top of examples/proauth_cli.rs for usage");
    exit(2)
}

fn parse_args(args: impl IntoIterator<Item = String>) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let Some(key) = arg.strip_prefix("--") else {
            eprintln!("unexpected argument: {arg}");
            usage()
        };
        match key {
            "parallel" | "verbose" | "preprocess" | "clusters" => {
                out.insert(key.to_owned(), "true".to_owned());
            }
            "n" | "t" | "units" | "normal" | "seed" | "group" | "auth" | "adversary"
            | "trace" | "rate" | "window" | "mix" => {
                let Some(value) = args.next() else {
                    eprintln!("--{key} needs a value");
                    usage()
                };
                out.insert(key.to_owned(), value);
            }
            _ => {
                eprintln!("unknown option --{key}");
                usage()
            }
        }
    }
    out
}

fn get<T: std::str::FromStr>(args: &HashMap<String, String>, key: &str, default: T) -> T {
    match args.get(key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad value for --{key}: {v}");
            usage()
        }),
    }
}

/// The `chaos` subcommand: run the standard degradation ramp and report
/// whether the (s,t) boundary showed up where the paper says it should.
fn chaos_main(args: &HashMap<String, String>) -> ! {
    let n: usize = get(args, "n", 5);
    let t: usize = get(args, "t", (n - 1) / 2);
    let units: u64 = get(args, "units", 4);
    let normal: u64 = get(args, "normal", 8);
    let seed: u64 = get(args, "seed", 0);
    if n < 2 * t + 1 {
        eprintln!("need n >= 2t+1 (got n={n}, t={t})");
        exit(2);
    }
    if !normal.is_multiple_of(2) {
        eprintln!("--normal must be even");
        exit(2);
    }
    println!("proauth chaos sweep: n={n} t={t} units={units} normal={normal} seed={seed}");
    println!("impairment budget: t={t} nodes per unit (Definition 7)\n");

    let cfg = SweepConfig::boundary_ramp(n, t, units, normal, seed);
    let points = run_sweep(&cfg);
    let mut demonstrated = true;
    for p in &points {
        println!("{p}");
        // Sub-budget points must uphold every guarantee; over-budget points
        // must degrade *loudly* — a silent pass past the boundary means the
        // accounting is broken.
        if p.intended_sub_budget != p.healthy() || p.intended_sub_budget == p.alarm() {
            demonstrated = false;
        }
    }
    println!();
    if demonstrated {
        println!(
            "boundary demonstrated: sub-budget guarantees held, over-budget degraded with alarms"
        );
        exit(0)
    }
    println!("boundary NOT demonstrated (see points above)");
    exit(1)
}

/// The `service` subcommand: drive the ALS layer with the open-loop client
/// workload and report signing-as-a-service throughput and latency.
fn service_main(args: &HashMap<String, String>) -> ! {
    use proauth_pds::als::{AlsConfig, AlsPds};
    use proauth_pds::als_node::AlsProcess;
    use proauth_sim::adversary::PassiveAl;
    use proauth_sim::clock::Schedule;
    use proauth_sim::runner::run_al_with_inputs;
    use proauth_sim::workload::{Workload, WorkloadConfig};
    use std::collections::BTreeSet;

    let n: usize = get(args, "n", 5);
    let t: usize = get(args, "t", (n - 1) / 2);
    let units: u64 = get(args, "units", 2);
    let seed: u64 = get(args, "seed", 0);
    let rate: u64 = get(args, "rate", 2_000);
    let window: usize = get(args, "window", 8);
    let mix = args.get("mix").cloned();
    let preprocess = args.contains_key("preprocess");
    if n < 2 * t + 1 {
        eprintln!("need n >= 2t+1 (got n={n}, t={t})");
        exit(2);
    }
    let group_id = match args.get("group").map(String::as_str) {
        None | Some("toy64") => GroupId::Toy64,
        Some("s256") => GroupId::S256,
        Some("s512") => GroupId::S512,
        Some("s1024") => GroupId::S1024,
        Some(other) => {
            eprintln!("unknown group {other}");
            usage()
        }
    };
    println!(
        "proauth signing service: n={n} t={t} units={units} group={group_id} \
         rate={rate}m ops/round window={window} mix={} preprocess={preprocess} seed={seed}\n",
        mix.as_deref().unwrap_or("sign=3,verify=1")
    );

    let schedule = Schedule::new(20, 1, 8);
    let mut cfg = SimConfig::new(n, t, schedule);
    cfg.setup_rounds = 2;
    cfg.total_rounds = schedule.unit_rounds * units;
    cfg.seed = seed;
    cfg.parallel = args.contains_key("parallel");
    let telemetry = proauth_sim::Telemetry::enabled();
    cfg.telemetry = telemetry.clone();

    let wcfg = match &mix {
        None => WorkloadConfig::with_rate(seed ^ 0xE13, rate),
        Some(spec) => match WorkloadConfig::with_mix(seed ^ 0xE13, rate, spec) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("bad --mix: {e}");
                exit(2);
            }
        },
    };
    let workload = Workload::new(wcfg, n);
    let offered = workload.offered_signs(cfg.total_rounds);
    let group = Group::new(group_id);
    let start = std::time::Instant::now();
    let result = run_al_with_inputs(
        cfg,
        |id| {
            let mut c = AlsConfig::new(group.clone(), n, t);
            c.nonce_pool = if preprocess { 64 } else { 0 };
            c.verify_window = window;
            AlsProcess::new(AlsPds::new(c, id))
        },
        &mut PassiveAl,
        |id, round| workload.input(id, round),
    );
    let elapsed = start.elapsed();

    let mut distinct: BTreeSet<(Vec<u8>, u64)> = BTreeSet::new();
    for node_log in &result.outputs {
        for (_, ev) in node_log {
            if let OutputEvent::Signed { msg, unit } = ev {
                distinct.insert((msg.clone(), *unit));
            }
        }
    }
    let signed = distinct.len();
    let snap = telemetry.snapshot().expect("telemetry enabled");
    let normal_ns = snap.hists.get("phase/normal_ns").map_or(0, |h| h.sum_ns);
    println!("signed {signed} of {offered} offered sign requests");
    if normal_ns > 0 {
        println!(
            "online throughput:    {:.1} sig/s of normal-phase engine time",
            signed as f64 * 1e9 / normal_ns as f64
        );
    }
    if !elapsed.is_zero() {
        println!(
            "sustained throughput: {:.1} sig/s wall-clock (setup + refresh included)",
            signed as f64 / elapsed.as_secs_f64()
        );
    }
    if let Some(h) = snap.value_hists.get("pds/sign_latency_rounds") {
        let q = h.quantiles_value(&[0.5, 0.95, 0.99]);
        println!(
            "sign latency (rounds): p50 {}  p95 {}  p99 {}",
            q[0], q[1], q[2]
        );
    }
    if let Some(metrics) = proauth_sim::report::render_metrics(&telemetry) {
        println!("\nmetrics:");
        print!("{metrics}");
    }
    exit(0)
}

#[allow(clippy::too_many_lines)]
fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("chaos") {
        raw.remove(0);
        chaos_main(&parse_args(raw));
    }
    if raw.first().map(String::as_str) == Some("service") {
        raw.remove(0);
        service_main(&parse_args(raw));
    }
    let args = parse_args(raw);
    let n: usize = get(&args, "n", 5);
    let t: usize = get(&args, "t", (n - 1) / 2);
    let units: u64 = get(&args, "units", 3);
    let normal: u64 = get(&args, "normal", 12);
    let seed: u64 = get(&args, "seed", 0);
    if n < 2 * t + 1 {
        eprintln!("need n >= 2t+1 (got n={n}, t={t})");
        exit(2);
    }
    if !normal.is_multiple_of(2) {
        eprintln!("--normal must be even");
        exit(2);
    }
    let group_id = match args.get("group").map(String::as_str) {
        None | Some("toy64") => GroupId::Toy64,
        Some("s256") => GroupId::S256,
        Some("s512") => GroupId::S512,
        Some("s1024") => GroupId::S1024,
        Some(other) => {
            eprintln!("unknown group {other}");
            usage()
        }
    };
    let auth_mode = match args.get("auth").map(String::as_str) {
        None | Some("sign") => AuthMode::Sign,
        Some("mac") => AuthMode::SessionMac,
        Some(other) => {
            eprintln!("unknown auth mode {other}");
            usage()
        }
    };

    if args.contains_key("clusters") {
        hier_main(&args, group_id, auth_mode);
    }

    let schedule = uls_schedule(normal);
    let mut cfg = SimConfig::new(n, t, schedule);
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = schedule.unit_rounds * units;
    cfg.seed = seed;
    cfg.parallel = args.contains_key("parallel");
    apply_trace(&args, &mut cfg);
    // Keep a handle for the post-run metrics report (the config moves into
    // the runner).
    let telemetry = cfg.telemetry.clone();

    let group = Group::new(group_id);
    let make_node = |id: NodeId| {
        let mut c = UlsConfig::new(group.clone(), n, t);
        c.auth_mode = auth_mode;
        UlsNode::new(c, id, HeartbeatApp::default())
    };

    println!(
        "proauth scenario: n={n} t={t} units={units} group={group_id} auth={auth_mode:?} seed={seed}"
    );
    let adversary_spec = args
        .get("adversary")
        .cloned()
        .unwrap_or_else(|| "none".to_owned());
    println!("adversary: {adversary_spec}\n");

    let parse_node = |spec: &str| -> NodeId {
        let id: u32 = spec.parse().unwrap_or_else(|_| {
            eprintln!("bad node id {spec}");
            usage()
        });
        if id == 0 || id as usize > n {
            eprintln!("node id out of range: {id}");
            exit(2);
        }
        NodeId(id)
    };

    // Dispatch on the adversary; each arm runs the same simulation.
    let result: SimResult;
    let mut limit_note = String::new();
    if adversary_spec == "none" {
        result = run_ul(cfg, make_node, &mut FaithfulUl);
    } else if let Some(pct) = adversary_spec.strip_prefix("drop:") {
        let p: f64 = pct.parse::<f64>().unwrap_or_else(|_| usage()) / 100.0;
        let mut adv = proauth_adversary::RandomDropper::new(p, seed ^ 0xD20);
        result = run_ul(cfg, make_node, &mut adv);
    } else if adversary_spec == "replay" {
        let mut adv = Replayer::new(6);
        result = run_ul(cfg, make_node, &mut adv);
    } else if let Some(node) = adversary_spec.strip_prefix("isolate:") {
        let victim = parse_node(node);
        let from = schedule.unit_rounds;
        let mut adv = LimitObserver::new(
            LinkCutter::isolate(victim, n).during(from, 2 * schedule.unit_rounds),
        );
        result = run_ul(cfg, make_node, &mut adv);
        limit_note = format!("max impaired per unit: {}", adv.max_impaired());
    } else if let Some(node) = adversary_spec.strip_prefix("wipe:") {
        let victim = parse_node(node);
        let mut adv = Wiper {
            target: victim,
            break_at: 4,
            leave_at: 8,
        };
        result = run_ul(cfg, make_node, &mut adv);
    } else if let Some(node) = adversary_spec.strip_prefix("hijack:") {
        let victim = parse_node(node);
        if units < 2 {
            eprintln!("hijack needs at least 2 units");
            exit(2);
        }
        let mut adv = LimitObserver::new(Hijacker::new(
            group.clone(),
            victim,
            1,
            schedule.unit_rounds,
        ));
        result = run_ul(cfg, make_node, &mut adv);
        limit_note = format!(
            "cert harvested: {}, forgeries: {}, max impaired per unit: {}",
            adv.inner.harvested_cert.is_some(),
            adv.inner.forgeries_sent,
            adv.max_impaired()
        );
    } else {
        eprintln!("unknown adversary {adversary_spec}");
        usage()
    }

    print_report(&args, n, &schedule, &telemetry, &result, &limit_note);
}

/// Applies `--trace` / `PROAUTH_TRACE` to the config (a requested-and-
/// unusable trace is a hard error for the CLI, not a silent run).
fn apply_trace(args: &HashMap<String, String>, cfg: &mut SimConfig) {
    if let Some(path) = args.get("trace") {
        cfg.telemetry = match proauth_sim::Telemetry::with_trace_path(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot open trace file {path}: {e}");
                exit(2);
            }
        };
    } else if let Ok(path) = std::env::var(proauth_sim::telemetry::TRACE_ENV) {
        // SimConfig::new already resolved PROAUTH_TRACE; the library falls
        // back to no tracing when the path is unwritable.
        if !path.is_empty() && !cfg.telemetry.is_on() {
            eprintln!("cannot open trace file {path} (from PROAUTH_TRACE)");
            exit(2);
        }
    }
}

/// The `--clusters` scenario: the §6 two-level hierarchy — √n clusters, each
/// running its own cluster-local ULS stack, a top-level PDS over the cluster
/// representatives, and inter-cluster traffic certified through the
/// authenticator.
fn hier_main(args: &HashMap<String, String>, group_id: GroupId, auth_mode: AuthMode) -> ! {
    use proauth_core::hier::{heartbeat_msg, HierConfig, HierNode, HIER_SETUP_ROUNDS};

    let n: usize = get(args, "n", 16);
    let units: u64 = get(args, "units", 3);
    let normal: u64 = get(args, "normal", 12);
    let seed: u64 = get(args, "seed", 0);
    if !normal.is_multiple_of(2) {
        eprintln!("--normal must be even");
        exit(2);
    }
    let mut hcfg = HierConfig::new(Group::new(group_id), n);
    hcfg.auth_mode = auth_mode;
    let k = hcfg.partition.cluster_count();

    let schedule = uls_schedule(normal);
    let mut cfg = SimConfig::new(n, 1, schedule);
    cfg.setup_rounds = HIER_SETUP_ROUNDS;
    cfg.total_rounds = schedule.unit_rounds * units;
    cfg.seed = seed;
    cfg.parallel = args.contains_key("parallel");
    cfg.clusters = Some(hcfg.partition.clusters.clone());
    apply_trace(args, &mut cfg);
    let telemetry = cfg.telemetry.clone();

    println!(
        "proauth hierarchy: n={n} clusters={k} group={group_id} auth={auth_mode:?} \
         units={units} seed={seed}"
    );
    for (c, members) in hcfg.partition.clusters.iter().enumerate() {
        println!(
            "  cluster {c}: nodes {}..{} (t={}, representative {})",
            members.first().unwrap(),
            members.last().unwrap(),
            hcfg.partition.cluster_threshold(c),
            hcfg.partition.representative(c, 0),
        );
    }
    let adversary_spec = args
        .get("adversary")
        .cloned()
        .unwrap_or_else(|| "none".to_owned());
    println!("adversary: {adversary_spec}\n");

    let make_node = |id: NodeId| HierNode::new(hcfg.clone(), id, HeartbeatApp::default());
    let result: SimResult;
    let mut limit_note = String::new();
    if adversary_spec == "none" {
        result = run_ul(cfg, make_node, &mut FaithfulUl);
    } else if let Some(pct) = adversary_spec.strip_prefix("drop:") {
        let p: f64 = pct.parse::<f64>().unwrap_or_else(|_| usage()) / 100.0;
        let mut adv = proauth_adversary::RandomDropper::new(p, seed ^ 0xD20);
        result = run_ul(cfg, make_node, &mut adv);
    } else if adversary_spec == "replay" {
        let mut adv = Replayer::new(6);
        result = run_ul(cfg, make_node, &mut adv);
    } else if let Some(node) = adversary_spec.strip_prefix("isolate:") {
        let victim: u32 = node.parse().unwrap_or_else(|_| usage());
        if victim == 0 || victim as usize > n {
            eprintln!("node id out of range: {victim}");
            exit(2);
        }
        let from = schedule.unit_rounds;
        let mut adv = LimitObserver::with_clusters(
            LinkCutter::isolate(NodeId(victim), n).during(from, 2 * schedule.unit_rounds),
            hcfg.partition.clusters.clone(),
        );
        result = run_ul(cfg, make_node, &mut adv);
        limit_note = format!(
            "max impaired per unit: {}, majority-compromised clusters: {}",
            adv.max_impaired(),
            adv.max_compromised_clusters()
        );
    } else {
        eprintln!("--clusters supports adversary none | drop:<pct> | replay | isolate:<node>");
        exit(2);
    }

    // Per-cluster liveness: which units each cluster co-signed the
    // top-level heartbeat for (any member — robust to re-elections).
    println!("top-level heartbeat signatures per cluster:");
    for (c, members) in hcfg.partition.clusters.iter().enumerate() {
        let mut units_signed: Vec<u64> = members
            .iter()
            .flat_map(|&m| result.events_of(NodeId(m)))
            .filter_map(|(_, ev)| match ev {
                OutputEvent::Signed { msg, unit } if *msg == heartbeat_msg(*unit) => Some(*unit),
                _ => None,
            })
            .collect();
        units_signed.sort_unstable();
        units_signed.dedup();
        println!("  cluster {c}: units {units_signed:?}");
    }
    println!();

    print_report(args, n, &schedule, &telemetry, &result, &limit_note);
    exit(0)
}

/// The common post-run report shared by the flat and hierarchy scenarios.
fn print_report(
    args: &HashMap<String, String>,
    n: usize,
    schedule: &proauth_sim::clock::Schedule,
    telemetry: &proauth_sim::Telemetry,
    result: &SimResult,
    limit_note: &str,
) {
    println!("per-node summary:");
    for id in NodeId::all(n) {
        let log = &result.outputs[id.idx()];
        let count = |f: &dyn Fn(&OutputEvent) -> bool| log.iter().filter(|(_, e)| f(e)).count();
        println!(
            "  {id}: accepted {:4}  sent {:4}  alerts {}  broken-rounds {:3}  operational {}",
            count(&|e| matches!(e, OutputEvent::Accepted { .. })),
            count(&|e| matches!(e, OutputEvent::Sent { .. })),
            count(&|e| *e == OutputEvent::Alert),
            result.stats.broken_rounds[id.idx()],
            result.final_operational[id.idx()],
        );
    }
    println!("\ntraffic: {}", result.stats);
    if !limit_note.is_empty() {
        println!("adversary: {limit_note}");
    }

    // Awareness analysis.
    let imps = awareness::find_impersonations(&result.outputs, schedule, |_, _| false);
    let uncovered = awareness::unalerted_impersonations(
        &result.outputs,
        schedule,
        |_, _| false,
        |node, unit| result.alerted_in_unit(node, unit, schedule),
    );
    println!(
        "awareness: {} impersonation incidents, {} NOT covered by same-unit alerts",
        imps.len(),
        uncovered.len()
    );

    // Unit-by-unit operator view.
    println!("\nunit timeline:");
    for summary in proauth_sim::report::unit_summaries(result, schedule) {
        print!("{summary}");
    }

    if let Some(metrics) = proauth_sim::report::render_metrics(telemetry) {
        println!("\nmetrics:");
        print!("{metrics}");
        if let Some(path) = args.get("trace") {
            println!("trace written to {path}");
        }
    }

    if args.contains_key("verbose") {
        println!("\nfull event log:");
        for id in NodeId::all(n) {
            for (round, ev) in &result.outputs[id.idx()] {
                println!("  [{round:4}] {id}: {ev:?}");
            }
        }
    }

    for line in &result.adversary_output {
        println!("adversary output: {line}");
    }
}
