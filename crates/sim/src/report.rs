//! Unit-by-unit summaries of a run — the "system log" view of the global
//! output that an operator (the consumer of alerts, per the paper's
//! awareness discussion) would actually read.

use crate::clock::Schedule;
use crate::message::{NodeId, OutputEvent};
use crate::runner::{SimResult, SimStats};
use std::fmt;
use std::time::Duration;

/// Wall-clock throughput of a run, for benchmark reporting (experiment E11).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputSummary {
    /// Rounds executed per second.
    pub rounds_per_sec: f64,
    /// Honest messages sent per second.
    pub msgs_per_sec: f64,
    /// Honest payload bytes sent per second.
    pub bytes_per_sec: f64,
}

impl ThroughputSummary {
    /// Derives throughput from a run's statistics and its wall-clock time.
    pub fn from_run(stats: &SimStats, total_rounds: u64, elapsed: Duration) -> Self {
        let secs = elapsed.as_secs_f64().max(f64::EPSILON);
        ThroughputSummary {
            rounds_per_sec: total_rounds as f64 / secs,
            msgs_per_sec: stats.messages_sent as f64 / secs,
            bytes_per_sec: stats.bytes_sent as f64 / secs,
        }
    }
}

impl fmt::Display for ThroughputSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} rounds/s, {:.1} msgs/s, {:.1} KiB/s",
            self.rounds_per_sec,
            self.msgs_per_sec,
            self.bytes_per_sec / 1024.0
        )
    }
}

/// Aggregates for one node in one time unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeUnitSummary {
    /// Top-layer messages sent.
    pub sent: usize,
    /// Authenticated messages accepted.
    pub accepted: usize,
    /// Alerts raised.
    pub alerts: usize,
    /// Whether a "compromised" line appeared this unit.
    pub compromised: bool,
    /// Whether a "recovered" line appeared this unit.
    pub recovered: bool,
    /// Threshold signatures reported.
    pub signed: usize,
}

/// Aggregates for one time unit across the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitSummary {
    /// The time unit index.
    pub unit: u64,
    /// Per-node rows.
    pub nodes: Vec<NodeUnitSummary>,
}

impl UnitSummary {
    /// Total alerts in the unit.
    pub fn total_alerts(&self) -> usize {
        self.nodes.iter().map(|n| n.alerts).sum()
    }

    /// Nodes that were compromised at some point in the unit.
    pub fn compromised_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.compromised)
            .map(|(i, _)| NodeId::from_idx(i))
            .collect()
    }
}

/// Builds per-unit summaries from a run's global output.
pub fn unit_summaries(result: &SimResult, schedule: &Schedule) -> Vec<UnitSummary> {
    let n = result.outputs.len();
    let last_round = result
        .outputs
        .iter()
        .flat_map(|l| l.iter().map(|(r, _)| *r))
        .max()
        .unwrap_or(0);
    let units = schedule.unit_of(last_round) + 1;
    let mut out: Vec<UnitSummary> = (0..units)
        .map(|unit| UnitSummary {
            unit,
            nodes: vec![NodeUnitSummary::default(); n],
        })
        .collect();
    for (idx, log) in result.outputs.iter().enumerate() {
        for (round, ev) in log {
            let unit = schedule.unit_of(*round) as usize;
            let cell = &mut out[unit].nodes[idx];
            match ev {
                OutputEvent::Sent { .. } => cell.sent += 1,
                OutputEvent::Accepted { .. } => cell.accepted += 1,
                OutputEvent::Alert => cell.alerts += 1,
                OutputEvent::Compromised => cell.compromised = true,
                OutputEvent::Recovered => cell.recovered = true,
                OutputEvent::Signed { .. } => cell.signed += 1,
                _ => {}
            }
        }
    }
    out
}

impl fmt::Display for UnitSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "unit {}:", self.unit)?;
        for (idx, node) in self.nodes.iter().enumerate() {
            let mut flags = String::new();
            if node.compromised {
                flags.push_str(" COMPROMISED");
            }
            if node.recovered {
                flags.push_str(" RECOVERED");
            }
            if node.alerts > 0 {
                flags.push_str(&format!(" ALERT×{}", node.alerts));
            }
            writeln!(
                f,
                "  {}: sent {:4}  accepted {:4}  signed {:2}{}",
                NodeId::from_idx(idx),
                node.sent,
                node.accepted,
                node.signed,
                flags
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Rom;
    use crate::runner::{SimResult, SimStats};

    fn mk_result(outputs: Vec<Vec<(u64, OutputEvent)>>) -> SimResult {
        let n = outputs.len();
        SimResult {
            outputs,
            adversary_output: Vec::new(),
            stats: SimStats::default(),
            final_operational: vec![true; n],
            roms: vec![Rom::new(); n],
            transcript: None,
        }
    }

    #[test]
    fn summaries_bucket_by_unit() {
        let schedule = Schedule::new(10, 2, 2);
        let result = mk_result(vec![
            vec![
                (1, OutputEvent::Sent { to: NodeId(2), msg: vec![] }),
                (12, OutputEvent::Alert),
                (13, OutputEvent::Compromised),
            ],
            vec![(3, OutputEvent::Accepted { from: NodeId(1), msg: vec![] })],
        ]);
        let summaries = unit_summaries(&result, &schedule);
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].nodes[0].sent, 1);
        assert_eq!(summaries[0].nodes[1].accepted, 1);
        assert_eq!(summaries[0].total_alerts(), 0);
        assert_eq!(summaries[1].nodes[0].alerts, 1);
        assert!(summaries[1].nodes[0].compromised);
        assert_eq!(summaries[1].compromised_nodes(), vec![NodeId(1)]);
    }

    #[test]
    fn display_renders_flags() {
        let schedule = Schedule::new(10, 2, 2);
        let result = mk_result(vec![vec![
            (0, OutputEvent::Alert),
            (1, OutputEvent::Recovered),
        ]]);
        let text = format!("{}", unit_summaries(&result, &schedule)[0]);
        assert!(text.contains("ALERT×1"));
        assert!(text.contains("RECOVERED"));
    }

    #[test]
    fn throughput_summary_from_run() {
        let stats = SimStats {
            messages_sent: 1000,
            bytes_sent: 4096,
            ..SimStats::default()
        };
        let t = ThroughputSummary::from_run(&stats, 100, Duration::from_secs(2));
        assert!((t.rounds_per_sec - 50.0).abs() < 1e-9);
        assert!((t.msgs_per_sec - 500.0).abs() < 1e-9);
        assert!(format!("{t}").contains("rounds/s"));
    }

    #[test]
    fn empty_run_yields_one_empty_unit() {
        let schedule = Schedule::new(10, 2, 2);
        let result = mk_result(vec![vec![], vec![]]);
        let summaries = unit_summaries(&result, &schedule);
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].total_alerts(), 0);
    }
}
