//! A minimal `poll(2)` readiness loop.
//!
//! The offline workspace has no `libc` crate and no async runtime, so the
//! daemon's event loop is a direct FFI declaration of `poll(2)` (zero-dep,
//! like the telemetry crate). One syscall per loop iteration multiplexes all
//! peer sockets, the listener, and the wall-clock round deadline (via the
//! poll timeout) — ample for the tens of descriptors a node or proxy holds.

use std::io;
use std::os::fd::RawFd;

/// Readable readiness (`POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Writable readiness (`POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Error condition (`POLLERR`, always polled).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (`POLLHUP`, always polled).
pub const POLLHUP: i16 = 0x010;

#[cfg(unix)]
mod sys {
    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        /// `poll(2)`. `nfds_t` is `c_ulong` on every Unix we target.
        pub fn poll(fds: *mut PollFd, nfds: core::ffi::c_ulong, timeout: core::ffi::c_int)
            -> core::ffi::c_int;
    }
}

/// One descriptor's readiness after a [`poll`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct Readiness {
    /// Data (or an incoming connection) can be read.
    pub readable: bool,
    /// The socket can accept more outgoing bytes.
    pub writable: bool,
    /// The peer closed or the descriptor errored; drain then drop it.
    pub hangup: bool,
}

/// Polls `fds` — `(descriptor, also_wait_writable)` pairs — for up to
/// `timeout_ms` (`None` = block indefinitely). Returns one [`Readiness`] per
/// input descriptor, in order. A zero-length `fds` with a timeout is a
/// portable sleep.
///
/// # Errors
///
/// Propagates the OS error; `EINTR` is retried internally with a coarsely
/// adjusted remaining timeout.
#[cfg(unix)]
pub fn poll(fds: &[(RawFd, bool)], timeout_ms: Option<u64>) -> io::Result<Vec<Readiness>> {
    let mut pollfds: Vec<sys::PollFd> = fds
        .iter()
        .map(|&(fd, want_write)| sys::PollFd {
            fd,
            events: POLLIN | if want_write { POLLOUT } else { 0 },
            revents: 0,
        })
        .collect();
    let deadline = timeout_ms.map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
    loop {
        let timeout: core::ffi::c_int = match deadline {
            None => -1,
            Some(d) => {
                let left = d.saturating_duration_since(std::time::Instant::now());
                left.as_millis().min(i32::MAX as u128) as core::ffi::c_int
            }
        };
        let rc = unsafe {
            sys::poll(
                pollfds.as_mut_ptr(),
                pollfds.len() as core::ffi::c_ulong,
                timeout,
            )
        };
        if rc >= 0 {
            return Ok(pollfds
                .iter()
                .map(|p| Readiness {
                    readable: p.revents & POLLIN != 0,
                    writable: p.revents & POLLOUT != 0,
                    hangup: p.revents & (POLLERR | POLLHUP) != 0,
                })
                .collect());
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
        if let Some(d) = deadline {
            if std::time::Instant::now() >= d {
                return Ok(vec![Readiness::default(); pollfds.len()]);
            }
        }
    }
}

/// Non-Unix hosts have no daemon mode; the in-process engine remains the
/// only backend there.
#[cfg(not(unix))]
pub fn poll(_fds: &[(RawFd, bool)], _timeout_ms: Option<u64>) -> io::Result<Vec<Readiness>> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "daemon mode requires poll(2)",
    ))
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;

    #[test]
    fn poll_reports_readable_pipe() {
        let (mut tx, rx) = std::os::unix::net::UnixStream::pair().unwrap();
        // Nothing written yet: not readable within 10 ms.
        let r = poll(&[(rx.as_raw_fd(), false)], Some(10)).unwrap();
        assert!(!r[0].readable);
        tx.write_all(b"x").unwrap();
        let r = poll(&[(rx.as_raw_fd(), false)], Some(1000)).unwrap();
        assert!(r[0].readable);
        // Writable side of a fresh socket is immediately writable.
        let r = poll(&[(tx.as_raw_fd(), true)], Some(10)).unwrap();
        assert!(r[0].writable);
    }

    #[test]
    fn empty_poll_is_a_sleep() {
        let start = std::time::Instant::now();
        let r = poll(&[], Some(20)).unwrap();
        assert!(r.is_empty());
        assert!(start.elapsed().as_millis() >= 15);
    }
}
