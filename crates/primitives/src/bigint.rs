//! Arbitrary-precision unsigned integer arithmetic.
//!
//! The offline dependency set contains no bignum crate, so the modular
//! arithmetic needed by the Schnorr group ([`crate::sha256`] supplies the
//! random oracle) is implemented here from scratch: schoolbook
//! multiplication, Knuth Algorithm D division, square-and-multiply modular
//! exponentiation, and Miller–Rabin primality testing.
//!
//! Limbs are `u64`, stored little-endian, with the invariant that the most
//! significant limb is nonzero (the canonical representation of zero is an
//! empty limb vector).
//!
//! # Examples
//!
//! ```
//! use proauth_primitives::bigint::BigUint;
//!
//! let a = BigUint::from_u64(1 << 40);
//! let b = BigUint::from_u64(12345);
//! let (q, r) = a.divrem(&b);
//! assert_eq!(&q * &b + &r, a);
//! ```

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// See the [module documentation](self) for representation details.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; highest limb nonzero (empty == zero).
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Creates a value from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Creates a value from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut n = BigUint { limbs: vec![lo, hi] };
        n.normalize();
        n
    }

    /// Creates a value from little-endian limbs (any trailing zeros allowed).
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Returns the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` if the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Returns the value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&hi) => (self.limbs.len() - 1) * 64 + (64 - hi.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            false
        } else {
            (self.limbs[limb] >> (i % 64)) & 1 == 1
        }
    }

    /// Returns the `width`-bit window starting at bit `lo` (little-endian),
    /// zero-padded past the top. `width` must be `≤ 64`.
    ///
    /// This is the digit-extraction primitive for windowed and fixed-base
    /// exponentiation: digit `d` of a radix-`2^w` decomposition is
    /// `bits_range(d·w, w)`.
    pub fn bits_range(&self, lo: usize, width: usize) -> u64 {
        debug_assert!((1..=64).contains(&width));
        let limb_idx = lo / 64;
        let bit_idx = lo % 64;
        let mut v = self.limbs.get(limb_idx).copied().unwrap_or(0) >> bit_idx;
        if bit_idx != 0 && bit_idx + width > 64 {
            v |= self.limbs.get(limb_idx + 1).copied().unwrap_or(0) << (64 - bit_idx);
        }
        if width < 64 {
            v &= (1u64 << width) - 1;
        }
        v
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Parses a big-endian byte string.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Self::from_limbs(limbs)
    }

    /// Serializes to minimal big-endian bytes (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zero bytes of the most significant limb.
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to big-endian bytes left-padded with zeros to `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a hexadecimal string (no prefix, case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns `None` if `s` contains non-hex characters.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.trim();
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let chars: Vec<u8> = s.bytes().collect();
        let mut i = 0;
        // Handle odd-length strings by treating the first nibble alone.
        if chars.len() % 2 == 1 {
            bytes.push(hex_val(chars[0])?);
            i = 1;
        }
        while i < chars.len() {
            bytes.push(hex_val(chars[i])? << 4 | hex_val(chars[i + 1])?);
            i += 2;
        }
        Some(Self::from_bytes_be(&bytes))
    }

    /// Formats as lowercase hex without leading zeros (`"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let bytes = self.to_bytes_be();
        let mut s = String::with_capacity(bytes.len() * 2);
        for (i, b) in bytes.iter().enumerate() {
            if i == 0 {
                s.push_str(&format!("{b:x}"));
            } else {
                s.push_str(&format!("{b:02x}"));
            }
        }
        s
    }

    /// Compares two values.
    pub fn cmp_big(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Adds `other` to `self`.
    pub fn add(&self, other: &Self) -> Self {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = l.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        Self::from_limbs(out)
    }

    /// Subtracts `other` from `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &Self) -> Self {
        assert!(
            self.cmp_big(other) != Ordering::Less,
            "BigUint subtraction underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Self::from_limbs(out)
    }

    /// Multiplies `self` by `other` (schoolbook).
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        Self::from_limbs(out)
    }

    /// Left-shifts by `n` bits.
    pub fn shl(&self, n: usize) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &limb in &self.limbs {
                out.push((limb << bit_shift) | carry);
                carry = limb >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Self::from_limbs(out)
    }

    /// Right-shifts by `n` bits.
    pub fn shr(&self, n: usize) -> Self {
        let limb_shift = n / 64;
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let bit_shift = n % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = src.get(i + 1).map_or(0, |&l| l << (64 - bit_shift));
                out.push(lo | hi);
            }
        }
        Self::from_limbs(out)
    }

    /// Divides `self` by `divisor`, returning `(quotient, remainder)`.
    ///
    /// Uses Knuth's Algorithm D.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn divrem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp_big(divisor) {
            Ordering::Less => return (Self::zero(), self.clone()),
            Ordering::Equal => return (Self::one(), Self::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0];
            let mut q = Vec::with_capacity(self.limbs.len());
            let mut rem = 0u128;
            for &limb in self.limbs.iter().rev() {
                let cur = (rem << 64) | limb as u128;
                q.push((cur / d as u128) as u64);
                rem = cur % d as u128;
            }
            q.reverse();
            return (Self::from_limbs(q), Self::from_u64(rem as u64));
        }

        // Normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let mut u_limbs = u.limbs.clone();
        // Ensure u has an extra high limb.
        u_limbs.push(0);
        let m = u_limbs.len() - 1 - n; // number of quotient limbs - 1
        let v_limbs = &v.limbs;
        let v_hi = v_limbs[n - 1];
        let v_hi2 = v_limbs[n - 2];
        let mut q_limbs = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            // Estimate q_hat from the top two limbs of the current remainder.
            let num = ((u_limbs[j + n] as u128) << 64) | u_limbs[j + n - 1] as u128;
            let mut q_hat = num / v_hi as u128;
            let mut r_hat = num % v_hi as u128;
            while q_hat >= 1 << 64
                || q_hat * v_hi2 as u128 > ((r_hat << 64) | u_limbs[j + n - 2] as u128)
            {
                q_hat -= 1;
                r_hat += v_hi as u128;
                if r_hat >= 1 << 64 {
                    break;
                }
            }
            // Multiply-and-subtract: u[j..j+n+1] -= q_hat * v.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = q_hat * v_limbs[i] as u128 + carry;
                carry = p >> 64;
                let sub = (p as u64) as i128;
                let cur = u_limbs[j + i] as i128 - sub + borrow;
                u_limbs[j + i] = cur as u64;
                borrow = cur >> 64; // arithmetic shift keeps the sign
            }
            let cur = u_limbs[j + n] as i128 - carry as i128 + borrow;
            u_limbs[j + n] = cur as u64;
            borrow = cur >> 64;

            if borrow < 0 {
                // q_hat was one too large: add back.
                q_hat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let sum = u_limbs[j + i] as u128 + v_limbs[i] as u128 + carry;
                    u_limbs[j + i] = sum as u64;
                    carry = sum >> 64;
                }
                u_limbs[j + n] = u_limbs[j + n].wrapping_add(carry as u64);
            }
            q_limbs[j] = q_hat as u64;
        }

        let q = Self::from_limbs(q_limbs);
        let r = Self::from_limbs(u_limbs[..n].to_vec()).shr(shift);
        (q, r)
    }

    /// Returns `self mod m`.
    pub fn rem(&self, m: &Self) -> Self {
        self.divrem(m).1
    }

    /// Modular addition: `(self + other) mod m`.
    ///
    /// Both operands must already be reduced mod `m`.
    pub fn add_mod(&self, other: &Self, m: &Self) -> Self {
        let s = self.add(other);
        if s.cmp_big(m) == Ordering::Less {
            s
        } else {
            s.sub(m)
        }
    }

    /// Modular subtraction: `(self - other) mod m`.
    ///
    /// Both operands must already be reduced mod `m`.
    pub fn sub_mod(&self, other: &Self, m: &Self) -> Self {
        if self.cmp_big(other) != Ordering::Less {
            self.sub(other)
        } else {
            self.add(m).sub(other)
        }
    }

    /// Modular multiplication: `(self * other) mod m`.
    pub fn mul_mod(&self, other: &Self, m: &Self) -> Self {
        self.mul(other).rem(m)
    }

    /// Modular exponentiation `self^exp mod m`.
    ///
    /// Dispatches to Montgomery-form exponentiation
    /// ([`crate::montgomery::Montgomery`]) for odd multi-limb moduli — the
    /// protocol's hot path — and falls back to the generic
    /// square-and-multiply otherwise. Callers exponentiating repeatedly with
    /// one modulus should hold a [`crate::montgomery::Montgomery`] context
    /// directly to amortize its setup.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn modpow(&self, exp: &Self, m: &Self) -> Self {
        assert!(!m.is_zero(), "modpow with zero modulus");
        if m.limbs.len() >= 2 && !m.is_even() {
            if let Some(ctx) = crate::montgomery::Montgomery::new(m) {
                return ctx.modpow(self, exp);
            }
        }
        self.modpow_generic(exp, m)
    }

    /// Generic square-and-multiply modular exponentiation (one Knuth
    /// division per step). Works for every modulus; kept public as the
    /// reference implementation and for the E9 ablation bench.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn modpow_generic(&self, exp: &Self, m: &Self) -> Self {
        assert!(!m.is_zero(), "modpow with zero modulus");
        if m.is_one() {
            return Self::zero();
        }
        let mut result = Self::one();
        let mut base = self.rem(m);
        for i in 0..exp.bits() {
            if exp.bit(i) {
                result = result.mul_mod(&base, m);
            }
            if i + 1 < exp.bits() {
                base = base.mul_mod(&base, m);
            }
        }
        result
    }

    /// Modular inverse for a *prime* modulus via Fermat's little theorem.
    ///
    /// Returns `None` if `self ≡ 0 (mod p)`.
    pub fn inv_mod_prime(&self, p: &Self) -> Option<Self> {
        let reduced = self.rem(p);
        if reduced.is_zero() {
            return None;
        }
        let exp = p.sub(&Self::from_u64(2));
        Some(reduced.modpow(&exp, p))
    }

    /// Greatest common divisor (binary-free Euclid).
    pub fn gcd(&self, other: &Self) -> Self {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Samples a uniform value in `[0, bound)` using rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: rand::RngCore>(rng: &mut R, bound: &Self) -> Self {
        assert!(!bound.is_zero(), "random_below with zero bound");
        let bits = bound.bits();
        let limbs = bits.div_ceil(64);
        let top_mask = if bits.is_multiple_of(64) {
            u64::MAX
        } else {
            (1u64 << (bits % 64)) - 1
        };
        loop {
            let mut candidate: Vec<u64> = (0..limbs).map(|_| rng.next_u64()).collect();
            if let Some(last) = candidate.last_mut() {
                *last &= top_mask;
            }
            let candidate = Self::from_limbs(candidate);
            if candidate.cmp_big(bound) == Ordering::Less {
                return candidate;
            }
        }
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random bases.
    pub fn is_probable_prime<R: rand::RngCore>(&self, rounds: u32, rng: &mut R) -> bool {
        if self.is_zero() || self.is_one() {
            return false;
        }
        let two = Self::from_u64(2);
        let three = Self::from_u64(3);
        if self.cmp_big(&three) != Ordering::Greater {
            return true; // 2 and 3
        }
        if self.is_even() {
            return false;
        }
        // Quick trial division by small primes.
        for &p in &[3u64, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47] {
            let pb = Self::from_u64(p);
            if self.cmp_big(&pb) == Ordering::Equal {
                return true;
            }
            if self.rem(&pb).is_zero() {
                return false;
            }
        }
        // Write self - 1 = d * 2^r.
        let n_minus_1 = self.sub(&Self::one());
        let mut d = n_minus_1.clone();
        let mut r = 0usize;
        while d.is_even() {
            d = d.shr(1);
            r += 1;
        }
        let bound = self.sub(&three); // bases in [2, n-2]
        'witness: for _ in 0..rounds {
            let a = Self::random_below(rng, &bound).add(&two);
            let mut x = a.modpow(&d, self);
            if x.is_one() || x.cmp_big(&n_minus_1) == Ordering::Equal {
                continue;
            }
            for _ in 0..r - 1 {
                x = x.mul_mod(&x, self);
                if x.cmp_big(&n_minus_1) == Ordering::Equal {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_big(other)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl std::ops::Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        BigUint::add(self, rhs)
    }
}

impl std::ops::Add<&BigUint> for BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        BigUint::add(&self, rhs)
    }
}

impl std::ops::Sub for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        BigUint::sub(self, rhs)
    }
}

impl std::ops::Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        BigUint::mul(self, rhs)
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn b(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(!BigUint::one().is_zero());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
    }

    #[test]
    fn add_small() {
        assert_eq!(b(2).add(&b(3)), b(5));
        assert_eq!(b(u64::MAX).add(&b(1)), BigUint::from_u128(1u128 << 64));
    }

    #[test]
    fn sub_small() {
        assert_eq!(b(5).sub(&b(3)), b(2));
        assert_eq!(
            BigUint::from_u128(1u128 << 64).sub(&b(1)),
            b(u64::MAX)
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = b(1).sub(&b(2));
    }

    #[test]
    fn mul_small() {
        assert_eq!(b(7).mul(&b(6)), b(42));
        let big = BigUint::from_u128(u128::MAX);
        let sq = big.mul(&big);
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let expect = BigUint::one()
            .shl(256)
            .sub(&BigUint::one().shl(129))
            .add(&BigUint::one());
        assert_eq!(sq, expect);
    }

    #[test]
    fn shifts() {
        assert_eq!(b(1).shl(64), BigUint::from_u128(1u128 << 64));
        assert_eq!(BigUint::from_u128(1u128 << 64).shr(64), b(1));
        assert_eq!(b(0b1011).shl(3), b(0b1011000));
        assert_eq!(b(0b1011000).shr(3), b(0b1011));
        assert_eq!(b(1).shr(1), BigUint::zero());
    }

    #[test]
    fn divrem_small() {
        let (q, r) = b(17).divrem(&b(5));
        assert_eq!((q, r), (b(3), b(2)));
        let (q, r) = b(4).divrem(&b(5));
        assert_eq!((q, r), (BigUint::zero(), b(4)));
        let (q, r) = b(5).divrem(&b(5));
        assert_eq!((q, r), (BigUint::one(), BigUint::zero()));
    }

    #[test]
    fn divrem_multi_limb() {
        let a = BigUint::from_hex("ffffffffffffffffffffffffffffffff00000000").unwrap();
        let d = BigUint::from_hex("fedcba9876543210f").unwrap();
        let (q, r) = a.divrem(&d);
        assert_eq!(q.mul(&d).add(&r), a);
        assert!(r < d);
    }

    #[test]
    fn divrem_addback_case() {
        // Construct a case that exercises the Knuth D "add back" branch:
        // divisor with maximal top limb.
        let d = BigUint::from_limbs(vec![0, 0, u64::MAX]);
        let a = BigUint::from_limbs(vec![u64::MAX, u64::MAX, u64::MAX, u64::MAX - 1]);
        let (q, r) = a.divrem(&d);
        assert_eq!(q.mul(&d).add(&r), a);
        assert!(r < d);
    }

    #[test]
    fn bytes_roundtrip() {
        let a = BigUint::from_hex("0123456789abcdef0123456789abcdef01").unwrap();
        assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
        assert_eq!(BigUint::from_bytes_be(&[]), BigUint::zero());
        assert_eq!(a.to_bytes_be_padded(20).len(), 20);
        assert_eq!(
            BigUint::from_bytes_be(&a.to_bytes_be_padded(32)),
            a
        );
    }

    #[test]
    fn hex_roundtrip() {
        for s in ["0", "1", "ff", "deadbeef", "123456789abcdef0123456789abcdef"] {
            let v = BigUint::from_hex(s).unwrap();
            assert_eq!(v.to_hex(), s, "hex {s}");
        }
        // Case-insensitive parse, odd lengths, leading zeros.
        assert_eq!(BigUint::from_hex("DEADBEEF").unwrap(), BigUint::from_hex("deadbeef").unwrap());
        assert_eq!(BigUint::from_hex("00ff").unwrap(), BigUint::from_u64(255));
        assert_eq!(BigUint::from_hex("f00").unwrap(), BigUint::from_u64(0xf00));
        assert!(BigUint::from_hex("xyz").is_none());
    }

    #[test]
    fn modpow_small() {
        // 3^7 mod 10 = 2187 mod 10 = 7
        assert_eq!(b(3).modpow(&b(7), &b(10)), b(7));
        // Fermat: a^(p-1) = 1 mod p for prime p
        let p = b(1_000_000_007);
        assert_eq!(b(12345).modpow(&p.sub(&BigUint::one()), &p), BigUint::one());
        assert_eq!(b(5).modpow(&BigUint::zero(), &b(7)), BigUint::one());
        assert_eq!(b(5).modpow(&b(3), &BigUint::one()), BigUint::zero());
    }

    #[test]
    fn inv_mod_prime_works() {
        let p = b(1_000_000_007);
        let a = b(123_456_789);
        let inv = a.inv_mod_prime(&p).unwrap();
        assert_eq!(a.mul_mod(&inv, &p), BigUint::one());
        assert!(BigUint::zero().inv_mod_prime(&p).is_none());
    }

    #[test]
    fn gcd_works() {
        assert_eq!(b(48).gcd(&b(18)), b(6));
        assert_eq!(b(17).gcd(&b(5)), b(1));
        assert_eq!(b(0).gcd(&b(5)), b(5));
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let bound = BigUint::from_hex("ffffffffffffffffffffffff").unwrap();
        for _ in 0..50 {
            let v = BigUint::random_below(&mut rng, &bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn miller_rabin_classifies_known_values() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in [2u64, 3, 5, 7, 101, 65537, 1_000_000_007] {
            assert!(b(p).is_probable_prime(16, &mut rng), "{p} should be prime");
        }
        for c in [1u64, 4, 100, 65535, 561 /* Carmichael */, 1_000_000_008] {
            assert!(!b(c).is_probable_prime(16, &mut rng), "{c} should be composite");
        }
        // A known 128-bit prime: 2^127 - 1 (Mersenne).
        let m127 = BigUint::one().shl(127).sub(&BigUint::one());
        assert!(m127.is_probable_prime(16, &mut rng));
    }

    #[test]
    fn mod_helpers() {
        let m = b(97);
        assert_eq!(b(90).add_mod(&b(10), &m), b(3));
        assert_eq!(b(3).sub_mod(&b(10), &m), b(90));
        assert_eq!(b(50).mul_mod(&b(2), &m), b(3));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", b(255)), "0xff");
        assert_eq!(format!("{:?}", BigUint::zero()), "BigUint(0x0)");
    }
}
