//! End-to-end: `proauth daemon` as real OS processes.
//!
//! Each test invokes the compiled `proauth` binary, which forks one `serve`
//! process per node (plus a chaos `proxy` when requested), runs the collector,
//! and self-checks the outcome against the in-process engine via `--check`.
//! Exit code 0 therefore certifies the full acceptance chain: certified keys
//! match, zero forgeries, all nodes completed every round.

use std::process::Command;

fn run_daemon(tag: &str, extra: &[&str]) -> std::process::Output {
    let dir = std::env::temp_dir().join(format!("proauth-e2e-{}-{tag}", std::process::id()));
    let addr = format!("unix:{}", dir.display());
    let out = Command::new(env!("CARGO_BIN_EXE_proauth"))
        .args(["daemon", "--n", "4", "--units", "1", "--check", "--addr", &addr])
        .args(extra)
        .output()
        .expect("spawn proauth daemon");
    let _ = std::fs::remove_dir_all(dir);
    out
}

#[test]
fn daemon_faithful_check_passes() {
    let out = run_daemon("faithful", &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "daemon exited with {}\nstdout:\n{stdout}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("check PASSED"), "missing check verdict:\n{stdout}");
    assert!(stdout.contains("bit-identical"), "faithful run must be bit-identical:\n{stdout}");
    assert!(stdout.contains("authenticated goodput"), "missing goodput report:\n{stdout}");
}

#[test]
fn daemon_chaos_check_passes() {
    let out = run_daemon("chaos", &["--delay", "20", "--dup", "5", "--reorder", "5"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "daemon exited with {}\nstdout:\n{stdout}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("check PASSED"), "missing check verdict:\n{stdout}");
    assert!(stdout.contains("chaos run"), "expected a chaos-mode check:\n{stdout}");
}
