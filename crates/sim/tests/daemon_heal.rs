//! Kill-and-recover end-to-end: a node process dies mid-run (mid-refresh,
//! by the Fig-1 schedule), is respawned from its durable state, reconnects,
//! and rejoins the running cluster — the supervised-respawn path `proauth
//! daemon` drives with real processes, here exercised in threads over Unix
//! sockets so the crash, the state reload, and the rejoin handshake all run
//! under the test harness.
//!
//! Invariants checked: setup ROMs (the cluster's certified identity) match
//! the engine run exactly, the victim is heard from again after its rejoin,
//! nothing forged is ever accepted, the collector retains the victim's slot
//! across the re-handshake (one output log, both incarnations), and healthy
//! peers observe no duplicate or reordered frames from the victim's fresh
//! streams.

use proauth_sim::adversary::FaithfulUl;
use proauth_sim::clock::Schedule;
use proauth_sim::message::{NodeId, OutputEvent};
use proauth_sim::net::{
    collect, run_node, AddrPlan, CollectorConfig, DaemonOutcome, Load, NodeNetConfig, StateDir,
};
use proauth_sim::process::{Process, RoundCtx, SetupCtx};
use proauth_sim::runner::{run_ul, SimConfig, SimResult};
use proauth_sim::ProcessDriver;
use rand::RngCore;
use std::any::Any;
use std::path::PathBuf;

/// Heartbeat node with a crash fuse: panics at `crash_at` (first incarnation
/// only), which the driver surfaces as a crashed step — the thread-level
/// stand-in for SIGKILL. The respawned incarnation runs with the fuse unset.
struct HealNode {
    me: NodeId,
    crash_at: Option<u64>,
}

impl Process for HealNode {
    fn on_setup_round(&mut self, ctx: &mut SetupCtx<'_>) {
        match ctx.setup_round {
            0 => {
                let mut key = vec![0u8; 8];
                ctx.rng.fill_bytes(&mut key);
                ctx.rom.write("self_key", key.clone());
                ctx.send_all(key);
            }
            1 => {
                let mut table = Vec::new();
                for env in ctx.inbox {
                    table.push(env.from.0 as u8);
                    table.extend_from_slice(&env.payload);
                }
                ctx.rom.write("peer_table", table);
            }
            _ => {}
        }
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
        if self.crash_at == Some(ctx.time.round) {
            panic!("injected crash at round {}", ctx.time.round);
        }
        for env in ctx.inbox {
            if env.payload.starts_with(b"hb:") {
                ctx.emit(OutputEvent::Accepted {
                    from: env.from,
                    msg: env.payload.to_vec(),
                });
            }
        }
        let hb = format!("hb:{}:{}", self.me.0, ctx.time.round).into_bytes();
        ctx.send_all(hb);
    }

    fn state_mut(&mut self) -> &mut dyn Any {
        self
    }
}

const SEED: u64 = 4321;
const N: usize = 4;
const SETUP_ROUNDS: u64 = 3;
const TOTAL_ROUNDS: u64 = 24; // three time units
const VICTIM: NodeId = NodeId(3);
/// Unit 1's refreshment phase spans rounds 8..12; round 10 is Part 2.
const CRASH_ROUND: u64 = 10;

fn schedule() -> Schedule {
    Schedule::new(8, 2, 2)
}

fn engine_run() -> SimResult {
    let mut cfg = SimConfig::new(N, 1, schedule());
    cfg.seed = SEED;
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = TOTAL_ROUNDS;
    cfg.parallel = false;
    run_ul(
        cfg,
        |id| HealNode {
            me: id,
            crash_at: None,
        },
        &mut FaithfulUl,
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("proauth-heal-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn node_cfg(me: NodeId, plan: &AddrPlan, state_root: &std::path::Path) -> NodeNetConfig {
    let mut cfg = NodeNetConfig::new(me, N, plan.clone(), schedule());
    cfg.seed = SEED;
    cfg.run_id = SEED;
    cfg.report = true;
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = TOTAL_ROUNDS;
    cfg.round_ms = 2_000;
    // Keep the cluster on a wall-clock tempo so the victim's death and
    // respawn happen while rounds are still being played.
    cfg.min_round_ms = 50;
    cfg.connect_timeout_ms = 30_000;
    cfg.state_dir = Some(state_root.to_path_buf());
    cfg
}

/// Runs the cluster with the victim crashing once and being respawned from
/// durable state. `corrupt_watermark` truncates the victim's watermark file
/// before the respawn, forcing detection-by-digest and a round-0 rejoin.
fn heal_run(tag: &str, corrupt_watermark: bool) -> DaemonOutcome {
    let dir = temp_dir(tag);
    let plan = AddrPlan::Unix { dir: dir.clone() };
    let state_root = dir.join("state");
    std::fs::create_dir_all(&state_root).unwrap();

    let collector_cfg = CollectorConfig {
        n: N,
        plan: plan.clone(),
        run_id: SEED,
        idle_timeout_ms: 30_000,
        t: 1,
        unit_rounds: schedule().unit_rounds,
        status: false,
        trace_spec: None,
    };
    let collector = std::thread::spawn(move || collect(collector_cfg));
    std::thread::sleep(std::time::Duration::from_millis(50));

    let nodes: Vec<_> = (1..=N as u32)
        .map(|id| {
            let plan = plan.clone();
            let state_root = state_root.clone();
            std::thread::spawn(move || {
                let me = NodeId(id);
                let cfg = node_cfg(me, &plan, &state_root);
                if me != VICTIM {
                    let mut driver = ProcessDriver::new(
                        HealNode { me, crash_at: None },
                        me,
                        N,
                        SEED,
                    );
                    return run_node(cfg, &mut driver, |_, _| None);
                }
                // The victim: first incarnation crashes mid-refresh...
                let mut driver = ProcessDriver::new(
                    HealNode {
                        me,
                        crash_at: Some(CRASH_ROUND),
                    },
                    me,
                    N,
                    SEED,
                );
                let crashed = run_node(cfg.clone(), &mut driver, |_, _| None);
                assert!(crashed.is_err(), "the injected crash must kill the loop");
                // ...and the supervisor respawns it from durable state.
                let sd = StateDir::open(&state_root, me.0).unwrap();
                if corrupt_watermark {
                    assert!(sd.truncate_state_file().unwrap(), "state file existed");
                }
                let rom = match sd.load_rom() {
                    Load::Ok(rom) => rom,
                    other => panic!("durable ROM must survive the crash: {other:?}"),
                };
                let resume = match sd.load_watermark() {
                    Load::Ok(wm) => {
                        assert!(!corrupt_watermark, "truncated watermark must not load");
                        wm.completed_rounds
                    }
                    Load::Corrupt => {
                        assert!(corrupt_watermark, "intact watermark read as corrupt");
                        0
                    }
                    Load::Absent => panic!("watermark file must exist after barriers"),
                };
                let mut cfg = node_cfg(me, &plan, &state_root);
                cfg.resume = Some(resume);
                let mut driver = ProcessDriver::with_rom(
                    HealNode { me, crash_at: None },
                    me,
                    N,
                    SEED,
                    rom,
                );
                run_node(cfg, &mut driver, |_, _| None)
            })
        })
        .collect();
    for t in nodes {
        t.join().unwrap().expect("node loop failed");
    }
    let outcome = collector.join().unwrap().expect("collector failed");
    let _ = std::fs::remove_dir_all(dir);
    outcome
}

fn assert_healed(outcome: &DaemonOutcome, engine: &SimResult, full_replay: bool) {
    // Setup happened before the crash and is durable: the cluster identity
    // (every ROM, the "joint key" of this harness) matches the engine run.
    assert_eq!(outcome.roms, engine.roms, "ROMs must survive the crash");

    // Zero forgeries anywhere, both victim incarnations included.
    for (i, log) in outcome.outputs.iter().enumerate() {
        for (_, event) in log {
            if let OutputEvent::Accepted { from, msg } = event {
                let text = String::from_utf8(msg.clone()).expect("utf8 heartbeat");
                let mut parts = text.splitn(3, ':');
                assert_eq!(parts.next(), Some("hb"));
                assert_eq!(
                    parts.next(),
                    Some(from.0.to_string().as_str()),
                    "node {} accepted a forged heartbeat: {text}",
                    i + 1
                );
            }
        }
    }

    // Liveness both ways after the rejoin: the respawned victim accepts
    // peers' heartbeats, and — the stronger direction — peers accept
    // heartbeats *from* the victim for late rounds, proving the cluster
    // re-authenticates the respawned process.
    let victim_accepts_late = outcome.outputs[VICTIM.idx()]
        .iter()
        .any(|(r, e)| *r > CRASH_ROUND + 2 && matches!(e, OutputEvent::Accepted { .. }));
    assert!(victim_accepts_late, "victim must accept after its rejoin");
    let heard_from_victim = outcome
        .outputs
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != VICTIM.idx())
        .flat_map(|(_, l)| l.iter())
        .any(|(r, e)| {
            *r > CRASH_ROUND + 2
                && matches!(e, OutputEvent::Accepted { from, .. } if *from == VICTIM)
        });
    assert!(heard_from_victim, "peers must hear the victim post-rejoin");

    // Slot retention: the collector kept one identity-keyed slot across the
    // victim's re-handshake — a single log holding pre-crash events AND
    // post-rejoin events, and the final report is the live incarnation's.
    let victim_log = &outcome.outputs[VICTIM.idx()];
    assert!(
        victim_log.iter().any(|(r, _)| *r < CRASH_ROUND),
        "pre-crash events retained"
    );
    assert!(
        victim_log.iter().any(|(r, _)| *r >= TOTAL_ROUNDS - 2),
        "post-rejoin events present"
    );
    assert!(outcome.reports[VICTIM.idx()].rounds > 0);

    // The rejoin was observed and charged: the collector's alarm stream
    // names the victim.
    assert!(
        outcome
            .alarms
            .iter()
            .any(|a| (a.kind == "rejoin" || a.kind == "node_rejoined") && a.node == VICTIM.0),
        "rejoin must surface in the alarm stream: {:?}",
        outcome.alarms
    );

    // Seq continuity: the victim's fresh streams re-handshake cleanly; no
    // healthy peer observes duplicated or reordered frames. A full round-0
    // replay is the exception — the victim legitimately re-sends frames for
    // rounds still inside the peers' seq-tracking window, and the duplicate
    // observation is the faithful record of that replay.
    for (i, rep) in outcome.reports.iter().enumerate() {
        if i == VICTIM.idx() {
            continue;
        }
        assert_eq!(rep.rounds, TOTAL_ROUNDS, "peer {} completed", i + 1);
        if !full_replay {
            assert_eq!(rep.dup_frames, 0, "peer {} saw duplicate frames", i + 1);
        }
        assert_eq!(rep.reorder_frames, 0, "peer {} saw reordered frames", i + 1);
    }
}

#[test]
fn killed_node_rejoins_from_durable_state_and_cluster_heals() {
    let engine = engine_run();
    let outcome = heal_run("kill", false);
    assert_healed(&outcome, &engine, false);
    // The intact watermark spared the victim a full replay: its live
    // incarnation covers only the tail of the schedule.
    assert!(outcome.reports[VICTIM.idx()].rounds < TOTAL_ROUNDS);
}

#[test]
fn corrupt_watermark_detected_by_digest_heals_from_round_zero() {
    let engine = engine_run();
    let outcome = heal_run("corrupt", true);
    assert_healed(&outcome, &engine, true);
    // The digest rejected the truncated watermark, so the victim rejoined
    // from round 0 and re-executed the whole schedule.
    assert_eq!(outcome.reports[VICTIM.idx()].rounds, TOTAL_ROUNDS);
}
