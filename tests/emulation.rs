//! Emulation tests (Definition 8 / Theorem 14's content, checked on the
//! functionality level): the *global output* of the ULS system over
//! unauthenticated links matches what the same PDS workload produces over
//! authenticated links — same signatures, same requesters, no extra events.

use proauth_core::authenticator::NullApp;
use proauth_core::uls::{sign_input, uls_schedule, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_pds::als::{AlsConfig, AlsPds};
use proauth_pds::als_node::AlsProcess;
use proauth_sim::adversary::{FaithfulUl, PassiveAl};
use proauth_sim::clock::Schedule;
use proauth_sim::message::{NodeId, OutputEvent, OutputLog};
use proauth_sim::runner::{run_al_with_inputs, run_ul_with_inputs, SimConfig};
use std::collections::BTreeSet;

const N: usize = 5;
const T: usize = 2;

/// The set of (node, msg, unit) events, ignoring timing.
type EventSet = BTreeSet<(u32, Vec<u8>, u64)>;

/// Functionality view of a run: the set of (node, msg, unit) sign requests
/// and (node, msg, unit) signed confirmations, ignoring timing.
fn functionality(outputs: &[OutputLog]) -> (EventSet, EventSet) {
    let mut requested = BTreeSet::new();
    let mut signed = BTreeSet::new();
    for (idx, log) in outputs.iter().enumerate() {
        let id = NodeId::from_idx(idx).0;
        for (_, ev) in log {
            match ev {
                OutputEvent::SignRequested { msg, unit } => {
                    requested.insert((id, msg.clone(), *unit));
                }
                OutputEvent::Signed { msg, unit } => {
                    signed.insert((id, msg.clone(), *unit));
                }
                _ => {}
            }
        }
    }
    (requested, signed)
}

#[test]
fn ul_run_emulates_al_run_on_the_functionality_level() {
    // The same three-document signing workload, one per unit.
    let docs: [&[u8]; 3] = [b"doc-a", b"doc-b", b"doc-c"];

    // --- AL side: bare PDS over authenticated links. ---
    let al_sched = Schedule::new(20, 1, 8);
    let mut al_cfg = SimConfig::new(N, T, al_sched);
    al_cfg.setup_rounds = 2;
    al_cfg.total_rounds = al_sched.unit_rounds * 3;
    al_cfg.seed = 5;
    let al_result = run_al_with_inputs(
        al_cfg,
        |id| {
            let group = Group::new(GroupId::Toy64);
            AlsProcess::new(AlsPds::new(AlsConfig::new(group, N, T), id))
        },
        &mut PassiveAl,
        |_, round| match round {
            2 => Some(docs[0].to_vec()),
            30 => Some(docs[1].to_vec()),
            50 => Some(docs[2].to_vec()),
            _ => None,
        },
    );

    // --- UL side: the full ULS over unauthenticated links. ---
    let ul_sched = uls_schedule(12);
    let mut ul_cfg = SimConfig::new(N, T, ul_sched);
    ul_cfg.setup_rounds = SETUP_ROUNDS;
    ul_cfg.total_rounds = ul_sched.unit_rounds * 3;
    ul_cfg.seed = 5;
    let normal1 = ul_sched.unit_rounds + ul_sched.refresh_rounds();
    let normal2 = 2 * ul_sched.unit_rounds + ul_sched.refresh_rounds();
    let ul_result = run_ul_with_inputs(
        ul_cfg,
        |id| {
            let group = Group::new(GroupId::Toy64);
            UlsNode::new(UlsConfig::new(group, N, T), id, NullApp)
        },
        &mut FaithfulUl,
        move |_, round| {
            if round == 2 {
                Some(sign_input(docs[0]))
            } else if round == normal1 + 2 {
                Some(sign_input(docs[1]))
            } else if round == normal2 + 2 {
                Some(sign_input(docs[2]))
            } else {
                None
            }
        },
    );

    let (al_req, al_signed) = functionality(&al_result.outputs);
    let (ul_req, ul_signed) = functionality(&ul_result.outputs);
    assert_eq!(al_req, ul_req, "identical request patterns");
    assert_eq!(al_signed, ul_signed, "identical signing outcomes");
    // Full success on both sides: every node reports every doc signed.
    assert_eq!(al_signed.len(), N * docs.len());
    // And neither side produced alerts or impersonation-relevant extras.
    assert_eq!(al_result.stats.alerts.iter().sum::<u64>(), 0);
    assert_eq!(ul_result.stats.alerts.iter().sum::<u64>(), 0);
}

#[test]
fn ul_cost_overhead_vs_al_is_bounded() {
    // The transformation's price: AUTH-SEND multiplies messages by O(n) (the
    // DISPERSE fan-out) and adds the refresh machinery. Measure the factor
    // so regressions are caught.
    let al_sched = Schedule::new(20, 1, 8);
    let mut al_cfg = SimConfig::new(N, T, al_sched);
    al_cfg.setup_rounds = 2;
    al_cfg.total_rounds = al_sched.unit_rounds * 2;
    al_cfg.seed = 6;
    let al = run_al_with_inputs(
        al_cfg,
        |id| {
            let group = Group::new(GroupId::Toy64);
            AlsProcess::new(AlsPds::new(AlsConfig::new(group, N, T), id))
        },
        &mut PassiveAl,
        |_, round| (round == 2).then(|| b"m".to_vec()),
    );

    let ul_sched = uls_schedule(12);
    let mut ul_cfg = SimConfig::new(N, T, ul_sched);
    ul_cfg.setup_rounds = SETUP_ROUNDS;
    ul_cfg.total_rounds = ul_sched.unit_rounds * 2;
    ul_cfg.seed = 6;
    let ul = run_ul_with_inputs(
        ul_cfg,
        |id| {
            let group = Group::new(GroupId::Toy64);
            UlsNode::new(UlsConfig::new(group, N, T), id, NullApp)
        },
        &mut FaithfulUl,
        |_, round| (round == 2).then(|| sign_input(b"m")),
    );

    let factor = ul.stats.messages_sent as f64 / al.stats.messages_sent.max(1) as f64;
    assert!(
        factor < 100.0,
        "UL/AL message overhead factor {factor:.1} exploded"
    );
    assert!(factor > 1.0, "UL must cost more than AL");
}
