//! HMAC-SHA-256 (RFC 2104), for the session-key authentication mode.
//!
//! The paper notes (§1.3) that instead of signing every message, nodes "can
//! use the certificates to exchange a shared key for the rest of the time
//! unit, and use the shared key to authenticate messages". The shared-key
//! mode in `proauth-core` authenticates with this HMAC.
//!
//! # Examples
//!
//! ```
//! use proauth_primitives::hmac::hmac_sha256;
//!
//! let tag = hmac_sha256(b"key", b"message");
//! assert_eq!(tag, hmac_sha256(b"key", b"message"));
//! assert_ne!(tag, hmac_sha256(b"other", b"message"));
//! ```

use crate::sha256::Sha256;

const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, data)`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    // Keys longer than the block size are hashed first.
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let digest = Sha256::digest(key);
        k[..32].copy_from_slice(&digest);
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-shape tag comparison (not constant-*time* in the hardware sense,
/// but free of early exits).
pub fn tags_equal(a: &[u8; 32], b: &[u8; 32]) -> bool {
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    #[test]
    fn rfc4231_vectors() {
        // Test case 1.
        let tag = hmac_sha256(&[0x0b; 20], b"Hi There");
        assert_eq!(
            hex::encode(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // Test case 2: key "Jefe".
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex::encode(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // Test case 3: 20×0xaa key, 50×0xdd data.
        let tag = hmac_sha256(&[0xaa; 20], &[0xdd; 50]);
        assert_eq!(
            hex::encode(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
        // Test case 6: oversized key (131 bytes of 0xaa).
        let tag = hmac_sha256(
            &[0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex::encode(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn key_sensitivity() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }

    #[test]
    fn tags_equal_works() {
        let a = hmac_sha256(b"k", b"m");
        let mut b = a;
        assert!(tags_equal(&a, &b));
        b[31] ^= 1;
        assert!(!tags_equal(&a, &b));
    }
}
