//! Time units, refreshment phases, and communication rounds (Fig. 1 of the
//! paper).
//!
//! The lifetime of the system is divided into *time units*; consecutive time
//! units overlap in a short *refreshment phase*. We model this with a global
//! physical round counter: time unit `u` occupies rounds
//! `[u·unit_rounds, (u+1)·unit_rounds)`, and the refreshment phase of unit
//! `u ≥ 1` is the first `part1_rounds + part2_rounds` rounds of the unit.
//! During Part I nodes still authenticate with unit-`u−1` keys (the paper's
//! "overlap"); Part II belongs to unit `u` proper.
//!
//! Unit 0 has no refreshment phase — its keys come from the adversary-free
//! set-up phase (`UGen`).

/// The round layout of time units and refreshment phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// Physical rounds per time unit.
    pub unit_rounds: u64,
    /// Rounds of refresh Part I (local key certification, old keys).
    pub part1_rounds: u64,
    /// Rounds of refresh Part II (PDS share refresh, new keys).
    pub part2_rounds: u64,
}

impl Schedule {
    /// A schedule validated for internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the refresh phase does not fit inside a unit.
    pub fn new(unit_rounds: u64, part1_rounds: u64, part2_rounds: u64) -> Self {
        assert!(
            part1_rounds + part2_rounds <= unit_rounds,
            "refresh phase must fit in a time unit"
        );
        assert!(part1_rounds > 0 && part2_rounds > 0);
        Schedule {
            unit_rounds,
            part1_rounds,
            part2_rounds,
        }
    }

    /// Total refresh-phase length in rounds.
    pub fn refresh_rounds(&self) -> u64 {
        self.part1_rounds + self.part2_rounds
    }

    /// The time unit containing `round`.
    pub fn unit_of(&self, round: u64) -> u64 {
        round / self.unit_rounds
    }

    /// Round index within its time unit.
    pub fn round_in_unit(&self, round: u64) -> u64 {
        round % self.unit_rounds
    }

    /// The phase of `round` within the protocol schedule.
    pub fn phase_of(&self, round: u64) -> Phase {
        let unit = self.unit_of(round);
        let r = self.round_in_unit(round);
        if unit == 0 {
            return Phase::Normal;
        }
        if r < self.part1_rounds {
            Phase::RefreshPart1 { step: r }
        } else if r < self.refresh_rounds() {
            Phase::RefreshPart2 {
                step: r - self.part1_rounds,
            }
        } else {
            Phase::Normal
        }
    }

    /// The time unit whose *authentication keys* are in force at `round`.
    ///
    /// During refresh Part I of unit `u`, messages are still certified and
    /// verified with the keys of unit `u−1` (Definition 17 treats them as
    /// belonging to that unit).
    pub fn auth_unit_of(&self, round: u64) -> u64 {
        let unit = self.unit_of(round);
        match self.phase_of(round) {
            Phase::RefreshPart1 { .. } => unit - 1,
            _ => unit,
        }
    }

    /// Whether `round` is the final round of a refreshment phase.
    pub fn is_refresh_end(&self, round: u64) -> bool {
        self.unit_of(round) > 0 && self.round_in_unit(round) + 1 == self.refresh_rounds()
    }

    /// Whether `round` is inside a refreshment phase.
    pub fn in_refresh(&self, round: u64) -> bool {
        matches!(
            self.phase_of(round),
            Phase::RefreshPart1 { .. } | Phase::RefreshPart2 { .. }
        )
    }
}

/// Where a round sits inside the time-unit schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Refresh Part I — certify new local keys with old keys.
    RefreshPart1 {
        /// Step index inside Part I (0-based).
        step: u64,
    },
    /// Refresh Part II — refresh the PDS shares with new keys.
    RefreshPart2 {
        /// Step index inside Part II (0-based).
        step: u64,
    },
    /// Ordinary operation.
    Normal,
}

/// A snapshot of "what time it is" handed to processes and adversaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeView {
    /// Global physical round counter (0-based, post-setup).
    pub round: u64,
    /// Time unit of this round.
    pub unit: u64,
    /// Time unit whose authentication keys are in force.
    pub auth_unit: u64,
    /// Schedule phase.
    pub phase: Phase,
    /// Round index within the unit.
    pub round_in_unit: u64,
}

impl TimeView {
    /// Computes the view of `round` under `schedule`.
    pub fn at(schedule: &Schedule, round: u64) -> Self {
        TimeView {
            round,
            unit: schedule.unit_of(round),
            auth_unit: schedule.auth_unit_of(round),
            phase: schedule.phase_of(round),
            round_in_unit: schedule.round_in_unit(round),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> Schedule {
        Schedule::new(30, 12, 8)
    }

    #[test]
    fn unit_boundaries() {
        let s = sched();
        assert_eq!(s.unit_of(0), 0);
        assert_eq!(s.unit_of(29), 0);
        assert_eq!(s.unit_of(30), 1);
        assert_eq!(s.round_in_unit(31), 1);
    }

    #[test]
    fn unit_zero_has_no_refresh() {
        let s = sched();
        for r in 0..30 {
            assert_eq!(s.phase_of(r), Phase::Normal, "round {r}");
            assert_eq!(s.auth_unit_of(r), 0);
        }
    }

    #[test]
    fn refresh_phases_of_unit_one() {
        let s = sched();
        assert_eq!(s.phase_of(30), Phase::RefreshPart1 { step: 0 });
        assert_eq!(s.phase_of(41), Phase::RefreshPart1 { step: 11 });
        assert_eq!(s.phase_of(42), Phase::RefreshPart2 { step: 0 });
        assert_eq!(s.phase_of(49), Phase::RefreshPart2 { step: 7 });
        assert_eq!(s.phase_of(50), Phase::Normal);
    }

    #[test]
    fn auth_unit_lags_during_part1() {
        let s = sched();
        // Part I of unit 1 authenticates with unit-0 keys.
        assert_eq!(s.auth_unit_of(30), 0);
        assert_eq!(s.auth_unit_of(41), 0);
        // Part II and normal operation use unit-1 keys.
        assert_eq!(s.auth_unit_of(42), 1);
        assert_eq!(s.auth_unit_of(59), 1);
    }

    #[test]
    fn refresh_end_marker() {
        let s = sched();
        assert!(!s.is_refresh_end(19));
        assert!(s.is_refresh_end(49));
        assert!(s.is_refresh_end(79));
        assert!(!s.is_refresh_end(50));
        // Unit 0 never ends a refresh.
        assert!(!s.is_refresh_end(19));
    }

    #[test]
    fn time_view_consistency() {
        let s = sched();
        let tv = TimeView::at(&s, 42);
        assert_eq!(tv.unit, 1);
        assert_eq!(tv.auth_unit, 1);
        assert_eq!(tv.round_in_unit, 12);
        assert_eq!(tv.phase, Phase::RefreshPart2 { step: 0 });
    }

    #[test]
    #[should_panic(expected = "refresh phase must fit")]
    fn oversized_refresh_rejected() {
        let _ = Schedule::new(10, 8, 8);
    }
}
