//! End-to-end test of a stateful top-layer protocol (the replicated
//! grow-only set) compiled by the proactive authenticator: replicas converge
//! over unauthenticated links, survive a break-in, and never contain
//! laundered entries.

use proauth_core::authenticator::GrowSetApp;
use proauth_core::uls::{app_input, uls_schedule, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_sim::adversary::{BreakPlan, NetView, UlAdversary};
use proauth_sim::clock::TimeView;
use proauth_sim::message::{Envelope, NodeId};
use proauth_sim::runner::{run_ul_with_inputs, SimConfig};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

const N: usize = 4;
const T: usize = 1;

type Replicas = Arc<Mutex<Vec<BTreeSet<(u32, Vec<u8>)>>>>;

/// Reads every node's replica at the last round (via the break-in API) and,
/// optionally, wipes node 3 early in the run.
struct Observer {
    replicas: Replicas,
    read_at: u64,
    wipe_node3: bool,
}

impl UlAdversary for Observer {
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        let mut plan = BreakPlan::none();
        if view.time.round == self.read_at {
            plan.break_into.extend(NodeId::all(view.n));
        }
        if self.wipe_node3 {
            match view.time.round {
                6 => plan.break_into.push(NodeId(3)),
                8 => plan.leave.push(NodeId(3)),
                _ => {}
            }
        }
        plan
    }

    fn corrupt(&mut self, node: NodeId, state: &mut dyn std::any::Any, time: &TimeView) {
        if let Some(n) = state.downcast_mut::<UlsNode<GrowSetApp>>() {
            if time.round >= self.read_at {
                self.replicas.lock().unwrap()[node.idx()] = n.app.set.clone();
            } else if self.wipe_node3 && node == NodeId(3) {
                n.corrupt_wipe();
                n.app.set.clear(); // full state loss, including the replica
            }
        }
    }

    fn deliver(&mut self, sent: &[Envelope], _view: &NetView<'_>) -> Vec<Envelope> {
        sent.to_vec()
    }
}

fn run(units: u64, seed: u64, wipe: bool) -> Vec<BTreeSet<(u32, Vec<u8>)>> {
    let schedule = uls_schedule(20);
    let mut cfg = SimConfig::new(N, T, schedule);
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = schedule.unit_rounds * units;
    cfg.seed = seed;
    let replicas: Replicas = Arc::new(Mutex::new(vec![BTreeSet::new(); N]));
    let mut adv = Observer {
        replicas: replicas.clone(),
        read_at: cfg.total_rounds - 1,
        wipe_node3: wipe,
    };
    let group = Group::new(GroupId::Toy64);
    let _result = run_ul_with_inputs(
        cfg,
        |id| UlsNode::new(UlsConfig::new(group.clone(), N, T), id, GrowSetApp::default()),
        &mut adv,
        |id, round| {
            // Every node adds one element early in unit 0.
            (round == 2).then(|| app_input(format!("item-from-{}", id.0).as_bytes()))
        },
    );
    let out = replicas.lock().unwrap().clone();
    out
}

#[test]
fn replicas_converge_over_unauthenticated_links() {
    let replicas = run(2, 61, false);
    // All four elements present everywhere.
    for (idx, replica) in replicas.iter().enumerate() {
        assert_eq!(replica.len(), N, "replica of N{} = {replica:?}", idx + 1);
        for origin in 1..=N as u32 {
            assert!(replica.contains(&(origin, format!("item-from-{origin}").into_bytes())));
        }
    }
}

#[test]
fn wiped_replica_catches_up_after_recovery() {
    // Node 3 loses everything (keys AND replica) in unit 0; after its
    // unit-1 recovery the gossip refills its replica — except its own entry,
    // which only it could originate and which died with its state.
    let replicas = run(3, 62, true);
    let node3 = &replicas[NodeId(3).idx()];
    for origin in [1u32, 2, 4] {
        assert!(
            node3.contains(&(origin, format!("item-from-{origin}").into_bytes())),
            "node 3 caught up on {origin}: {node3:?}"
        );
    }
    // The others never lost anything *they* had. Node 3's own entry may be
    // gone forever — it was wiped before node 3's first gossip tick, and
    // only node 3 could have originated it. That is the correct semantics:
    // the authenticator restores *communication*, not application state
    // that existed nowhere else.
    for idx in [0usize, 1, 3] {
        for origin in [1u32, 2, 4] {
            assert!(replicas[idx]
                .contains(&(origin, format!("item-from-{origin}").into_bytes())));
        }
    }
}
