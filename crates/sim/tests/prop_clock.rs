//! Property tests for the time-unit / refresh-phase schedule (Fig. 1).

use proauth_sim::clock::{Phase, Schedule, TimeView};
use proptest::prelude::*;

fn schedules() -> impl Strategy<Value = Schedule> {
    (1u64..10, 1u64..10, 10u64..40).prop_filter_map("refresh fits", |(p1, p2, extra)| {
        let unit = p1 + p2 + extra;
        (p1 + p2 <= unit).then(|| Schedule::new(unit, p1, p2))
    })
}

proptest! {
    #[test]
    fn unit_and_round_in_unit_invert(s in schedules(), round in 0u64..10_000) {
        let unit = s.unit_of(round);
        let off = s.round_in_unit(round);
        prop_assert_eq!(unit * s.unit_rounds + off, round);
        prop_assert!(off < s.unit_rounds);
    }

    #[test]
    fn phase_partition_is_total_and_consistent(s in schedules(), round in 0u64..10_000) {
        let phase = s.phase_of(round);
        let off = s.round_in_unit(round);
        let unit = s.unit_of(round);
        match phase {
            Phase::RefreshPart1 { step } => {
                prop_assert!(unit > 0);
                prop_assert_eq!(step, off);
                prop_assert!(step < s.part1_rounds);
                prop_assert!(s.in_refresh(round));
            }
            Phase::RefreshPart2 { step } => {
                prop_assert!(unit > 0);
                prop_assert_eq!(step, off - s.part1_rounds);
                prop_assert!(step < s.part2_rounds);
                prop_assert!(s.in_refresh(round));
            }
            Phase::Normal => {
                prop_assert!(unit == 0 || off >= s.refresh_rounds());
                prop_assert!(!s.in_refresh(round));
            }
        }
    }

    #[test]
    fn auth_unit_lags_exactly_in_part1(s in schedules(), round in 0u64..10_000) {
        let unit = s.unit_of(round);
        let auth = s.auth_unit_of(round);
        match s.phase_of(round) {
            Phase::RefreshPart1 { .. } => prop_assert_eq!(auth, unit - 1),
            _ => prop_assert_eq!(auth, unit),
        }
    }

    #[test]
    fn auth_unit_is_monotone(s in schedules(), start in 0u64..5_000) {
        // The key-epoch counter never goes backwards.
        let mut prev = s.auth_unit_of(start);
        for round in start + 1..start + 200 {
            let cur = s.auth_unit_of(round);
            prop_assert!(cur >= prev);
            prop_assert!(cur - prev <= 1, "advances by at most one per round");
            prev = cur;
        }
    }

    #[test]
    fn exactly_one_refresh_end_per_refreshing_unit(s in schedules(), unit in 1u64..50) {
        let start = unit * s.unit_rounds;
        let ends = (start..start + s.unit_rounds)
            .filter(|&r| s.is_refresh_end(r))
            .count();
        prop_assert_eq!(ends, 1);
        // And unit 0 has none.
        let ends0 = (0..s.unit_rounds).filter(|&r| s.is_refresh_end(r)).count();
        prop_assert_eq!(ends0, 0);
    }

    #[test]
    fn time_view_agrees_with_schedule(s in schedules(), round in 0u64..10_000) {
        let tv = TimeView::at(&s, round);
        prop_assert_eq!(tv.round, round);
        prop_assert_eq!(tv.unit, s.unit_of(round));
        prop_assert_eq!(tv.auth_unit, s.auth_unit_of(round));
        prop_assert_eq!(tv.phase, s.phase_of(round));
        prop_assert_eq!(tv.round_in_unit, s.round_in_unit(round));
    }
}
