//! The standard distribution (mirror of `rand::distributions`).

use crate::RngCore;

/// A sampling distribution over values of type `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: full-domain integers, `[0, 1)` floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($ty:ty, $method:ident) => {
        impl Distribution<$ty> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.$method() as $ty
            }
        }
    };
}

standard_int!(u8, next_u32);
standard_int!(u16, next_u32);
standard_int!(u32, next_u32);
standard_int!(u64, next_u64);
standard_int!(usize, next_u64);
standard_int!(i8, next_u32);
standard_int!(i16, next_u32);
standard_int!(i32, next_u32);
standard_int!(i64, next_u64);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        // Upstream order: high word first.
        let hi = rng.next_u64() as u128;
        let lo = rng.next_u64() as u128;
        (hi << 64) | lo
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // Upstream compares against the sign bit of a u32 draw.
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Upstream "multiply-based" conversion: 53 significant bits.
        let precision = 52 + 1;
        let scale = 1.0 / ((1u64 << precision) as f64);
        let value = rng.next_u64() >> (64 - precision);
        scale * value as f64
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        let precision = 23 + 1;
        let scale = 1.0 / ((1u32 << precision) as f32);
        let value = rng.next_u32() >> (32 - precision);
        scale * value as f32
    }
}
