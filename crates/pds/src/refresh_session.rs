//! One execution of the proactive refresh protocol (`ARfr`) as a pure state
//! machine over logical steps.
//!
//! | step | action |
//! |------|--------|
//! | 0 | share-holders deal a zero-sharing (`RfrDeal`, per-recipient); share-less nodes broadcast `RecoveryNeed` |
//! | 1 | everyone echoes the commitments received from each dealer (`RfrEcho`) |
//! | 2 | adopt per-dealer majority commitments (≥ `n−t` matching echoes); broadcast `RfrComplaint` for missing/invalid shares |
//! | 3 | accused dealers publicly reveal the complainer's share (`RfrReveal`) |
//! | 4 | finalize the qualified dealer set (consistent + every complaint answered), apply updates, **erase the old share**; helpers deal recovery blindings for announced targets (`RecoveryBlind`) |
//! | 5 | helpers verify blindings and send blinded evaluations to each target (`RecoveryValue`, with their share-key vector) |
//! | 6 | targets verify values against public data and interpolate their share |
//!
//! Consistency of the qualified set among honest nodes follows from the echo
//! threshold: with at most `t < n/2` corruptions, two honest nodes can only
//! adopt the same majority commitments, and complaints/reveals are broadcast.
//! Recovery blindings are *not* echoed; a two-faced blinding dealer can make
//! one unit's recovery fail, in which case the target simply stays
//! non-operational and retries at the next refresh — the model's intended
//! behaviour while the adversary actively spends budget on that node (see
//! DESIGN.md).

use crate::msg::{commitment_hash, AlsMsg};
use proauth_crypto::dkg::KeyShare;
use proauth_crypto::feldman::{self, Commitments, ShareCheck};
use proauth_crypto::group::Group;
use proauth_crypto::refresh as rfr;
use proauth_crypto::shamir;
use proauth_primitives::bigint::BigUint;
use std::collections::{BTreeMap, BTreeSet};

/// Per-dealer echo tally: commitment-hash → (representative commitments,
/// set of echoers).
type EchoTally = BTreeMap<[u8; 32], (Commitments, BTreeSet<u32>)>;

/// Message destination as produced by the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dest {
    /// Broadcast to every other node.
    All,
    /// Send to one node.
    One(u32),
}

/// Result of a refresh.
#[derive(Debug, Clone)]
pub struct RefreshOutcome {
    /// The refreshed (or freshly recovered) key share, if the node ended the
    /// phase with usable key material.
    pub new_key: Option<KeyShare>,
    /// Whether this node's refresh failed (triggers the alert output).
    pub failed: bool,
}

/// State of one node's participation in one refresh phase.
#[derive(Debug, Clone)]
pub struct RefreshSession {
    group: Group,
    me: u32,
    n: usize,
    t: usize,
    unit: u64,
    /// The share being refreshed (`None` → this node is recovering).
    old_key: Option<KeyShare>,
    /// My zero-sharing dealing, if I dealt.
    my_dealing: Option<proauth_crypto::feldman::Dealing>,
    /// Received dealings: dealer → (commitments as I received them, my share).
    received: BTreeMap<u32, (Commitments, BigUint)>,
    /// Echo tally: dealer → commitment-hash → set of echoers, plus one
    /// representative commitments value per hash.
    echoes: BTreeMap<u32, EchoTally>,
    /// Complaints seen: dealer → complainers.
    complaints: BTreeMap<u32, BTreeSet<u32>>,
    /// Reveals seen: (dealer, complainer) → share.
    reveals: BTreeMap<(u32, u32), BigUint>,
    /// Nodes that announced they need recovery.
    recovering: BTreeSet<u32>,
    /// Blinding dealings received: target → dealer → (commitments, my share).
    blindings: BTreeMap<u32, BTreeMap<u32, (Commitments, BigUint)>>,
    /// Recovery values received (I am the target): helper → (used, value, keys).
    values: BTreeMap<u32, (Vec<u32>, BigUint, Vec<BigUint>)>,
    /// Qualified dealers (fixed at step 4).
    qualified: Vec<u32>,
    /// The post-update key (fixed at step 4 for share-holders).
    new_key: Option<KeyShare>,
    failed: bool,
}

impl RefreshSession {
    /// Starts a refresh session for `unit`. `old_key = None` marks the node
    /// as recovering.
    pub fn new(
        group: &Group,
        me: u32,
        n: usize,
        t: usize,
        unit: u64,
        old_key: Option<KeyShare>,
    ) -> Self {
        RefreshSession {
            group: group.clone(),
            me,
            n,
            t,
            unit,
            old_key,
            my_dealing: None,
            received: BTreeMap::new(),
            echoes: BTreeMap::new(),
            complaints: BTreeMap::new(),
            reveals: BTreeMap::new(),
            recovering: BTreeSet::new(),
            blindings: BTreeMap::new(),
            values: BTreeMap::new(),
            qualified: Vec::new(),
            new_key: None,
            failed: false,
        }
    }

    /// The refresh target unit.
    pub fn unit(&self) -> u64 {
        self.unit
    }

    /// Feeds an incoming refresh message.
    pub fn handle(&mut self, from: u32, msg: &AlsMsg) {
        match msg {
            AlsMsg::RfrDeal {
                unit,
                commitments,
                share,
            } if *unit == self.unit => {
                self.received
                    .entry(from)
                    .or_insert_with(|| (commitments.clone(), share.clone()));
            }
            AlsMsg::RfrEcho {
                unit,
                dealer,
                commitments,
            } if *unit == self.unit => {
                let h = commitment_hash(commitments);
                let entry = self
                    .echoes
                    .entry(*dealer)
                    .or_default()
                    .entry(h)
                    .or_insert_with(|| (commitments.clone(), BTreeSet::new()));
                entry.1.insert(from);
            }
            AlsMsg::RfrComplaint { unit, dealer } if *unit == self.unit => {
                self.complaints.entry(*dealer).or_default().insert(from);
            }
            AlsMsg::RfrReveal {
                unit,
                complainer,
                share,
            } if *unit == self.unit => {
                self.reveals
                    .entry((from, *complainer))
                    .or_insert_with(|| share.clone());
            }
            AlsMsg::RecoveryNeed { unit } if *unit == self.unit => {
                self.recovering.insert(from);
            }
            AlsMsg::RecoveryBlind {
                unit,
                target,
                commitments,
                share,
            } if *unit == self.unit => {
                self.blindings
                    .entry(*target)
                    .or_default()
                    .entry(from)
                    .or_insert_with(|| (commitments.clone(), share.clone()));
            }
            AlsMsg::RecoveryValue {
                unit,
                target,
                used,
                value,
                share_keys,
            } if *unit == self.unit && *target == self.me => {
                self.values
                    .entry(from)
                    .or_insert_with(|| (used.clone(), value.clone(), share_keys.clone()));
            }
            _ => {}
        }
    }

    /// Executes refresh step `step`; returns messages to send.
    pub fn step<R: rand::RngCore>(&mut self, step: u64, rng: &mut R) -> Vec<(Dest, AlsMsg)> {
        match step {
            0 => self.step_deal(rng),
            1 => self.step_echo(),
            2 => self.step_complain(),
            3 => self.step_reveal(),
            4 => self.step_finalize_and_blind(rng),
            5 => self.step_values(),
            6 => {
                self.step_recover();
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    /// The outcome; valid after step 6.
    pub fn outcome(&self) -> RefreshOutcome {
        RefreshOutcome {
            new_key: self.new_key.clone(),
            failed: self.failed,
        }
    }

    fn step_deal<R: rand::RngCore>(&mut self, rng: &mut R) -> Vec<(Dest, AlsMsg)> {
        let mut out = Vec::new();
        if self.old_key.is_some() {
            let dealing = rfr::deal_update(&self.group, self.t, self.n, rng);
            // Record my own dealing as received-by-me.
            self.received.insert(
                self.me,
                (
                    dealing.commitments.clone(),
                    dealing.share_for(self.me).clone(),
                ),
            );
            for j in 1..=self.n as u32 {
                if j == self.me {
                    continue;
                }
                out.push((
                    Dest::One(j),
                    AlsMsg::RfrDeal {
                        unit: self.unit,
                        commitments: dealing.commitments.clone(),
                        share: dealing.share_for(j).clone(),
                    },
                ));
            }
            self.my_dealing = Some(dealing);
        } else {
            self.recovering.insert(self.me);
            out.push((Dest::All, AlsMsg::RecoveryNeed { unit: self.unit }));
        }
        out
    }

    fn step_echo(&mut self) -> Vec<(Dest, AlsMsg)> {
        let mut out = Vec::new();
        for (dealer, (commitments, _)) in &self.received {
            // Count my own echo.
            let h = commitment_hash(commitments);
            self.echoes
                .entry(*dealer)
                .or_default()
                .entry(h)
                .or_insert_with(|| (commitments.clone(), BTreeSet::new()))
                .1
                .insert(self.me);
            out.push((
                Dest::All,
                AlsMsg::RfrEcho {
                    unit: self.unit,
                    dealer: *dealer,
                    commitments: commitments.clone(),
                },
            ));
        }
        out
    }

    /// Majority commitments for `dealer`: the unique vector echoed by at
    /// least `n−t` nodes, if any.
    fn majority_commitments(&self, dealer: u32) -> Option<&Commitments> {
        let need = self.n - self.t;
        self.echoes.get(&dealer).and_then(|by_hash| {
            by_hash
                .values()
                .find(|(_, echoers)| echoers.len() >= need)
                .map(|(c, _)| c)
        })
    }

    /// Whether `commitments` is a valid zero-dealing shape.
    fn valid_zero_commitments(&self, commitments: &Commitments) -> bool {
        commitments.degree() == self.t && commitments.secret_commitment().is_one()
    }

    fn step_complain(&mut self) -> Vec<(Dest, AlsMsg)> {
        let mut out = Vec::new();
        if self.old_key.is_none() {
            return out; // recovering nodes have no share to update
        }
        let dealers: Vec<u32> = self.echoes.keys().copied().collect();
        // First pass: dealers whose received share matches the majority
        // commitments go into one batched share check; the rest (missing or
        // mismatched share) are complained about outright.
        let mut bad: Vec<u32> = Vec::new();
        let mut candidates: Vec<u32> = Vec::new();
        let mut checks: Vec<ShareCheck<'_>> = Vec::new();
        for &dealer in &dealers {
            let Some(majority) = self.majority_commitments(dealer) else {
                continue; // inconsistent dealer: dropped by everyone alike
            };
            if !self.valid_zero_commitments(majority) {
                continue; // invalid dealing shape: dropped by everyone alike
            }
            match self.received.get(&dealer) {
                Some((c, share)) if commitment_hash(c) == commitment_hash(majority) => {
                    candidates.push(dealer);
                    checks.push(ShareCheck {
                        commitments: c,
                        index: self.me,
                        share,
                    });
                }
                _ => bad.push(dealer),
            }
        }
        // The batch passing clears every candidate at once; otherwise fall
        // back per dealer to find exactly whom to complain about.
        if !feldman::batch_verify_shares(&self.group, &checks) {
            for (&dealer, c) in candidates.iter().zip(&checks) {
                if !c.commitments.verify_share_in(&self.group, self.me, c.share) {
                    bad.push(dealer);
                }
            }
        }
        bad.sort_unstable();
        for dealer in bad {
            self.complaints
                .entry(dealer)
                .or_default()
                .insert(self.me);
            out.push((
                Dest::All,
                AlsMsg::RfrComplaint {
                    unit: self.unit,
                    dealer,
                },
            ));
        }
        out
    }

    fn step_reveal(&mut self) -> Vec<(Dest, AlsMsg)> {
        let mut out = Vec::new();
        let Some(dealing) = &self.my_dealing else {
            return out;
        };
        let mut own: Vec<(u32, BigUint)> = Vec::new();
        if let Some(complainers) = self.complaints.get(&self.me) {
            for &c in complainers {
                if c == self.me || c == 0 || c > self.n as u32 {
                    continue;
                }
                let share = dealing.share_for(c).clone();
                own.push((c, share.clone()));
                out.push((
                    Dest::All,
                    AlsMsg::RfrReveal {
                        unit: self.unit,
                        complainer: c,
                        share,
                    },
                ));
            }
        }
        // Record my own reveals so my qualified-set decision matches what
        // every other node computes from the broadcast.
        for (c, share) in own {
            self.reveals.insert((self.me, c), share);
        }
        out
    }

    fn step_finalize_and_blind<R: rand::RngCore>(&mut self, rng: &mut R) -> Vec<(Dest, AlsMsg)> {
        // Fix the qualified set from broadcast data (identical at every
        // honest node): dealer d qualifies iff a majority commitment vector
        // exists, is a valid zero-dealing, and every complaint against d has
        // a reveal that verifies against the majority commitments.
        let dealers: Vec<u32> = self.echoes.keys().copied().collect();
        let mut qualified: Vec<u32> = Vec::new();
        let mut pending: Vec<(u32, Commitments)> = Vec::new();
        for dealer in dealers {
            let Some(majority) = self.majority_commitments(dealer).cloned() else {
                continue;
            };
            if !self.valid_zero_commitments(&majority) {
                continue;
            }
            let complaints_answered = self
                .complaints
                .get(&dealer)
                .map(|cs| {
                    cs.iter().all(|&complainer| {
                        self.reveals
                            .get(&(dealer, complainer))
                            .is_some_and(|share| {
                                majority.verify_share_in(&self.group, complainer, share)
                            })
                    })
                })
                .unwrap_or(true);
            if !complaints_answered {
                continue;
            }
            qualified.push(dealer);
            if self.old_key.is_some() {
                pending.push((dealer, majority));
            }
        }

        // Pick my update share per qualified dealer: the received one if it
        // is consistent with the majority commitments, else the revealed one.
        // The received-share consistency checks collapse into one batched
        // verification; only a rejecting batch re-checks per dealer.
        let mut my_updates: Vec<rfr::ReceivedUpdate> = Vec::new();
        {
            let mut checks: Vec<ShareCheck<'_>> = Vec::new();
            let mut check_slots: Vec<usize> = Vec::new();
            for (k, (dealer, majority)) in pending.iter().enumerate() {
                if let Some((c, s)) = self.received.get(dealer) {
                    if commitment_hash(c) == commitment_hash(majority) {
                        checks.push(ShareCheck {
                            commitments: c,
                            index: self.me,
                            share: s,
                        });
                        check_slots.push(k);
                    }
                }
            }
            let batch_ok = feldman::batch_verify_shares(&self.group, &checks);
            let mut received_ok = vec![false; pending.len()];
            for (c, &k) in checks.iter().zip(&check_slots) {
                received_ok[k] = batch_ok
                    || c.commitments.verify_share_in(&self.group, self.me, c.share);
            }
            for (k, (dealer, majority)) in pending.iter().enumerate() {
                let share = if received_ok[k] {
                    self.received.get(dealer).map(|(_, s)| s.clone())
                } else {
                    None
                }
                .or_else(|| self.reveals.get(&(*dealer, self.me)).cloned());
                if let Some(share) = share {
                    my_updates.push(rfr::ReceivedUpdate {
                        dealer: *dealer,
                        commitments: majority.clone(),
                        share,
                    });
                }
            }
        }
        self.qualified = qualified;

        // Apply updates and erase the old share.
        if let Some(old) = self.old_key.take() {
            if my_updates.len() == self.qualified.len() && !my_updates.is_empty() {
                match rfr::apply_updates(&self.group, self.t, &old, &my_updates) {
                    Some(new_key) => self.new_key = Some(new_key),
                    None => {
                        self.failed = true;
                    }
                }
            } else {
                // Missing a share for a qualified dealer: cannot stay
                // consistent with the rest of the network.
                self.failed = true;
            }
            // `old` drops here — the erasure the paper requires (§6).
        }

        // Deal recovery blindings for announced targets.
        let mut out = Vec::new();
        if self.new_key.is_some() {
            let targets: Vec<u32> = self
                .recovering
                .iter()
                .copied()
                .filter(|&t| t != self.me && t >= 1 && t <= self.n as u32)
                .collect();
            for target in targets {
                let blinding = rfr::deal_blinding(&self.group, self.t, self.n, target, rng);
                // Record my own blinding as received-by-me.
                self.blindings.entry(target).or_default().insert(
                    self.me,
                    (
                        blinding.commitments.clone(),
                        blinding.shares[(self.me - 1) as usize].clone(),
                    ),
                );
                for j in 1..=self.n as u32 {
                    if j == self.me {
                        continue;
                    }
                    out.push((
                        Dest::One(j),
                        AlsMsg::RecoveryBlind {
                            unit: self.unit,
                            target,
                            commitments: blinding.commitments.clone(),
                            share: blinding.shares[(j - 1) as usize].clone(),
                        },
                    ));
                }
            }
        }
        out
    }

    fn step_values(&mut self) -> Vec<(Dest, AlsMsg)> {
        let mut out = Vec::new();
        let Some(key) = self.new_key.clone() else {
            return out;
        };
        let targets: Vec<u32> = self.recovering.iter().copied().filter(|&t| t != self.me).collect();
        for target in targets {
            let Some(by_dealer) = self.blindings.get(&target) else {
                continue;
            };
            // Use every blinding whose share verifies for me and whose shape
            // is right; `used` tells the target which commitments to combine.
            // Share checks for all shape-valid blindings run as one batch,
            // with per-dealer fallback when the batch rejects.
            let shaped: Vec<(u32, &Commitments, &BigUint)> = by_dealer
                .iter()
                .filter(|(_, (commitments, _))| {
                    commitments.degree() == self.t
                        && commitments.eval_in_exponent(&self.group, target).is_one()
                })
                .map(|(&dealer, (commitments, share))| (dealer, commitments, share))
                .collect();
            let checks: Vec<ShareCheck<'_>> = shaped
                .iter()
                .map(|&(_, commitments, share)| ShareCheck {
                    commitments,
                    index: self.me,
                    share,
                })
                .collect();
            let batch_ok = feldman::batch_verify_shares(&self.group, &checks);
            let mut used: Vec<u32> = Vec::new();
            let mut value = key.share.clone();
            for (dealer, commitments, share) in shaped {
                if batch_ok || commitments.verify_share_in(&self.group, self.me, share) {
                    used.push(dealer);
                    value = self.group.scalar_add(&value, share);
                }
            }
            if used.is_empty() {
                continue; // no usable blinding: sending a bare share would leak it
            }
            out.push((
                Dest::One(target),
                AlsMsg::RecoveryValue {
                    unit: self.unit,
                    target,
                    used,
                    value,
                    share_keys: key.share_keys.clone(),
                },
            ));
        }
        out
    }

    fn step_recover(&mut self) {
        if self.new_key.is_some() || !self.recovering.contains(&self.me) {
            return;
        }
        // Group values by (used-set, share-key vector); a group of ≥ t+1
        // verified values determines the share.
        type ValueGroups = BTreeMap<(Vec<u32>, Vec<Vec<u8>>), Vec<(u32, BigUint)>>;
        let mut groups: ValueGroups = BTreeMap::new();
        for (&helper, (used, value, share_keys)) in &self.values {
            if share_keys.len() != self.n {
                continue;
            }
            let key_bytes: Vec<Vec<u8>> = share_keys.iter().map(|k| k.to_bytes_be()).collect();
            groups
                .entry((used.clone(), key_bytes))
                .or_default()
                .push((helper, value.clone()));
        }
        for ((used, key_bytes), members) in groups {
            if members.len() < self.t + 1 {
                continue;
            }
            let share_keys: Vec<BigUint> =
                key_bytes.iter().map(|b| BigUint::from_bytes_be(b)).collect();
            // Collect this target's view of the blinding commitments.
            let my_blinds = self.blindings.get(&self.me);
            let commitments: Option<Vec<Commitments>> = used
                .iter()
                .map(|d| {
                    my_blinds
                        .and_then(|m| m.get(d))
                        .map(|(c, _)| c.clone())
                })
                .collect();
            let Some(commitments) = commitments else {
                continue;
            };
            // Verify each member's value against public data.
            let verified: Vec<rfr::RecoveryValue> = members
                .iter()
                .filter(|(helper, value)| {
                    let expected = rfr::expected_recovery_commitment(
                        &self.group,
                        &share_keys,
                        &commitments,
                        *helper,
                    );
                    self.group.exp_g(value) == expected
                })
                .map(|(helper, value)| rfr::RecoveryValue {
                    helper: *helper,
                    value: value.clone(),
                })
                .collect();
            if verified.len() < self.t + 1 {
                continue;
            }
            let Some(share) = rfr::recover_share(&self.group, self.t, self.me, &verified) else {
                continue;
            };
            // Sanity: the recovered share must match the reported share key,
            // and the share keys must interpolate (in the exponent) to a
            // consistent public key.
            if self.group.exp_g(&share) != share_keys[(self.me - 1) as usize] {
                continue;
            }
            let indices: Vec<u32> = (1..=(self.t + 1) as u32).collect();
            let mut pk = self.group.identity();
            for &i in &indices {
                let lambda = shamir::lagrange_coeff_at_zero(&self.group, &indices, i);
                pk = self.group.mul(
                    &pk,
                    &self.group.exp(&share_keys[(i - 1) as usize], &lambda),
                );
            }
            self.new_key = Some(KeyShare {
                index: self.me,
                share,
                public_key: pk,
                share_keys,
                qualified: self.qualified.clone(),
            });
            return;
        }
        self.failed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proauth_crypto::dkg::{self, ReceivedDealing};
    use proauth_crypto::group::GroupId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dkg_keys(n: usize, t: usize, seed: u64) -> (Group, Vec<KeyShare>) {
        let group = Group::new(GroupId::Toy64);
        let mut rng = StdRng::seed_from_u64(seed);
        let dealings: Vec<(u32, proauth_crypto::feldman::Dealing)> = (1..=n as u32)
            .map(|i| (i, dkg::deal(&group, t, n, &mut rng)))
            .collect();
        let keys = (1..=n as u32)
            .map(|me| {
                let inputs: Vec<ReceivedDealing> = dealings
                    .iter()
                    .map(|(dealer, d)| ReceivedDealing {
                        dealer: *dealer,
                        commitments: d.commitments.clone(),
                        share: d.share_for(me).clone(),
                    })
                    .collect();
                dkg::aggregate(&group, t, n, me, &inputs).unwrap()
            })
            .collect();
        (group, keys)
    }

    /// Runs a full refresh among `n` nodes with faithful delivery.
    /// `key_of(i)` gives node i's old key (None = recovering).
    /// `tamper` may drop or alter messages: (from, to, msg) → Option<msg>.
    fn drive(
        group: &Group,
        n: usize,
        t: usize,
        keys: Vec<Option<KeyShare>>,
        mut tamper: impl FnMut(u32, u32, &AlsMsg) -> Option<AlsMsg>,
    ) -> Vec<RefreshOutcome> {
        let mut rng = StdRng::seed_from_u64(9999);
        let mut sessions: Vec<RefreshSession> = (1..=n as u32)
            .map(|me| RefreshSession::new(group, me, n, t, 1, keys[(me - 1) as usize].clone()))
            .collect();
        let mut in_flight: Vec<(u32, u32, AlsMsg)> = Vec::new(); // (from, to, msg)
        for step in 0..=6u64 {
            // Deliver messages produced at the previous step.
            for (from, to, msg) in std::mem::take(&mut in_flight) {
                if let Some(m) = tamper(from, to, &msg) {
                    sessions[(to - 1) as usize].handle(from, &m);
                }
            }
            for me in 1..=n as u32 {
                let outs = sessions[(me - 1) as usize].step(step, &mut rng);
                for (dest, msg) in outs {
                    match dest {
                        Dest::All => {
                            for to in 1..=n as u32 {
                                if to != me {
                                    in_flight.push((me, to, msg.clone()));
                                }
                            }
                        }
                        Dest::One(to) => in_flight.push((me, to, msg)),
                    }
                }
            }
        }
        // Deliver the last step's messages (values) before recovery check:
        // recovery happens at step 6 which consumed messages sent at step 5.
        sessions.iter().map(RefreshSession::outcome).collect()
    }

    #[test]
    fn honest_refresh_preserves_key_and_changes_shares() {
        let (group, keys) = dkg_keys(5, 2, 201);
        let outcomes = drive(
            &group,
            5,
            2,
            keys.iter().cloned().map(Some).collect(),
            |_, _, m| Some(m.clone()),
        );
        for (old, out) in keys.iter().zip(&outcomes) {
            assert!(!out.failed);
            let new = out.new_key.as_ref().expect("refreshed key");
            assert_eq!(new.public_key, old.public_key);
            assert_ne!(new.share, old.share);
            assert!(new.self_consistent(&group));
        }
        // New shares reconstruct the original secret.
        let pts: Vec<(u32, BigUint)> = outcomes[0..3]
            .iter()
            .map(|o| {
                let k = o.new_key.as_ref().unwrap();
                (k.index, k.share.clone())
            })
            .collect();
        let secret = shamir::interpolate_at_zero(&group, &pts);
        assert_eq!(group.exp_g(&secret), keys[0].public_key);
    }

    #[test]
    fn recovery_of_one_node() {
        let (group, keys) = dkg_keys(5, 2, 202);
        let mut inputs: Vec<Option<KeyShare>> = keys.iter().cloned().map(Some).collect();
        inputs[3] = None; // node 4 lost its share
        let outcomes = drive(&group, 5, 2, inputs, |_, _, m| Some(m.clone()));
        let rec = outcomes[3].new_key.as_ref().expect("recovered");
        assert!(!outcomes[3].failed);
        assert!(rec.self_consistent(&group));
        assert_eq!(rec.public_key, keys[0].public_key);
        // Recovered share lies on the same polynomial as the others' new shares.
        let mut pts: Vec<(u32, BigUint)> = vec![(4, rec.share.clone())];
        for o in &outcomes[0..2] {
            let k = o.new_key.as_ref().unwrap();
            pts.push((k.index, k.share.clone()));
        }
        let secret = shamir::interpolate_at_zero(&group, &pts);
        assert_eq!(group.exp_g(&secret), keys[0].public_key);
        // And the recovered share-key vector matches the others'.
        assert_eq!(rec.share_keys, outcomes[0].new_key.as_ref().unwrap().share_keys);
    }

    #[test]
    fn dropped_dealings_trigger_complaint_and_reveal() {
        let (group, keys) = dkg_keys(5, 2, 203);
        // Drop dealer 2's share to node 5 (but not the echoes), forcing the
        // complaint/reveal path.
        let outcomes = drive(
            &group,
            5,
            2,
            keys.iter().cloned().map(Some).collect(),
            |from, to, m| {
                if from == 2 && to == 5 && matches!(m, AlsMsg::RfrDeal { .. }) {
                    None
                } else {
                    Some(m.clone())
                }
            },
        );
        for out in &outcomes {
            assert!(!out.failed, "reveal path keeps everyone consistent");
            assert!(out.new_key.is_some());
        }
        // All nodes agree on the share-key vector.
        let sk0 = &outcomes[0].new_key.as_ref().unwrap().share_keys;
        for o in &outcomes[1..] {
            assert_eq!(&o.new_key.as_ref().unwrap().share_keys, sk0);
        }
    }

    #[test]
    fn silent_dealer_is_excluded_consistently() {
        let (group, keys) = dkg_keys(5, 2, 204);
        // Dealer 3's messages all vanish: everyone must exclude it and agree.
        let outcomes = drive(
            &group,
            5,
            2,
            keys.iter().cloned().map(Some).collect(),
            |from, _, m| {
                if from == 3 {
                    None
                } else {
                    Some(m.clone())
                }
            },
        );
        // Node 3 itself fails (it saw its own dealing but nobody else's
        // echoes reached it... actually its outgoing vanished so others
        // never echo it; it still receives others' dealings, so it refreshes).
        for (i, out) in outcomes.iter().enumerate() {
            if i == 2 {
                continue;
            }
            assert!(!out.failed, "node {} ok", i + 1);
            let k = out.new_key.as_ref().unwrap();
            assert!(!k.qualified.contains(&3), "dealer 3 excluded");
        }
    }

    #[test]
    fn unanswered_complaint_disqualifies_dealer() {
        let (group, keys) = dkg_keys(5, 2, 205);
        // Dealer 2's share to node 5 is dropped AND its reveals are dropped:
        // dealer 2 must be disqualified by everyone.
        let outcomes = drive(
            &group,
            5,
            2,
            keys.iter().cloned().map(Some).collect(),
            |from, to, m| match m {
                AlsMsg::RfrDeal { .. } if from == 2 && to == 5 => None,
                AlsMsg::RfrReveal { .. } if from == 2 => None,
                _ => Some(m.clone()),
            },
        );
        // Every node except dealer 2 itself disqualifies it. Dealer 2's own
        // view diverges (it recorded its own reveal, which the network never
        // saw) — the expected fate of a node whose broadcasts are suppressed,
        // which cannot happen to an operational node in the intended model.
        for (i, out) in outcomes.iter().enumerate() {
            if i == 1 {
                continue;
            }
            assert!(!out.failed);
            let k = out.new_key.as_ref().unwrap();
            assert!(!k.qualified.contains(&2), "dealer 2 disqualified at {}", i + 1);
            assert!(k.qualified.contains(&1));
        }
    }

    #[test]
    fn recovering_node_with_no_helpers_fails_but_others_refresh() {
        let (group, keys) = dkg_keys(5, 2, 206);
        let mut inputs: Vec<Option<KeyShare>> = keys.iter().cloned().map(Some).collect();
        inputs[0] = None;
        // All RecoveryValue messages are dropped.
        let outcomes = drive(&group, 5, 2, inputs, |_, _, m| {
            if matches!(m, AlsMsg::RecoveryValue { .. }) {
                None
            } else {
                Some(m.clone())
            }
        });
        assert!(outcomes[0].failed);
        assert!(outcomes[0].new_key.is_none());
        for o in &outcomes[1..] {
            assert!(!o.failed);
        }
    }

    #[test]
    fn two_simultaneous_recoveries() {
        let (group, keys) = dkg_keys(7, 2, 207);
        let mut inputs: Vec<Option<KeyShare>> = keys.iter().cloned().map(Some).collect();
        inputs[1] = None;
        inputs[5] = None;
        let outcomes = drive(&group, 7, 2, inputs, |_, _, m| Some(m.clone()));
        for idx in [1usize, 5] {
            let k = outcomes[idx].new_key.as_ref().expect("recovered");
            assert!(k.self_consistent(&group));
            assert_eq!(k.public_key, keys[0].public_key);
        }
    }
}
