//! The ambient recording scope: how deep layers (DISPERSE, ULS, PA, PDS
//! sessions, adversaries) record metrics without any telemetry handle being
//! threaded through their APIs.
//!
//! The engine installs a node's [`Shard`] into thread-local storage before
//! running the node's round (on whichever thread the worker pool picked) and
//! takes it back afterwards. Instrumented call sites use the free functions
//! below; with no telemetry enabled anywhere in the process they cost one
//! relaxed atomic load and a branch — the "static no-op recorder".
//!
//! Scopes nest: installing saves the previous scope and the caller restores
//! it, which matters because the engine thread both holds the engine-side
//! shard (adversary instrumentation) and participates in pool batches
//! (publisher runs node jobs too).

use crate::registry::Shard;
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Number of live enabled `Telemetry` handles in the process. Zero means
/// every instrumented call site is a branch-on-bool no-op.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// RAII token held by each enabled telemetry handle; keeps the global hot
/// flag raised while any enabled run exists.
#[derive(Debug)]
pub(crate) struct ActiveToken;

impl ActiveToken {
    pub(crate) fn new() -> Self {
        ACTIVE.fetch_add(1, Ordering::Relaxed);
        ActiveToken
    }
}

impl Drop for ActiveToken {
    fn drop(&mut self) {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

thread_local! {
    static SCOPE: RefCell<Option<Shard>> = const { RefCell::new(None) };
}

/// Whether any enabled telemetry handle exists in the process. This is the
/// only cost a disabled call site pays.
#[inline]
pub fn hot() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Installs `shard` as this thread's recording scope, returning the
/// previously installed scope (restore it when done — scopes nest).
pub fn install(shard: Option<Shard>) -> Option<Shard> {
    SCOPE.with(|s| std::mem::replace(&mut *s.borrow_mut(), shard))
}

/// Whether this thread currently has a recording scope installed.
pub fn scope_active() -> bool {
    hot() && SCOPE.with(|s| s.borrow().is_some())
}

#[inline]
fn with_scope(f: impl FnOnce(&mut Shard)) {
    SCOPE.with(|s| {
        if let Ok(mut guard) = s.try_borrow_mut() {
            if let Some(shard) = guard.as_mut() {
                f(shard);
            }
        }
    });
}

/// Adds `v` to the named counter of the ambient scope (no-op otherwise).
#[inline]
pub fn count(name: &'static str, v: u64) {
    if !hot() {
        return;
    }
    with_scope(|sh| sh.count(name, v));
}

/// Raises the named max-gauge of the ambient scope to at least `v`.
#[inline]
pub fn gauge_max(name: &'static str, v: u64) {
    if !hot() {
        return;
    }
    with_scope(|sh| sh.gauge_max(name, v));
}

/// Records a wall-clock latency observation into the ambient scope.
#[inline]
pub fn observe_ns(name: &'static str, ns: u64) {
    if !hot() {
        return;
    }
    with_scope(|sh| sh.observe_ns(name, ns));
}

/// Records a unitless value observation (e.g. rounds) into the ambient scope.
#[inline]
pub fn observe_value(name: &'static str, v: u64) {
    if !hot() {
        return;
    }
    with_scope(|sh| sh.observe_value(name, v));
}

/// Runs `f`, recording its wall-clock duration under `name` when a scope is
/// active. When telemetry is disabled this is exactly a call to `f` behind
/// one branch — no clock is read.
#[inline]
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    if !scope_active() {
        return f();
    }
    let start = Instant::now();
    let out = f();
    observe_ns(name, start.elapsed().as_nanos() as u64);
    out
}

/// Appends a trace event to the ambient scope, stamped with the scope's
/// (node, round) context. `fields` are emitted in slice order.
#[inline]
pub fn trace(kind: &'static str, fields: &[(&str, crate::event::Field<'_>)]) {
    if !hot() {
        return;
    }
    with_scope(|sh| {
        sh.trace(kind, |ev| {
            for (name, v) in fields {
                ev.field(name, *v);
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Field;

    #[test]
    fn calls_without_scope_or_heat_are_noops() {
        // No enabled telemetry in this test: nothing panics, nothing records.
        count("x", 1);
        observe_ns("h", 5);
        trace("e", &[("a", Field::U64(1))]);
        assert!(!scope_active() || hot());
    }

    #[test]
    fn scope_records_and_nests() {
        let _token = ActiveToken::new();
        let mut outer = Shard::default();
        outer.set_ctx(1, 0);
        let prev = install(Some(outer));
        count("outer", 1);

        // Nested scope (as when the publisher thread runs a node job).
        let mut inner = Shard::default();
        inner.set_ctx(2, 0);
        let saved = install(Some(inner));
        count("inner", 5);
        let inner = install(saved).expect("inner back");
        assert!(scope_active());

        count("outer", 2);
        let outer = install(prev).expect("outer back");

        let reg = crate::registry::Registry::default();
        let mut inner = inner;
        let mut outer = outer;
        let _ = inner.drain_into(&reg);
        let _ = outer.drain_into(&reg);
        assert_eq!(reg.counter("inner"), 5);
        assert_eq!(reg.counter("outer"), 3);
    }

    #[test]
    fn timed_passes_value_through() {
        let _token = ActiveToken::new();
        let mut shard = Shard::default();
        shard.set_ctx(1, 0);
        let prev = install(Some(shard));
        let v = timed("t", || 42);
        assert_eq!(v, 42);
        let mut shard = install(prev).expect("shard back");
        let reg = crate::registry::Registry::default();
        let _ = shard.drain_into(&reg);
        assert_eq!(reg.snapshot().hists["t"].total, 1);
    }
}
