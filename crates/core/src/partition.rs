//! The §6 scalability scheme: partition an `n`-node network into `≈√n`
//! neighborhoods, each running its own PDS, with a top-level PDS signing the
//! neighborhood verification keys at start-up.
//!
//! The paper's claim: if the flat scheme tolerates `< n/2` break-ins per
//! unit, the two-level scheme tolerates only `≈ n/4` *adversarially placed*
//! break-ins (the adversary compromises `> √n/2` neighborhoods by breaking
//! `> √n/2` nodes in each), while cutting per-node message complexity from
//! `O(n²)` to `O(n·√n)` per refresh. Experiment E7 measures both effects.

/// A partition of `n` nodes into clusters of size `≈ cluster_size`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Cluster membership: `clusters[c]` lists the (1-based) node ids.
    pub clusters: Vec<Vec<u32>>,
}

impl Partition {
    /// Splits `1..=n` into `⌈n / cluster_size⌉` contiguous clusters.
    ///
    /// # Panics
    ///
    /// Panics if `cluster_size == 0`.
    pub fn contiguous(n: usize, cluster_size: usize) -> Self {
        assert!(cluster_size > 0);
        let clusters = (1..=n as u32)
            .collect::<Vec<u32>>()
            .chunks(cluster_size)
            .map(<[u32]>::to_vec)
            .collect();
        Partition { clusters }
    }

    /// Splits `1..=n` into exactly `k` contiguous clusters whose sizes
    /// differ by at most one (the first `n mod k` clusters get the extra
    /// node). Unlike [`Partition::contiguous`], this never produces a
    /// degenerate tail cluster.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > n` (an empty cluster has no PDS).
    pub fn balanced(n: usize, k: usize) -> Self {
        assert!(k > 0, "at least one cluster");
        assert!(k <= n, "no empty clusters: k = {k} > n = {n}");
        let (base, extra) = (n / k, n % k);
        let mut clusters = Vec::with_capacity(k);
        let mut next = 1u32;
        for c in 0..k {
            let size = base + usize::from(c < extra);
            clusters.push((next..next + size as u32).collect());
            next += size as u32;
        }
        Partition { clusters }
    }

    /// The square-root partition the paper suggests: `round(√n)` clusters of
    /// near-equal size. On non-perfect-square `n` the sizes differ by at
    /// most one — no tiny tail cluster whose local majority would be cheap
    /// to break.
    pub fn sqrt(n: usize) -> Self {
        assert!(n > 0);
        let k = ((n as f64).sqrt().round() as usize).clamp(1, n);
        Self::balanced(n, k)
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// The cluster containing `node`.
    pub fn cluster_of(&self, node: u32) -> Option<usize> {
        self.clusters.iter().position(|c| c.contains(&node))
    }

    /// Whether the partition covers `1..=n` exactly once — the invariant the
    /// hierarchical runner and per-cluster ground truth both require.
    pub fn covers(&self, n: usize) -> bool {
        let mut seen = vec![false; n];
        for &m in self.clusters.iter().flatten() {
            let Some(slot) = (m as usize).checked_sub(1).and_then(|i| seen.get_mut(i)) else {
                return false;
            };
            if std::mem::replace(slot, true) {
                return false;
            }
        }
        self.clusters.iter().all(|c| !c.is_empty()) && seen.iter().all(|&s| s)
    }

    /// The cluster's representative after `attempt` failed predecessors:
    /// the member list is cycled deterministically, so every node that
    /// observes the same failure count elects the same representative
    /// without communicating. Attempt 0 is the lowest member id.
    pub fn representative(&self, cluster: usize, attempt: usize) -> u32 {
        let members = &self.clusters[cluster];
        members[attempt % members.len()]
    }

    /// The local-PDS threshold of a cluster: `t_c = ⌊(|c| − 1) / 2⌋`, the
    /// largest `t` with `|c| ≥ 2t + 1`.
    pub fn cluster_threshold(&self, cluster: usize) -> usize {
        (self.clusters[cluster].len() - 1) / 2
    }

    /// Whether a cluster is *compromised*: more than half its members broken
    /// (its local PDS threshold `t_c < |c|/2` is exceeded).
    pub fn cluster_compromised(&self, cluster: usize, broken: &[bool]) -> bool {
        let members = &self.clusters[cluster];
        let bad = members
            .iter()
            .filter(|&&m| broken[(m - 1) as usize])
            .count();
        2 * bad > members.len()
    }

    /// Whether the *system* is compromised under the two-level scheme: more
    /// than half the clusters are compromised (the top-level PDS threshold
    /// is exceeded).
    pub fn system_compromised(&self, broken: &[bool]) -> bool {
        let bad = (0..self.clusters.len())
            .filter(|&c| self.cluster_compromised(c, broken))
            .count();
        2 * bad > self.clusters.len()
    }

    /// The minimum number of break-ins an optimal adversary needs to
    /// compromise the two-level system: majority of clusters × majority of
    /// each cluster (attacking the smallest clusters first).
    pub fn min_breakins_to_compromise(&self) -> usize {
        let mut majorities: Vec<usize> = self
            .clusters
            .iter()
            .map(|c| c.len() / 2 + 1)
            .collect();
        majorities.sort_unstable();
        let need_clusters = self.clusters.len() / 2 + 1;
        majorities.iter().take(need_clusters).sum()
    }
}

/// The flat scheme's breaking point for comparison: `⌊n/2⌋ + 1` break-ins.
pub fn flat_min_breakins(n: usize) -> usize {
    n / 2 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_partition_covers_all_nodes() {
        let p = Partition::contiguous(10, 3);
        assert_eq!(p.cluster_count(), 4);
        let all: Vec<u32> = p.clusters.iter().flatten().copied().collect();
        assert_eq!(all, (1..=10).collect::<Vec<u32>>());
        assert_eq!(p.cluster_of(7), Some(2));
        assert_eq!(p.cluster_of(99), None);
    }

    #[test]
    fn sqrt_partition_shape() {
        let p = Partition::sqrt(16);
        assert_eq!(p.cluster_count(), 4);
        assert!(p.clusters.iter().all(|c| c.len() == 4));
    }

    #[test]
    fn cluster_compromise_needs_majority() {
        let p = Partition::contiguous(9, 3);
        let mut broken = vec![false; 9];
        broken[0] = true; // 1 of 3 in cluster 0
        assert!(!p.cluster_compromised(0, &broken));
        broken[1] = true; // 2 of 3
        assert!(p.cluster_compromised(0, &broken));
    }

    #[test]
    fn system_compromise_needs_cluster_majority() {
        let p = Partition::contiguous(9, 3);
        let mut broken = vec![false; 9];
        // Compromise clusters 0 and 1 (2 nodes each) = 4 break-ins.
        for i in [0, 1, 3, 4] {
            broken[i] = true;
        }
        assert!(p.system_compromised(&broken));
        // The paper's point: 4 < flat threshold 5 for n = 9.
        assert!(4 < flat_min_breakins(9));
    }

    #[test]
    fn min_breakins_matches_paper_quarter_claim() {
        // n = 16, 4 clusters of 4: adversary needs 3 clusters × 3 nodes = 9
        // under the flat scheme... while flat needs 9 too here; asymptotically
        // the two-level cost tends to n/4 + O(√n) vs n/2.
        let p = Partition::sqrt(16);
        assert_eq!(p.min_breakins_to_compromise(), 9);
        assert_eq!(flat_min_breakins(16), 9);
        // n = 64, 8 clusters of 8: 5 clusters × 5 nodes = 25 < 33.
        let p = Partition::sqrt(64);
        assert_eq!(p.min_breakins_to_compromise(), 25);
        assert_eq!(flat_min_breakins(64), 33);
        // n = 100: 6 clusters × 6 = 36 < 51 (≈ n/4 + O(√n)).
        let p = Partition::sqrt(100);
        assert_eq!(p.min_breakins_to_compromise(), 36);
        assert_eq!(flat_min_breakins(100), 51);
    }

    #[test]
    fn balanced_sqrt_has_no_tiny_tail() {
        // Old behaviour chunked n = 10 into 3+3+3+1: a singleton cluster
        // whose "majority" is a single break-in. Balanced gives 4+3+3.
        let p = Partition::sqrt(10);
        assert_eq!(p.cluster_count(), 3);
        let sizes: Vec<usize> = p.clusters.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        assert!(p.covers(10));
        assert!(!p.covers(9));
        assert!(!p.covers(11));
    }

    #[test]
    fn representative_cycles_deterministically() {
        let p = Partition::balanced(10, 3);
        assert_eq!(p.representative(1, 0), 5);
        assert_eq!(p.representative(1, 1), 6);
        assert_eq!(p.representative(1, 3), 5); // wraps at cluster size
        assert_eq!(p.cluster_threshold(0), 1); // |c| = 4 → t = 1
        assert_eq!(p.cluster_threshold(1), 1); // |c| = 3 → t = 1
    }

    #[test]
    fn uneven_tail_cluster_handled() {
        let p = Partition::contiguous(10, 4);
        assert_eq!(p.cluster_count(), 3);
        assert_eq!(p.clusters[2], vec![9, 10]);
        let mut broken = vec![false; 10];
        broken[8] = true;
        broken[9] = true;
        assert!(p.cluster_compromised(2, &broken));
    }
}
