//! E8 — §5.1: the "almost (t,t)-limited" adversary — unlimited *injection*.
//!
//! The paper singles out message injection as the cheap attack (forge an IP
//! source address) and proves the scheme degrades gracefully: injected
//! garbage on arbitrary links never breaks authenticity; the one vulnerable
//! moment is the clear-text key announcement (URfr I.2), where injected
//! bogus keys can deny nodes their certificates — but then those nodes
//! *alert* (global awareness).
//!
//! Three injection campaigns, all with faithful delivery underneath:
//!
//! 1. garbage bytes on every link, every round;
//! 2. forged (uncertifiable) certified-message blobs to every node;
//! 3. bogus key announcements for every node during the announce window —
//!    the §5.1 scenario.

use proauth_adversary::Injector;
use proauth_bench::{print_table, uls_cfg, uls_node};
use proauth_core::awareness;
use proauth_core::uls::uls_schedule;
use proauth_core::wire::UlsWire;
use proauth_primitives::wire::Encode;
use proauth_sim::clock::Phase;
use proauth_sim::message::{NodeId, OutputEvent};
use proauth_sim::runner::run_ul;

const N: usize = 5;
const T: usize = 2;
const NORMAL: u64 = 12;

fn main() {
    let sched = uls_schedule(NORMAL);
    let mut rows = Vec::new();

    // Campaign 1: raw garbage everywhere.
    {
        let mut adv = Injector::new(move |view| {
            let mut out = Vec::new();
            for from in NodeId::all(N) {
                for to in NodeId::all(N) {
                    if from != to {
                        out.push((from, to, vec![0xDE, 0xAD, view.time.round as u8]));
                    }
                }
            }
            out
        });
        let result = run_ul(uls_cfg(N, T, NORMAL, 2, 71), uls_node(N, T), &mut adv);
        let imps = awareness::find_impersonations(&result.outputs, &sched, |_, _| false);
        let accepted = result
            .outputs
            .iter()
            .flat_map(|l| l.iter())
            .filter(|(_, e)| matches!(e, OutputEvent::Accepted { .. }))
            .count();
        rows.push(vec![
            "garbage on every link".into(),
            imps.len().to_string(),
            result.stats.alerts.iter().sum::<u64>().to_string(),
            accepted.to_string(),
        ]);
    }

    // Campaign 2: syntactically valid but uncertified forged blobs.
    {
        let mut adv = Injector::new(move |view| {
            let blob = proauth_core::wire::Blob::CertDeliver {
                subject: (view.time.round % N as u64 + 1) as u32,
                unit: view.time.unit,
                vk: vec![7; 8],
                cert: proauth_crypto::schnorr::Signature {
                    e: proauth_primitives::bigint::BigUint::from_u64(1),
                    s: proauth_primitives::bigint::BigUint::from_u64(2),
                },
            };
            let wire = UlsWire::Disperse(proauth_core::wire::DisperseMsg::Forwarding {
                origin: 1,
                blob: blob.to_bytes().into(),
            });
            NodeId::all(N)
                .filter(|&to| to != NodeId(1))
                .map(|to| (NodeId(1), to, wire.to_bytes()))
                .collect()
        });
        let result = run_ul(uls_cfg(N, T, NORMAL, 2, 72), uls_node(N, T), &mut adv);
        let imps = awareness::find_impersonations(&result.outputs, &sched, |_, _| false);
        rows.push(vec![
            "forged cert deliveries".into(),
            imps.len().to_string(),
            result.stats.alerts.iter().sum::<u64>().to_string(),
            "-".into(),
        ]);
    }

    // Campaign 3: bogus key announcements during the announce window (§5.1).
    {
        let mut adv = Injector::rushing(move |view| {
            if !matches!(view.time.phase, Phase::RefreshPart1 { step: 0 }) {
                return Vec::new();
            }
            // For every node, inject a bogus key in its name to everyone.
            let mut out = Vec::new();
            for victim in NodeId::all(N) {
                let announce = UlsWire::KeyAnnounce {
                    unit: view.time.unit,
                    vk: vec![0xBB; 8],
                };
                for to in NodeId::all(N) {
                    if to != victim {
                        out.push((victim, to, announce.to_bytes()));
                    }
                }
            }
            out
        });
        let result = run_ul(uls_cfg(N, T, NORMAL, 2, 73), uls_node(N, T), &mut adv);
        let imps = awareness::find_impersonations(&result.outputs, &sched, |_, _| false);
        let alerts: u64 = result.stats.alerts.iter().sum();
        rows.push(vec![
            "bogus key announcements".into(),
            imps.len().to_string(),
            alerts.to_string(),
            "certificate denial ⇒ alerts".into(),
        ]);
    }

    print_table(
        "E8 / §5.1 — injection campaigns vs ULS (n = 5, t = 2, 2 units)",
        &["campaign", "impersonations", "alerts", "note"],
        &rows,
    );
    println!(
        "\nExpected shape: zero impersonations in every campaign (injection can never\n\
         forge authenticity). Campaigns 1–2 cause zero alerts (garbage is silently\n\
         dropped); campaign 3 can deny certificates during the one clear-text step,\n\
         and every denied node alerts — the global-awareness property of §5.1.\n\
         Note: whether denial occurs depends on which announcement reaches each node\n\
         first; PARTIAL-AGREEMENT keeps the outcome consistent either way."
    );
}
