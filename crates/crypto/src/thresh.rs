//! Threshold Schnorr signing over a [`crate::dkg::KeyShare`].
//!
//! `t+1` signers jointly produce an ordinary Schnorr signature
//! ([`crate::schnorr::Signature`]) verifiable against the joint public key —
//! the *unchanging* PDS verification key the paper stores in ROM (§1.3).
//!
//! Protocol shape (two logical message rounds, matching the efficient schemes
//! the paper cites \[20\], \[23\]):
//!
//! 1. each signer `i` in the signer set `S` samples a nonce `k_i` and
//!    publishes `R_i = g^{k_i}`;
//! 2. everyone computes `R = Π R_i`, `e = H(R ‖ y ‖ m)`, and signer `i`
//!    publishes `z_i = k_i + e·λ_i·x_i` where `λ_i` is the Lagrange
//!    coefficient of `S` at zero;
//! 3. anyone combines `z = Σ z_i`, giving the signature `(e, z)`.
//!
//! Each partial `z_i` is publicly checkable against `R_i` and the share key
//! `X_i = g^{x_i}`: `g^{z_i} = R_i · X_i^{e·λ_i}` — this is what makes the
//! scheme *robust* (cheating signers are identified and excluded, and the
//! session restarted with another signer set).
//!
//! # Examples
//!
//! See `tests::full_threshold_signature` in this module.

use crate::dkg::KeyShare;
use crate::group::Group;
use crate::schnorr::{self, Signature};
use crate::shamir;
use proauth_primitives::bigint::BigUint;

/// A signer's nonce for one signing session.
///
/// Must be used at most once; the session driver enforces this.
#[derive(Debug, Clone)]
pub struct Nonce {
    /// Secret nonce scalar `k_i`.
    pub k: BigUint,
    /// Public nonce commitment `R_i = g^{k_i}`.
    pub commitment: BigUint,
}

/// Samples a fresh signing nonce.
pub fn generate_nonce<R: rand::RngCore>(group: &Group, rng: &mut R) -> Nonce {
    let k = group.random_nonzero_scalar(rng);
    let commitment = group.exp_g(&k);
    Nonce { k, commitment }
}

/// Aggregates the nonce commitments of the signer set: `R = Π R_i`.
///
/// # Panics
///
/// Panics if `commitments` is empty.
pub fn combine_nonces(group: &Group, commitments: &[BigUint]) -> BigUint {
    assert!(!commitments.is_empty(), "empty signer set");
    commitments
        .iter()
        .fold(group.identity(), |acc, r| group.mul(&acc, r))
}

/// The signing challenge `e = H(R ‖ y ‖ m)` — identical to the centralized
/// Schnorr challenge, so threshold signatures verify as ordinary ones.
pub fn challenge(group: &Group, combined_nonce: &BigUint, public_key: &BigUint, msg: &[u8]) -> BigUint {
    schnorr::challenge(group, combined_nonce, public_key, msg)
}

/// Computes signer `i`'s partial signature `z_i = k_i + e·λ_i·x_i`.
///
/// `signer_set` must contain `key.index` and be the exact set whose nonces
/// were combined.
pub fn partial_sign(
    group: &Group,
    key: &KeyShare,
    signer_set: &[u32],
    nonce: &Nonce,
    e: &BigUint,
) -> BigUint {
    let lambda = shamir::lagrange_coeff_at_zero(group, signer_set, key.index);
    let weighted = group.scalar_mul(e, &group.scalar_mul(&lambda, &key.share));
    group.scalar_add(&nonce.k, &weighted)
}

/// Verifies signer `i`'s partial signature: `g^{z_i} = R_i · X_i^{e·λ_i}`.
pub fn verify_partial(
    group: &Group,
    signer_set: &[u32],
    signer: u32,
    share_key: &BigUint,
    nonce_commitment: &BigUint,
    e: &BigUint,
    z_i: &BigUint,
) -> bool {
    if z_i >= group.q() || !group.contains(nonce_commitment) {
        return false;
    }
    let lambda = shamir::lagrange_coeff_at_zero(group, signer_set, signer);
    let expected = group.mul(
        nonce_commitment,
        &group.exp(share_key, &group.scalar_mul(e, &lambda)),
    );
    group.exp_g(z_i) == expected
}

/// Combines partial signatures into a full Schnorr signature `(e, Σ z_i)`.
///
/// # Panics
///
/// Panics if `partials` is empty.
pub fn combine_partials(group: &Group, e: &BigUint, partials: &[BigUint]) -> Signature {
    assert!(!partials.is_empty(), "no partial signatures");
    let s = partials
        .iter()
        .fold(BigUint::zero(), |acc, z| group.scalar_add(&acc, z));
    Signature { e: e.clone(), s }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dkg::{self, ReceivedDealing};
    use crate::group::GroupId;
    use crate::schnorr::VerifyKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dkg_keys(n: usize, t: usize, seed: u64) -> (Group, Vec<KeyShare>) {
        let group = Group::new(GroupId::Toy64);
        let mut rng = StdRng::seed_from_u64(seed);
        let dealings: Vec<(u32, crate::feldman::Dealing)> = (1..=n as u32)
            .map(|i| (i, dkg::deal(&group, t, n, &mut rng)))
            .collect();
        let shares = (1..=n as u32)
            .map(|me| {
                let inputs: Vec<ReceivedDealing> = dealings
                    .iter()
                    .map(|(dealer, d)| ReceivedDealing {
                        dealer: *dealer,
                        commitments: d.commitments.clone(),
                        share: d.share_for(me).clone(),
                    })
                    .collect();
                dkg::aggregate(&group, t, n, me, &inputs).unwrap()
            })
            .collect();
        (group, shares)
    }

    fn sign_with(
        group: &Group,
        keys: &[KeyShare],
        signer_set: &[u32],
        msg: &[u8],
        rng: &mut StdRng,
    ) -> Signature {
        let nonces: Vec<(u32, Nonce)> = signer_set
            .iter()
            .map(|&i| (i, generate_nonce(group, rng)))
            .collect();
        let commitments: Vec<BigUint> = nonces.iter().map(|(_, n)| n.commitment.clone()).collect();
        let r = combine_nonces(group, &commitments);
        let pk = &keys[0].public_key;
        let e = challenge(group, &r, pk, msg);
        let partials: Vec<BigUint> = nonces
            .iter()
            .map(|(i, nonce)| {
                let key = &keys[(*i - 1) as usize];
                let z = partial_sign(group, key, signer_set, nonce, &e);
                assert!(verify_partial(
                    group,
                    signer_set,
                    *i,
                    key.share_key(*i),
                    &nonce.commitment,
                    &e,
                    &z
                ));
                z
            })
            .collect();
        combine_partials(group, &e, &partials)
    }

    #[test]
    fn full_threshold_signature() {
        let (group, keys) = dkg_keys(5, 2, 71);
        let mut rng = StdRng::seed_from_u64(72);
        let sig = sign_with(&group, &keys, &[1, 3, 5], b"threshold message", &mut rng);
        let vk = VerifyKey::from_element(&group, keys[0].public_key.clone()).unwrap();
        assert!(vk.verify(b"threshold message", &sig));
        assert!(!vk.verify(b"other", &sig));
    }

    #[test]
    fn any_quorum_produces_valid_signature() {
        let (group, keys) = dkg_keys(5, 2, 73);
        let mut rng = StdRng::seed_from_u64(74);
        let vk = VerifyKey::from_element(&group, keys[0].public_key.clone()).unwrap();
        for set in [[1u32, 2, 3], [2, 4, 5], [1, 4, 5]] {
            let sig = sign_with(&group, &keys, &set, b"m", &mut rng);
            assert!(vk.verify(b"m", &sig), "set {set:?}");
        }
    }

    #[test]
    fn bad_partial_detected() {
        let (group, keys) = dkg_keys(4, 1, 75);
        let mut rng = StdRng::seed_from_u64(76);
        let signer_set = [1u32, 2];
        let nonce = generate_nonce(&group, &mut rng);
        let r = combine_nonces(&group, std::slice::from_ref(&nonce.commitment));
        let e = challenge(&group, &r, &keys[0].public_key, b"m");
        let z = partial_sign(&group, &keys[0], &signer_set, &nonce, &e);
        let bad_z = group.scalar_add(&z, &BigUint::one());
        assert!(!verify_partial(
            &group,
            &signer_set,
            1,
            keys[0].share_key(1),
            &nonce.commitment,
            &e,
            &bad_z
        ));
        // Also: a correct z_i presented for the wrong signer fails.
        assert!(!verify_partial(
            &group,
            &signer_set,
            2,
            keys[1].share_key(2),
            &nonce.commitment,
            &e,
            &z
        ));
    }

    #[test]
    fn out_of_range_partial_rejected() {
        let (group, keys) = dkg_keys(3, 1, 77);
        let e = BigUint::from_u64(5);
        let too_big = group.q().add(&BigUint::one());
        assert!(!verify_partial(
            &group,
            &[1, 2],
            1,
            keys[0].share_key(1),
            &group.exp_g(&BigUint::from_u64(3)),
            &e,
            &too_big
        ));
        // Nonce commitment outside the group rejected.
        assert!(!verify_partial(
            &group,
            &[1, 2],
            1,
            keys[0].share_key(1),
            &BigUint::zero(),
            &e,
            &BigUint::one()
        ));
    }

    #[test]
    fn undersized_signer_set_fails_verification() {
        // t = 2 needs 3 signers; 2 signers produce an invalid signature.
        let (group, keys) = dkg_keys(5, 2, 78);
        let mut rng = StdRng::seed_from_u64(79);
        let sig = sign_with(&group, &keys, &[1, 2], b"m", &mut rng);
        let vk = VerifyKey::from_element(&group, keys[0].public_key.clone()).unwrap();
        assert!(!vk.verify(b"m", &sig));
    }
}
