//! Link-level adversary strategies: droppers, cutters, injectors, replayers.
//!
//! These exercise the *delivery* side of the UL model (§2.2): the adversary
//! owns the map from sent to delivered messages. Node-targeting strategies
//! (break-ins, impersonation) live in [`crate::breakins`] and
//! [`crate::impersonation`].

use proauth_sim::adversary::{NetView, UlAdversary};
use proauth_sim::message::{Envelope, NodeId};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Drops every message on a configured set of (undirected) links.
#[derive(Debug, Clone, Default)]
pub struct LinkCutter {
    cut: BTreeSet<(u32, u32)>,
    /// Only cut during rounds in `[from_round, to_round)`, if set.
    window: Option<(u64, u64)>,
}

impl LinkCutter {
    /// Cuts the given undirected links permanently.
    pub fn new(links: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut cut = BTreeSet::new();
        for (a, b) in links {
            cut.insert(normalize(a.0, b.0));
        }
        LinkCutter { cut, window: None }
    }

    /// Cuts all links incident to `node` ("cutting off" a node, §1.1).
    pub fn isolate(node: NodeId, n: usize) -> Self {
        Self::new(
            NodeId::all(n)
                .filter(|&x| x != node)
                .map(|x| (node, x)),
        )
    }

    /// Restricts cutting to a round window `[from, to)`.
    pub fn during(mut self, from: u64, to: u64) -> Self {
        self.window = Some((from, to));
        self
    }

    /// Whether the link `{a, b}` is currently cut.
    pub fn is_cut(&self, a: NodeId, b: NodeId, round: u64) -> bool {
        let in_window = self.window.is_none_or(|(f, t)| round >= f && round < t);
        in_window && self.cut.contains(&normalize(a.0, b.0))
    }
}

fn normalize(a: u32, b: u32) -> (u32, u32) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl UlAdversary for LinkCutter {
    fn deliver(&mut self, sent: &[Envelope], view: &NetView<'_>) -> Vec<Envelope> {
        sent.iter()
            .filter(|e| !self.is_cut(e.from, e.to, view.time.round))
            .cloned()
            .collect()
    }
}

/// Drops each message independently with probability `p`.
#[derive(Debug, Clone)]
pub struct RandomDropper {
    /// Drop probability in `[0, 1]`.
    pub p: f64,
    rng: StdRng,
}

impl RandomDropper {
    /// Creates a dropper with its own deterministic randomness.
    pub fn new(p: f64, seed: u64) -> Self {
        RandomDropper {
            p,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl UlAdversary for RandomDropper {
    fn deliver(&mut self, sent: &[Envelope], _view: &NetView<'_>) -> Vec<Envelope> {
        sent.iter()
            .filter(|_| self.rng.gen::<f64>() >= self.p)
            .cloned()
            .collect()
    }
}

/// Injects forged payloads while delivering everything faithfully — the
/// "almost (t,t)-limited" adversary of §5.1 (injection is the easy attack;
/// the scheme must at worst alert, never break).
pub struct Injector {
    /// Builds the injections for a round: `(claimed_from, to, payload)`.
    pub inject: InjectFn,
    /// Deliver injections *before* the honest traffic (a rushing adversary
    /// racing the honest messages); default is after.
    pub prepend: bool,
}

/// Boxed callback for [`Injector::inject`]: maps the round's network view
/// to a list of `(claimed_from, to, payload)` forgeries.
pub type InjectFn = Box<dyn FnMut(&NetView<'_>) -> Vec<(NodeId, NodeId, Vec<u8>)>>;

impl std::fmt::Debug for Injector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Injector")
    }
}

impl Injector {
    /// Creates an injector from a closure.
    pub fn new(
        inject: impl FnMut(&NetView<'_>) -> Vec<(NodeId, NodeId, Vec<u8>)> + 'static,
    ) -> Self {
        Injector {
            inject: Box::new(inject),
            prepend: false,
        }
    }

    /// Rushing variant: injections are delivered ahead of honest traffic.
    pub fn rushing(
        inject: impl FnMut(&NetView<'_>) -> Vec<(NodeId, NodeId, Vec<u8>)> + 'static,
    ) -> Self {
        Injector {
            inject: Box::new(inject),
            prepend: true,
        }
    }
}

impl UlAdversary for Injector {
    fn deliver(&mut self, sent: &[Envelope], view: &NetView<'_>) -> Vec<Envelope> {
        let injected: Vec<Envelope> = (self.inject)(view)
            .into_iter()
            .map(|(from, to, payload)| Envelope::new(from, to, payload))
            .collect();
        if self.prepend {
            let mut out = injected;
            out.extend(sent.iter().cloned());
            out
        } else {
            let mut out = sent.to_vec();
            out.extend(injected);
            out
        }
    }
}

/// Records every message and replays a copy `delay` rounds later — testing
/// the round-binding of VER-CERT (replay resistance, Definition 4's remark).
#[derive(Debug, Clone)]
pub struct Replayer {
    /// Replay delay in rounds.
    pub delay: u64,
    buffer: Vec<(u64, Envelope)>,
}

impl Replayer {
    /// Creates a replayer with the given delay.
    pub fn new(delay: u64) -> Self {
        Replayer {
            delay,
            buffer: Vec::new(),
        }
    }
}

impl UlAdversary for Replayer {
    fn deliver(&mut self, sent: &[Envelope], view: &NetView<'_>) -> Vec<Envelope> {
        let round = view.time.round;
        for e in sent {
            self.buffer.push((round + self.delay, e.clone()));
        }
        let mut out = sent.to_vec();
        let (due, rest): (Vec<_>, Vec<_>) =
            std::mem::take(&mut self.buffer).into_iter().partition(|(r, _)| *r <= round);
        self.buffer = rest;
        out.extend(due.into_iter().map(|(_, e)| e));
        out
    }
}

/// Derives a per-round RNG for the chaos-delivery strategies. Keyed on
/// (seed, round, tag) rather than streamed, so a strategy's behaviour in
/// round `w` is a pure function of the seed and the round — re-running any
/// prefix of the schedule reproduces it exactly.
fn round_rng(seed: u64, round: u64, tag: &str) -> StdRng {
    let digest = proauth_primitives::sha256::hash_parts(
        "proauth/adversary/chaos-rng",
        &[tag.as_bytes(), &seed.to_be_bytes(), &round.to_be_bytes()],
    );
    StdRng::from_seed(digest)
}

/// Delays each message independently with probability `p` by one round
/// (synchronous-model "late" delivery: the envelope joins the next round's
/// delivered set instead of this one's).
#[derive(Debug, Clone)]
pub struct Delayer {
    /// Per-message delay probability in `[0, 1]`.
    pub p: f64,
    seed: u64,
    held: Vec<Envelope>,
}

impl Delayer {
    /// Creates a delayer with its own deterministic randomness.
    pub fn new(p: f64, seed: u64) -> Self {
        Delayer {
            p,
            seed,
            held: Vec::new(),
        }
    }
}

impl UlAdversary for Delayer {
    fn deliver(&mut self, sent: &[Envelope], view: &NetView<'_>) -> Vec<Envelope> {
        let mut rng = round_rng(self.seed, view.time.round, "delay");
        let mut out = std::mem::take(&mut self.held);
        for e in sent {
            if rng.gen::<f64>() < self.p {
                self.held.push(e.clone());
            } else {
                out.push(e.clone());
            }
        }
        out
    }
}

/// Duplicates each message independently with probability `p` (the duplicate
/// is delivered in the same round, immediately after the original).
#[derive(Debug, Clone)]
pub struct Duplicator {
    /// Per-message duplication probability in `[0, 1]`.
    pub p: f64,
    seed: u64,
}

impl Duplicator {
    /// Creates a duplicator with its own deterministic randomness.
    pub fn new(p: f64, seed: u64) -> Self {
        Duplicator { p, seed }
    }
}

impl UlAdversary for Duplicator {
    fn deliver(&mut self, sent: &[Envelope], view: &NetView<'_>) -> Vec<Envelope> {
        let mut rng = round_rng(self.seed, view.time.round, "dup");
        let mut out = Vec::with_capacity(sent.len());
        for e in sent {
            out.push(e.clone());
            if rng.gen::<f64>() < self.p {
                out.push(e.clone());
            }
        }
        out
    }
}

/// Shuffles each round's delivered set (Fisher–Yates on a per-round RNG).
/// Within the synchronous model a round's deliveries are a *set*, so honest
/// protocols must not depend on arrival order — this strategy checks that.
#[derive(Debug, Clone)]
pub struct Reorderer {
    seed: u64,
}

impl Reorderer {
    /// Creates a reorderer with its own deterministic randomness.
    pub fn new(seed: u64) -> Self {
        Reorderer { seed }
    }
}

impl UlAdversary for Reorderer {
    fn deliver(&mut self, sent: &[Envelope], view: &NetView<'_>) -> Vec<Envelope> {
        use rand::seq::SliceRandom;
        let mut rng = round_rng(self.seed, view.time.round, "reorder");
        let mut out = sent.to_vec();
        out.shuffle(&mut rng);
        out
    }
}

/// Composes two adversaries: `first` filters deliveries, then `second`
/// transforms the result. Break plans and corruption are taken from both.
pub struct Composed<A, B> {
    /// The inner (first-applied) adversary.
    pub first: A,
    /// The outer adversary.
    pub second: B,
}

impl<A: UlAdversary, B: UlAdversary> UlAdversary for Composed<A, B> {
    fn plan(&mut self, view: &NetView<'_>) -> proauth_sim::adversary::BreakPlan {
        let mut p = self.first.plan(view);
        p.merge(self.second.plan(view));
        p
    }

    fn corrupt(
        &mut self,
        node: NodeId,
        state: &mut dyn std::any::Any,
        time: &proauth_sim::clock::TimeView,
    ) {
        self.first.corrupt(node, state, time);
        self.second.corrupt(node, state, time);
    }

    fn deliver(&mut self, sent: &[Envelope], view: &NetView<'_>) -> Vec<Envelope> {
        let mid = self.first.deliver(sent, view);
        self.second.deliver(&mid, view)
    }

    fn output(&mut self) -> Vec<String> {
        let mut o = self.first.output();
        o.extend(self.second.output());
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proauth_sim::clock::{Schedule, TimeView};

    fn view(round: u64) -> (Vec<bool>, Vec<bool>) {
        let _ = round;
        (vec![false; 3], vec![true; 3])
    }

    fn netview<'a>(round: u64, broken: &'a [bool], ops: &'a [bool]) -> NetView<'a> {
        NetView {
            time: TimeView::at(&Schedule::new(10, 2, 2), round),
            n: 3,
            broken,
            crashed: &[false, false, false],
            operational: ops,
            last_delivered: &[],
            broken_inboxes: &[],
        }
    }

    #[test]
    fn link_cutter_drops_both_directions() {
        let mut adv = LinkCutter::new([(NodeId(1), NodeId(2))]);
        let (b, o) = view(0);
        let sent = vec![
            Envelope::new(NodeId(1), NodeId(2), vec![1]),
            Envelope::new(NodeId(2), NodeId(1), vec![2]),
            Envelope::new(NodeId(1), NodeId(3), vec![3]),
        ];
        let out = adv.deliver(&sent, &netview(0, &b, &o));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, NodeId(3));
    }

    #[test]
    fn link_cutter_window() {
        let mut adv = LinkCutter::new([(NodeId(1), NodeId(2))]).during(5, 10);
        let (b, o) = view(0);
        let sent = vec![Envelope::new(NodeId(1), NodeId(2), vec![1])];
        assert_eq!(adv.deliver(&sent, &netview(0, &b, &o)).len(), 1);
        assert_eq!(adv.deliver(&sent, &netview(5, &b, &o)).len(), 0);
        assert_eq!(adv.deliver(&sent, &netview(10, &b, &o)).len(), 1);
    }

    #[test]
    fn isolate_cuts_all_incident_links() {
        let adv = LinkCutter::isolate(NodeId(2), 4);
        assert!(adv.is_cut(NodeId(2), NodeId(1), 0));
        assert!(adv.is_cut(NodeId(3), NodeId(2), 0));
        assert!(!adv.is_cut(NodeId(1), NodeId(3), 0));
    }

    #[test]
    fn dropper_is_deterministic() {
        let run = || {
            let mut adv = RandomDropper::new(0.5, 9);
            let (b, o) = view(0);
            let sent: Vec<Envelope> = (0..50)
                .map(|i| Envelope::new(NodeId(1), NodeId(2), vec![i]))
                .collect();
            adv.deliver(&sent, &netview(0, &b, &o)).len()
        };
        assert_eq!(run(), run());
        let mut adv = RandomDropper::new(0.0, 9);
        let (b, o) = view(0);
        let sent = vec![Envelope::new(NodeId(1), NodeId(2), vec![0])];
        assert_eq!(adv.deliver(&sent, &netview(0, &b, &o)).len(), 1);
    }

    #[test]
    fn injector_adds_messages() {
        let mut adv = Injector::new(|_| vec![(NodeId(1), NodeId(2), vec![0xBB])]);
        let (b, o) = view(0);
        let out = adv.deliver(&[], &netview(0, &b, &o));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].from, NodeId(1));
    }

    #[test]
    fn replayer_replays_after_delay() {
        let mut adv = Replayer::new(2);
        let (b, o) = view(0);
        let sent = vec![Envelope::new(NodeId(1), NodeId(2), vec![7])];
        assert_eq!(adv.deliver(&sent, &netview(0, &b, &o)).len(), 1);
        assert_eq!(adv.deliver(&[], &netview(1, &b, &o)).len(), 0);
        let replayed = adv.deliver(&[], &netview(2, &b, &o));
        assert_eq!(replayed.len(), 1);
        assert_eq!(&replayed[0].payload[..], &[7]);
    }

    #[test]
    fn delayer_holds_to_next_round() {
        // p = 1: everything is held exactly one round.
        let mut adv = Delayer::new(1.0, 3);
        let (b, o) = view(0);
        let sent = vec![Envelope::new(NodeId(1), NodeId(2), vec![7])];
        assert_eq!(adv.deliver(&sent, &netview(0, &b, &o)).len(), 0);
        let late = adv.deliver(&[], &netview(1, &b, &o));
        assert_eq!(late.len(), 1);
        assert_eq!(&late[0].payload[..], &[7]);
        // p = 0: pass-through.
        let mut adv = Delayer::new(0.0, 3);
        assert_eq!(adv.deliver(&sent, &netview(0, &b, &o)).len(), 1);
    }

    #[test]
    fn duplicator_doubles_messages() {
        let mut adv = Duplicator::new(1.0, 3);
        let (b, o) = view(0);
        let sent = vec![Envelope::new(NodeId(1), NodeId(2), vec![7])];
        let out = adv.deliver(&sent, &netview(0, &b, &o));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].payload, out[1].payload);
    }

    #[test]
    fn reorderer_permutes_deterministically() {
        let (b, o) = view(0);
        let sent: Vec<Envelope> = (0..20)
            .map(|i| Envelope::new(NodeId(1), NodeId(2), vec![i]))
            .collect();
        let run = |seed| {
            let mut adv = Reorderer::new(seed);
            adv.deliver(&sent, &netview(0, &b, &o))
                .iter()
                .map(|e| e.payload[0])
                .collect::<Vec<_>>()
        };
        // Same seed reproduces the permutation; it is a permutation.
        assert_eq!(run(5), run(5));
        let mut sorted = run(5);
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(run(5), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn composed_merges_crash_plans() {
        use proauth_sim::adversary::BreakPlan;
        struct Crasher;
        impl UlAdversary for Crasher {
            fn plan(&mut self, _v: &NetView<'_>) -> BreakPlan {
                BreakPlan::crash([NodeId(1)])
            }
            fn deliver(&mut self, sent: &[Envelope], _v: &NetView<'_>) -> Vec<Envelope> {
                sent.to_vec()
            }
        }
        struct Restarter;
        impl UlAdversary for Restarter {
            fn plan(&mut self, _v: &NetView<'_>) -> BreakPlan {
                BreakPlan::restart([NodeId(2)])
            }
            fn deliver(&mut self, sent: &[Envelope], _v: &NetView<'_>) -> Vec<Envelope> {
                sent.to_vec()
            }
        }
        let mut adv = Composed {
            first: Crasher,
            second: Restarter,
        };
        let (b, o) = view(0);
        let plan = adv.plan(&netview(0, &b, &o));
        assert_eq!(plan.crash, vec![NodeId(1)]);
        assert_eq!(plan.restart, vec![NodeId(2)]);
    }

    #[test]
    fn composed_applies_both() {
        let cutter = LinkCutter::new([(NodeId(1), NodeId(2))]);
        let injector = Injector::new(|_| vec![(NodeId(3), NodeId(1), vec![9])]);
        let mut adv = Composed {
            first: cutter,
            second: injector,
        };
        let (b, o) = view(0);
        let sent = vec![Envelope::new(NodeId(1), NodeId(2), vec![1])];
        let out = adv.deliver(&sent, &netview(0, &b, &o));
        assert_eq!(out.len(), 1); // original dropped, injection added
        assert_eq!(&out[0].payload[..], &[9]);
    }
}
