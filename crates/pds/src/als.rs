//! The bundled AL-model PDS (`ALS = ⟨AGen, ASign, AVer, ARfr⟩` of §4):
//! threshold Schnorr with joint-Feldman key generation and proactive refresh,
//! packaged as an [`AlPds`] state machine.
//!
//! * `AGen` — joint-Feldman DKG during the adversary-free setup phase
//!   (2 logical rounds);
//! * `ASign` — [`crate::sign_session`] (2 logical rounds + retries);
//! * `AVer` — plain Schnorr verification against the joint public key
//!   ([`AlsPds::verify`]);
//! * `ARfr` — [`crate::refresh_session`] (7 logical steps inside the
//!   refresh phase), including Herzberg-style share recovery.
//!
//! The machine is deliberately oblivious to transport: `proauth-pds::AlsProcess`
//! runs it directly over authenticated links, while `proauth-core`'s ULS
//! wraps the very same machine in `AUTH-SEND` (Theorem 14's construction).

use crate::api::{AlPds, PdsEnvelope, PdsPhase, PdsTime, SignatureRecord};
use crate::msg::{sid_for_scoped, signing_payload, AlsMsg, Sid};
use crate::refresh_session::{Dest, RefreshSession};
use crate::sign_session::SignSession;
use proauth_telemetry as telemetry;
use proauth_crypto::dkg::{self, KeyShare, ReceivedDealing};
use proauth_crypto::group::Group;
use proauth_crypto::schnorr::{Signature, VerifyKey};
use proauth_crypto::thresh::{NoncePool, SignerPrecomp};
use proauth_primitives::bigint::BigUint;
use proauth_primitives::wire::{Decode, Encode, InternedBlob};
use proauth_sim::message::NodeId;
use rand::rngs::StdRng;
use std::collections::BTreeMap;

/// Static parameters of an ALS instance.
#[derive(Debug, Clone)]
pub struct AlsConfig {
    /// The Schnorr group.
    pub group: Group,
    /// Number of nodes.
    pub n: usize,
    /// Threshold: `t+1` signers produce a signature; at most `t` may be
    /// broken per time unit (`n ≥ 2t + 1`).
    pub t: usize,
    /// Cap on concurrently live sign sessions per node; requests beyond it
    /// are rejected for the round (open-loop back-pressure).
    pub max_sessions: usize,
    /// Sessions older than this many ticks are garbage-collected as failed
    /// (a session normally completes in ≤ 5 ticks).
    pub session_max_age: u32,
    /// Capacity of the preprocessed [`NoncePool`]; `0` disables
    /// preprocessing (every nonce is generated online).
    pub nonce_pool: usize,
    /// Responder-side batch-verification window: completed signatures are
    /// verified in amortized flushes of up to this many items. `≤ 1` turns
    /// amortization off (per-item verification). Also gates the in-session
    /// RLC partial batching.
    pub verify_window: usize,
    /// Instance scope mixed into every session id, isolating concurrent PDS
    /// instances (per-cluster locals and the top level of the §6 hierarchy)
    /// from one another. Empty = the flat, unscoped instance.
    pub sid_scope: Vec<u8>,
}

impl AlsConfig {
    /// Validates and builds a config with the default service knobs
    /// (64 concurrent sessions, age-16 GC, a 32-nonce preprocessing pool,
    /// and an 8-item verify window).
    ///
    /// # Panics
    ///
    /// Panics unless `n ≥ 2t + 1` (Remark 4 of the paper).
    pub fn new(group: Group, n: usize, t: usize) -> Self {
        assert!(n > 2 * t, "PDS requires n >= 2t+1");
        AlsConfig {
            group,
            n,
            t,
            max_sessions: 64,
            session_max_age: 16,
            nonce_pool: 32,
            verify_window: 8,
            sid_scope: Vec::new(),
        }
    }

    /// The same config scoped to one PDS instance of a multi-instance
    /// deployment (see [`AlsConfig::sid_scope`]).
    pub fn scoped(mut self, scope: impl Into<Vec<u8>>) -> Self {
        self.sid_scope = scope.into();
        self
    }

    /// Whether in-session partial verification should run batch-first.
    pub fn batch_partials(&self) -> bool {
        self.verify_window > 1
    }
}

/// The per-node ALS state machine.
#[derive(Debug)]
pub struct AlsPds {
    cfg: AlsConfig,
    me: u32,
    /// This node's slice of the distributed key (`None` after a wipe).
    key: Option<KeyShare>,
    /// The joint public key (duplicated outside `key` so a recovering node
    /// still knows what to verify against; the ULS layer re-seeds this from
    /// ROM every round).
    public_key: Option<BigUint>,
    /// Explicitly flagged share loss (break-in recovery entry point).
    share_lost: bool,
    sessions: BTreeMap<Sid, SignSession>,
    pending_requests: Vec<(Vec<u8>, u64)>,
    completed: Vec<SignatureRecord>,
    refresh: Option<RefreshSession>,
    refresh_failed: bool,
    /// Dealings received during setup.
    setup_inbox: Vec<ReceivedDealing>,
    /// Preprocessed signing nonces (`None` when `cfg.nonce_pool == 0`).
    /// Volatile secret state: wiped on break-in, refilled under the refresh
    /// schedule.
    nonce_pool: Option<NoncePool>,
    /// Preprocessed Lagrange coefficients per signer set (`None` when
    /// preprocessing is disabled). Public data — survives break-ins, warmed
    /// during the same offline windows as the nonce pool.
    lagrange: Option<SignerPrecomp>,
}

impl AlsPds {
    /// Creates the state machine for node `me`.
    pub fn new(cfg: AlsConfig, me: NodeId) -> Self {
        let nonce_pool = (cfg.nonce_pool > 0).then(|| NoncePool::new(cfg.nonce_pool));
        let lagrange = (cfg.nonce_pool > 0).then(SignerPrecomp::new);
        AlsPds {
            cfg,
            me: me.0,
            key: None,
            public_key: None,
            share_lost: false,
            sessions: BTreeMap::new(),
            pending_requests: Vec::new(),
            completed: Vec::new(),
            refresh: None,
            refresh_failed: false,
            setup_inbox: Vec::new(),
            nonce_pool,
            lagrange,
        }
    }

    /// Creates the state machine for a node joining an *already keyed*
    /// instance without a share — a restarted or newly promoted member (the
    /// hierarchy's re-elected representatives enter the top-level PDS this
    /// way). The node knows the joint public key from trusted storage,
    /// participates in refresh as a share-lost party, and recovers a share
    /// through Herzberg recovery at the next refresh.
    pub fn recovering(cfg: AlsConfig, me: NodeId, public_key: BigUint) -> Self {
        let mut pds = Self::new(cfg, me);
        pds.public_key = Some(public_key);
        pds.share_lost = true;
        pds
    }

    /// Client-triggered preprocessing refresh: tops the nonce pool back up
    /// and re-warms the public precomputation *outside* the scheduled
    /// offline window. Deliberately does not touch key shares — proactive
    /// share refresh stays under the schedule's control.
    pub fn preprocess(&mut self, rng: &mut StdRng) {
        if let Some(pool) = &mut self.nonce_pool {
            let added = pool.refill(&self.cfg.group, rng) as u64;
            if added > 0 {
                telemetry::count("pds/nonce_refilled", added);
            }
        }
        self.warm_offline();
    }

    /// Offline-window preprocessing beyond the nonce pool, all public data:
    /// memoizes the Lagrange coefficients for the signer set the next
    /// normal phase will fix absent faults (the lowest `t+1` indices), and
    /// promotes the share keys and joint public key into the group's
    /// fixed-base table cache so the online verification multi-exps run
    /// squaring-free from the first session. Retries against other signer
    /// sets memoize on first use instead. No-op when preprocessing is off,
    /// which is what keeps the E13 ablation's baseline leg honest.
    fn warm_offline(&mut self) {
        let expected: Vec<u32> = (1..=self.cfg.t as u32 + 1).collect();
        if let Some(pre) = &mut self.lagrange {
            if pre.warm(&self.cfg.group, &expected) {
                telemetry::count("pds/lagrange_warmed", 1);
            }
            if let Some(key) = &self.key {
                for x in &key.share_keys {
                    self.cfg.group.promote(x);
                }
            }
            if let Some(pk) = &self.public_key {
                self.cfg.group.promote(pk);
            }
        }
    }

    /// The node's static config.
    pub fn config(&self) -> &AlsConfig {
        &self.cfg
    }

    /// Current key share (read access for break-in semantics and tests).
    pub fn key_share(&self) -> Option<&KeyShare> {
        self.key.as_ref()
    }

    /// `AVer`: verifies a signature on `(msg, unit)` against a public key.
    pub fn verify(group: &Group, public_key: &BigUint, msg: &[u8], unit: u64, sig: &Signature) -> bool {
        VerifyKey::from_element(group, public_key.clone())
            .map(|vk| vk.verify(&signing_payload(msg, unit), sig))
            .unwrap_or(false)
    }

    /// Break-in corruption: erase all volatile key material — including the
    /// preprocessed nonce pool, whose secret scalars would otherwise let the
    /// adversary solve later partials for the share.
    pub fn corrupt_wipe(&mut self) {
        self.key = None;
        self.public_key = None;
        self.sessions.clear();
        self.pending_requests.clear();
        self.refresh = None;
        if let Some(pool) = &mut self.nonce_pool {
            pool.wipe();
        }
        // `self.lagrange` is deliberately NOT cleared: Lagrange coefficients
        // are public functions of the signer indices, so a break-in learns
        // nothing from them and recovery keeps the warm cache.
    }

    /// The preprocessed nonce pool, if preprocessing is enabled (tests).
    pub fn nonce_pool(&self) -> Option<&NoncePool> {
        self.nonce_pool.as_ref()
    }

    /// The joint public key as a group element, once known.
    pub fn public_key_element(&self) -> Option<&BigUint> {
        self.public_key.as_ref()
    }

    /// Break-in corruption: overwrite the share with garbage (the node is
    /// *not* told — detection happens via the self-consistency check).
    pub fn corrupt_share(&mut self, garbage: BigUint) {
        if let Some(k) = &mut self.key {
            k.share = garbage;
        }
    }

    /// Re-seeds the public key from trusted storage (the ULS layer calls
    /// this each round with the ROM copy of `v_cert`).
    pub fn set_public_key(&mut self, pk: BigUint) {
        self.public_key = Some(pk);
    }

    /// Whether this node's key material is currently usable.
    fn key_usable(&self) -> bool {
        !self.share_lost
            && self
                .key
                .as_ref()
                .is_some_and(|k| k.self_consistent(&self.cfg.group))
    }

    fn route(&mut self, from: u32, payload: &[u8]) {
        let Ok(msg) = AlsMsg::from_bytes(payload) else {
            return; // garbage (possibly adversarial): drop
        };
        match &msg {
            AlsMsg::SignInit { sid, .. }
            | AlsMsg::SignRetryNonce { sid, .. }
            | AlsMsg::SignPartial { sid, .. }
            | AlsMsg::SignDone { sid, .. } => {
                let pk = self.public_key.clone();
                if let (Some(session), Some(pk)) = (self.sessions.get_mut(sid), pk) {
                    session.handle(&self.cfg.group, &pk, from, &msg);
                }
            }
            AlsMsg::GenDeal { .. } => { /* setup only; ignore post-setup */ }
            _ => {
                if let Some(refresh) = &mut self.refresh {
                    refresh.handle(from, &msg);
                }
            }
        }
    }

    fn expand(&self, dest: Dest, msg: AlsMsg) -> Vec<PdsEnvelope> {
        // One encoding per logical message; broadcast clones are handle
        // bumps on the shared interned bytes.
        let payload = InternedBlob::from(msg.to_bytes());
        match dest {
            Dest::One(to) => vec![PdsEnvelope {
                to: NodeId(to),
                payload,
            }],
            Dest::All => (1..=self.cfg.n as u32)
                .filter(|&j| j != self.me)
                .map(|j| PdsEnvelope {
                    to: NodeId(j),
                    payload: payload.clone(),
                })
                .collect(),
        }
    }

    fn drain_finished_sessions(&mut self) {
        let done: Vec<Sid> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.is_done() || s.is_failed() || s.age() > self.cfg.session_max_age)
            .map(|(sid, _)| *sid)
            .collect();
        for sid in done {
            let session = self.sessions.remove(&sid).expect("present");
            match session.result() {
                Some(sig) => {
                    telemetry::count("pds/sign_completed", 1);
                    telemetry::observe_value("pds/sign_latency_rounds", u64::from(session.age()));
                    self.completed.push(SignatureRecord {
                        msg: session.msg.clone(),
                        unit: session.unit,
                        sig: sig.clone(),
                    });
                }
                None if session.is_failed() => telemetry::count("pds/sign_failed", 1),
                None => telemetry::count("pds/sign_expired", 1),
            }
        }
    }
}

impl AlPds for AlsPds {
    fn setup_rounds(&self) -> u64 {
        2
    }

    fn on_setup_round(
        &mut self,
        round: u64,
        inbox: &[(NodeId, Vec<u8>)],
        rng: &mut StdRng,
    ) -> Vec<PdsEnvelope> {
        match round {
            0 => {
                // AGen: every node deals a random contribution.
                let dealing = dkg::deal(&self.cfg.group, self.cfg.t, self.cfg.n, rng);
                self.setup_inbox.push(ReceivedDealing {
                    dealer: self.me,
                    commitments: dealing.commitments.clone(),
                    share: dealing.share_for(self.me).clone(),
                });
                (1..=self.cfg.n as u32)
                    .filter(|&j| j != self.me)
                    .map(|j| PdsEnvelope {
                        to: NodeId(j),
                        payload: AlsMsg::GenDeal {
                            commitments: dealing.commitments.clone(),
                            share: dealing.share_for(j).clone(),
                        }
                        .to_bytes()
                        .into(),
                    })
                    .collect()
            }
            1 => {
                for (from, payload) in inbox {
                    if let Ok(AlsMsg::GenDeal { commitments, share }) =
                        AlsMsg::from_bytes(payload)
                    {
                        self.setup_inbox.push(ReceivedDealing {
                            dealer: from.0,
                            commitments,
                            share,
                        });
                    }
                }
                self.setup_inbox.sort_by_key(|d| d.dealer);
                let key = dkg::aggregate(
                    &self.cfg.group,
                    self.cfg.t,
                    self.cfg.n,
                    self.me,
                    &self.setup_inbox,
                )
                .expect("setup is adversary-free");
                self.public_key = Some(key.public_key.clone());
                self.key = Some(key);
                self.setup_inbox.clear();
                // Preprocess the first pool of signing nonces and the
                // expected signer set's Lagrange coefficients while the
                // adversary is still offline (setup is adversary-free).
                if let Some(pool) = &mut self.nonce_pool {
                    pool.refill(&self.cfg.group, rng);
                }
                self.warm_offline();
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    fn public_key(&self) -> Option<Vec<u8>> {
        self.public_key.as_ref().map(|pk| pk.to_bytes_be())
    }

    fn request_sign(&mut self, msg: Vec<u8>, unit: u64) {
        self.pending_requests.push((msg, unit));
    }

    fn on_logical_round(
        &mut self,
        time: PdsTime,
        inbox: &[(NodeId, Vec<u8>)],
        rng: &mut StdRng,
    ) -> Vec<PdsEnvelope> {
        // 1. Route incoming messages.
        for (from, payload) in inbox {
            self.route(from.0, payload);
        }

        let mut out: Vec<PdsEnvelope> = Vec::new();
        match time.phase {
            PdsPhase::Refresh { step } => {
                // Abort in-flight signing sessions: shares are about to change.
                if step == 0 {
                    telemetry::count("pds/refresh_started", 1);
                    self.sessions.clear();
                    self.refresh_failed = false;
                    let old_key = if self.key_usable() {
                        self.key.clone()
                    } else {
                        None
                    };
                    self.refresh = Some(RefreshSession::new(
                        &self.cfg.group,
                        self.me,
                        self.cfg.n,
                        self.cfg.t,
                        time.unit,
                        old_key,
                    ));
                }
                if let Some(refresh) = &mut self.refresh {
                    if refresh.unit() == time.unit {
                        let outs =
                            telemetry::timed("pds/refresh_step_ns", || refresh.step(step, rng));
                        for (dest, msg) in outs {
                            out.extend(self.expand(dest, msg));
                        }
                    }
                    if step >= 6 {
                        if let Some(refresh) = self.refresh.take() {
                            let outcome = refresh.outcome();
                            self.refresh_failed = outcome.failed;
                            telemetry::count(
                                if outcome.failed {
                                    "pds/refresh_failed"
                                } else {
                                    "pds/refresh_ok"
                                },
                                1,
                            );
                            // The old share was erased inside the session
                            // (§6's erasure requirement); adopt the result.
                            match outcome.new_key {
                                Some(k) => {
                                    self.public_key = Some(k.public_key.clone());
                                    self.key = Some(k);
                                    self.share_lost = false;
                                }
                                None => {
                                    self.key = None;
                                    self.share_lost = true;
                                }
                            }
                        }
                        // Refresh is the scheduled offline window: top the
                        // preprocessed nonce pool back up for the coming
                        // normal phase (strict no-reuse accounting is inside
                        // the pool).
                        if let Some(pool) = &mut self.nonce_pool {
                            let added = pool.refill(&self.cfg.group, rng) as u64;
                            if added > 0 {
                                telemetry::count("pds/nonce_refilled", added);
                            }
                        }
                        self.warm_offline();
                    }
                }
            }
            PdsPhase::Normal => {
                // Start sessions for pending requests, up to the concurrent
                // session cap. The session table keys by sid, so many
                // sessions progress independently in the same round.
                let usable = self.key_usable();
                let batch_partials = self.cfg.batch_partials();
                for (msg, unit) in std::mem::take(&mut self.pending_requests) {
                    let sid = sid_for_scoped(&self.cfg.sid_scope, &msg, unit);
                    if self.sessions.contains_key(&sid) {
                        continue;
                    }
                    if self.sessions.len() >= self.cfg.max_sessions {
                        telemetry::count("pds/sign_rejected", 1);
                        continue;
                    }
                    telemetry::count("pds/sign_started", 1);
                    // Online fast path: the attempt-0 nonce comes from the
                    // preprocessed pool when one is available.
                    let nonce = if usable {
                        let pooled = self.nonce_pool.as_mut().and_then(NoncePool::take);
                        telemetry::count(
                            if pooled.is_some() {
                                "pds/nonce_pool_hit"
                            } else {
                                "pds/nonce_pool_miss"
                            },
                            1,
                        );
                        Some(pooled.unwrap_or_else(|| {
                            proauth_crypto::thresh::generate_nonce(&self.cfg.group, rng)
                        }))
                    } else {
                        None
                    };
                    let (mut session, init) =
                        SignSession::start_with_nonce(self.me, self.cfg.t, sid, msg, unit, nonce);
                    session.set_batch_partials(batch_partials);
                    self.sessions.insert(sid, session);
                    if let Some(init) = init {
                        out.extend(self.expand(Dest::All, init));
                    }
                }
                // Tick the rest.
                let pk = self.public_key.clone();
                if let Some(pk) = pk {
                    let key = if self.key_usable() { self.key.clone() } else { None };
                    let sids: Vec<Sid> = self.sessions.keys().copied().collect();
                    let mut broadcasts: Vec<AlsMsg> = Vec::new();
                    // The pool and coefficient cache move out of `self` for
                    // the loop so each session tick can borrow them mutably
                    // alongside the table.
                    let mut pool = self.nonce_pool.take();
                    let mut lagrange = self.lagrange.take();
                    for sid in sids {
                        // Sessions created this very round should not tick yet
                        // (their inits have not even been sent).
                        let started_now = self
                            .sessions
                            .get(&sid)
                            .map(|s| s.age() == 0)
                            .unwrap_or(false);
                        if let Some(session) = self.sessions.get_mut(&sid) {
                            if started_now {
                                session.bump_age();
                                continue;
                            }
                            broadcasts.extend(session.tick_with(
                                &self.cfg.group,
                                key.as_ref(),
                                &pk,
                                pool.as_mut(),
                                lagrange.as_mut(),
                                rng,
                            ));
                            session.bump_age();
                        }
                    }
                    self.nonce_pool = pool;
                    self.lagrange = lagrange;
                    for msg in broadcasts {
                        out.extend(self.expand(Dest::All, msg));
                    }
                }
                self.drain_finished_sessions();
            }
        }
        out
    }

    fn take_completed(&mut self) -> Vec<SignatureRecord> {
        std::mem::take(&mut self.completed)
    }

    fn refresh_failed(&self) -> bool {
        self.refresh_failed
    }

    fn has_share(&self) -> bool {
        self.key_usable()
    }

    fn mark_share_lost(&mut self) {
        self.share_lost = true;
    }
}
