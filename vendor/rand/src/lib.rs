//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build container has no network access and no crates.io mirror, so the
//! workspace vendors the slice of `rand` it actually uses. The implementation
//! is bit-compatible with upstream `rand` 0.8 for that slice:
//!
//! * [`rngs::StdRng`] is the same ChaCha12 generator (same block function,
//!   same word order, same `seed_from_u64` PCG32 seeding) as
//!   `rand::rngs::StdRng`, so seeded test vectors reproduce upstream streams;
//! * [`Rng::gen_range`] uses the same widening-multiply rejection sampling as
//!   upstream `UniformInt`;
//! * [`seq::SliceRandom::shuffle`] consumes randomness in the same order as
//!   the upstream Fisher–Yates implementation.
//!
//! Anything outside this subset is intentionally absent; extend it here if a
//! new caller needs more surface.

pub mod distributions;
pub mod rngs;
pub mod seq;

mod chacha;
mod uniform;

use distributions::{Distribution, Standard};

/// Error type for fallible RNG operations (always an OS-entropy failure).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from fixed entropy (mirror of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with the same PCG32
    /// stream upstream `rand_core` 0.6 uses, so seeded sequences match.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Seeds from OS entropy.
    fn from_entropy() -> Self {
        let mut seed = Self::Seed::default();
        rngs::fill_os_entropy(seed.as_mut());
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range (same rejection sampling as upstream).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        if p >= 1.0 {
            return true;
        }
        // Upstream Bernoulli: compare 64 random bits against p·2^64.
        let p_int = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < p_int
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Returns an OS-entropy-seeded generator (mirror of `rand::thread_rng`).
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

/// Samples one value from the standard distribution using [`thread_rng`].
pub fn random<T>() -> T
where
    Standard: Distribution<T>,
{
    thread_rng().gen()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let x: usize = rng.gen_range(0..3);
            assert!(x < 3);
            let y: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(8);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_permutes() {
        use seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(10);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "w.h.p. shuffled order differs");
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 7]);
    }

    #[test]
    fn thread_rng_works() {
        let mut rng = thread_rng();
        let _: u64 = rng.gen();
    }
}
