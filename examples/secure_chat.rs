//! A chat protocol written for *authenticated* links, compiled to run over
//! *unauthenticated* links by the proactive authenticator Λ (§5 of the
//! paper): the protocol code never mentions keys, certificates, or
//! refreshes — it just sends and receives.
//!
//! ```text
//! cargo run -p proauth-examples --bin secure_chat
//! ```

use proauth_core::authenticator::{AlProtocol, AppCtx};
use proauth_core::uls::{app_input, uls_schedule, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_sim::adversary::{BreakPlan, NetView, UlAdversary};
use proauth_sim::message::{Envelope, NodeId, OutputEvent};
use proauth_sim::runner::{run_ul_with_inputs, SimConfig};

/// The chat protocol `π`, written as if links were authenticated.
#[derive(Default)]
struct ChatApp {
    transcript: Vec<(NodeId, String)>,
}

impl AlProtocol for ChatApp {
    fn on_logical_round(&mut self, ctx: &mut AppCtx<'_>) {
        // Anything typed locally is broadcast to the room.
        if let Some(line) = ctx.input {
            let line = String::from_utf8_lossy(line).into_owned();
            ctx.send_all(line.into_bytes());
        }
        // Anything accepted is authentic — the compiler guarantees it.
        for (from, msg) in ctx.accepted {
            let text = String::from_utf8_lossy(msg).into_owned();
            self.transcript.push((*from, text.clone()));
            ctx.output(OutputEvent::Custom(format!("{from}: {text}")));
        }
    }
}

/// An adversary that breaks into N2 mid-conversation and steals its state —
/// the chat keeps its integrity: nothing can be forged in N2's name after
/// the next refresh.
struct Eavesdropper;

impl UlAdversary for Eavesdropper {
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        match view.time.round {
            10 => BreakPlan::break_into([NodeId(2)]),
            14 => BreakPlan::leave([NodeId(2)]),
            _ => BreakPlan::none(),
        }
    }

    fn deliver(&mut self, sent: &[Envelope], _view: &NetView<'_>) -> Vec<Envelope> {
        sent.to_vec()
    }
}

fn main() {
    let n = 4;
    let t = 1;
    let schedule = uls_schedule(20);
    let mut cfg = SimConfig::new(n, t, schedule);
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = schedule.unit_rounds * 2;
    cfg.seed = 11;

    // A little script: (node, round, line).
    let script: Vec<(u32, u64, &str)> = vec![
        (1, 2, "hello from N1"),
        (3, 2, "N3 checking in"),
        (2, 4, "N2 here, before the break-in"),
        (4, 6, "did anyone verify the build?"),
        (1, schedule.unit_rounds + schedule.refresh_rounds() + 2, "still here after refresh"),
        (2, schedule.unit_rounds + schedule.refresh_rounds() + 4, "N2 recovered and chatting"),
    ];

    println!("secure chat compiled by the proactive authenticator (n = {n}, t = {t})\n");

    let group = Group::new(GroupId::Toy64);
    let script_for_input = script.clone();
    let result = run_ul_with_inputs(
        cfg,
        |id| UlsNode::new(UlsConfig::new(group.clone(), n, t), id, ChatApp::default()),
        &mut Eavesdropper,
        move |id, round| {
            script_for_input
                .iter()
                .find(|(who, when, _)| *who == id.0 && *when == round)
                .map(|(_, _, line)| app_input(line.as_bytes()))
        },
    );

    // Print the chat as N1 saw it.
    println!("transcript as accepted by N1 (every line below is authenticated):");
    for (round, ev) in &result.outputs[NodeId(1).idx()] {
        if let OutputEvent::Custom(line) = ev {
            println!("  [round {round:3}] {line}");
        }
    }

    let lines_accepted = result
        .outputs
        .iter()
        .flat_map(|log| log.iter())
        .filter(|(_, e)| matches!(e, OutputEvent::Custom(_)))
        .count();
    println!("\n{lines_accepted} authenticated chat lines accepted network-wide.");
    println!(
        "N2 was broken into at round 10 (its keys were exposed) — after the refresh its old \
         keys are worthless to the adversary, and N2 chats on with fresh ones."
    );
}
