//! E3 — Theorem 14: ULS is `(t,t)`-secure in the UL model.
//!
//! Runs the attack suite against full ULS networks and reports, per attack,
//! whether any forgery was accepted *outside the ideal model's allowance*:
//!
//! * replay of recorded traffic (must fail — round binding);
//! * stolen-key impersonation across a refresh (must fail — unit binding);
//! * stolen-key impersonation within the break-in unit (succeeds, and is
//!   *allowed*: the victim counts as compromised that unit);
//! * certification hijack of a cut-off node (succeeds against the
//!   disconnected victim — allowed — but must trigger the same-unit alert);
//! * the control: a `t+1`-node break-in in one unit (beyond the limit)
//!   demonstrably hands the adversary the whole PDS.

use proauth_adversary::{Hijacker, KeyThief, LimitObserver, Replayer};
use proauth_bench::{print_table, uls_cfg, uls_node};
use proauth_core::authenticator::HeartbeatApp;
use proauth_core::awareness;
use proauth_core::uls::uls_schedule;
use proauth_crypto::group::{Group, GroupId};
use proauth_crypto::shamir;
use proauth_pds::als::AlsPds;
use proauth_pds::msg::signing_payload;
use proauth_primitives::bigint::BigUint;
use proauth_sim::adversary::{BreakPlan, NetView, UlAdversary};
use proauth_sim::clock::TimeView;
use proauth_sim::message::{Envelope, NodeId, OutputEvent};
use proauth_sim::runner::run_ul;

const N: usize = 5;
const T: usize = 2;
const NORMAL: u64 = 12;

fn forged_accepts(result: &proauth_sim::runner::SimResult, marker: &[u8]) -> usize {
    result
        .outputs
        .iter()
        .flat_map(|log| log.iter())
        .filter(|(_, ev)| matches!(ev, OutputEvent::Accepted { msg, .. } if msg == marker))
        .count()
}

/// Breaks into t+1 nodes in one unit and reads their PDS shares — the
/// beyond-the-limit control demonstrating the threshold is tight.
struct ShareHarvester {
    shares: Vec<(u32, BigUint)>,
    public_key: Option<BigUint>,
    targets: Vec<NodeId>,
}

impl UlAdversary for ShareHarvester {
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        if view.time.round == 4 {
            BreakPlan::break_into(self.targets.clone())
        } else if view.time.round == 6 {
            BreakPlan::leave(self.targets.clone())
        } else {
            BreakPlan::none()
        }
    }

    fn corrupt(&mut self, node: NodeId, state: &mut dyn std::any::Any, _time: &TimeView) {
        if self.shares.iter().any(|(i, _)| *i == node.0) {
            return;
        }
        if let Some(n) = state.downcast_mut::<proauth_core::uls::UlsNode<HeartbeatApp>>() {
            if let Some(key) = n.pds.key_share() {
                self.shares.push((node.0, key.share.clone()));
                self.public_key = Some(key.public_key.clone());
            }
        }
    }

    fn deliver(&mut self, sent: &[Envelope], _view: &NetView<'_>) -> Vec<Envelope> {
        sent.to_vec()
    }
}

fn main() {
    let sched = uls_schedule(NORMAL);
    let unit_rounds = sched.unit_rounds;
    let mut rows: Vec<Vec<String>> = Vec::new();

    // 1. Replay attack.
    {
        let mut adv = Replayer::new(6);
        let result = run_ul(uls_cfg(N, T, NORMAL, 2, 31), uls_node(N, T), &mut adv);
        let imps = awareness::find_impersonations(&result.outputs, &sched, |_, _| false);
        rows.push(vec![
            "replay (6-round delay)".into(),
            "reject".into(),
            if imps.is_empty() { "rejected" } else { "ACCEPTED" }.into(),
            format!("{} impersonations", imps.len()),
        ]);
    }

    // 2. Stolen keys, forged across the refresh.
    {
        let forge: Vec<u64> = (0..6)
            .map(|k| unit_rounds + sched.refresh_rounds() + 2 * k)
            .collect();
        let mut adv = KeyThief::<HeartbeatApp>::new(NodeId(3), 4, 6, forge);
        let result = run_ul(uls_cfg(N, T, NORMAL, 2, 32), uls_node(N, T), &mut adv);
        let accepted = forged_accepts(&result, b"FORGED-BY-KEYTHIEF");
        rows.push(vec![
            "stolen key, next unit".into(),
            "reject".into(),
            if accepted == 0 { "rejected" } else { "ACCEPTED" }.into(),
            format!("{} accept-events from {} injected", accepted, adv.forgeries_sent),
        ]);
    }

    // 3. Stolen keys, forged within the break-in unit (allowed).
    {
        let forge: Vec<u64> = (5..10).map(|k| 2 * k).collect();
        let mut adv = KeyThief::<HeartbeatApp>::new(NodeId(3), 4, 6, forge);
        let result = run_ul(uls_cfg(N, T, NORMAL, 1, 33), uls_node(N, T), &mut adv);
        let accepted = forged_accepts(&result, b"FORGED-BY-KEYTHIEF");
        rows.push(vec![
            "stolen key, same unit".into(),
            "accept (victim compromised)".into(),
            if accepted > 0 { "accepted" } else { "rejected" }.into(),
            format!("{} accept-events from {} injected", accepted, adv.forgeries_sent),
        ]);
    }

    // 4. Certification hijack (allowed vs the disconnected victim; alert due).
    {
        let group = Group::new(GroupId::Toy64);
        let mut adv = LimitObserver::new(Hijacker::new(group, NodeId(4), 1, unit_rounds));
        let result = run_ul(uls_cfg(N, T, NORMAL, 2, 34), uls_node(N, T), &mut adv);
        let accepted = forged_accepts(&result, b"FORGED-BY-HIJACKER");
        let alerted = result.alerted_in_unit(NodeId(4), 1, &sched);
        rows.push(vec![
            "certification hijack".into(),
            "accept (victim disconnected) + ALERT".into(),
            format!(
                "{}, alert={}",
                if accepted > 0 { "accepted" } else { "rejected" },
                alerted
            ),
            format!(
                "{} accepted; impaired/unit = {} ≤ t",
                accepted,
                adv.max_impaired()
            ),
        ]);
    }

    // 5. Control: t+1 shares in one unit reconstruct the signing key.
    {
        let targets: Vec<NodeId> = (1..=(T + 1) as u32).map(NodeId).collect();
        let mut adv = ShareHarvester {
            shares: Vec::new(),
            public_key: None,
            targets,
        };
        let _result = run_ul(uls_cfg(N, T, NORMAL, 1, 35), uls_node(N, T), &mut adv);
        let group = Group::new(GroupId::Toy64);
        let forged = match (&adv.public_key, adv.shares.len() > T) {
            (Some(pk), true) => {
                let secret = shamir::interpolate_at_zero(&group, &adv.shares[..T + 1]);
                // The reconstructed secret must match the NETWORK's public
                // key (the one burned into every ROM), and signatures under
                // it must verify against that key.
                let sk = proauth_crypto::schnorr::SigningKey::from_scalar(&group, secret);
                let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
                let sig = sk.sign(&signing_payload(b"total forgery", 0), &mut rng);
                sk.verify_key().element() == pk
                    && AlsPds::verify(&group, pk, b"total forgery", 0, &sig)
            }
            _ => false,
        };
        rows.push(vec![
            format!("break t+1 = {} nodes in one unit", T + 1),
            "adversary wins (beyond limit)".into(),
            if forged { "key reconstructed" } else { "failed" }.into(),
            format!("{} shares harvested", adv.shares.len()),
        ]);
    }

    print_table(
        "E3 / Theorem 14 — attack suite vs ULS (n = 5, t = 2)",
        &["attack", "theory predicts", "observed", "detail"],
        &rows,
    );
    println!(
        "\nExpected shape: every attack within the (t,t)-limit either fails outright or\n\
         falls inside the ideal model's allowance (compromised/disconnected victims),\n\
         and the one attack beyond the limit hands the adversary the signing key —\n\
         the threshold is exactly t."
    );
}
