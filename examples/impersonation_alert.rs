//! The awareness guarantee (Proposition 31), live: an adversary hijacks a
//! node's key certification *without ever breaking in* — it cuts the victim
//! off, announces its own key in the victim's name, and lets the honest
//! majority certify the fake key. The impersonation succeeds, but the victim
//! raises an alert in the very same time unit.
//!
//! ```text
//! cargo run -p proauth-examples --bin impersonation_alert
//! ```

use proauth_adversary::{Hijacker, LimitObserver};
use proauth_core::authenticator::HeartbeatApp;
use proauth_core::awareness;
use proauth_core::uls::{uls_schedule, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_sim::message::{NodeId, OutputEvent};
use proauth_sim::runner::{run_ul, SimConfig};

fn main() {
    let n = 5;
    let t = 2;
    let victim = NodeId(4);
    let attack_unit = 1;
    let schedule = uls_schedule(12);

    println!("certification hijack: n = {n}, t = {t}, victim = {victim}, unit = {attack_unit}");
    println!("the adversary never breaks into any node — it only controls links.\n");

    let mut cfg = SimConfig::new(n, t, schedule);
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = schedule.unit_rounds * 2;
    cfg.seed = 3;

    let group = Group::new(GroupId::Toy64);
    let mut adv = LimitObserver::new(Hijacker::new(
        group.clone(),
        victim,
        attack_unit,
        schedule.unit_rounds,
    ));
    let result = run_ul(
        cfg,
        |id| UlsNode::new(UlsConfig::new(group.clone(), n, t), id, HeartbeatApp::default()),
        &mut adv,
    );

    println!("attack mechanics:");
    println!(
        "  fake key certified by the honest majority: {}",
        adv.inner.harvested_cert.is_some()
    );
    println!("  forged messages injected: {}", adv.inner.forgeries_sent);
    let accepted_forgeries = result
        .outputs
        .iter()
        .flat_map(|log| log.iter())
        .filter(|(_, ev)| {
            matches!(ev, OutputEvent::Accepted { msg, .. } if msg == b"FORGED-BY-HIJACKER")
        })
        .count();
    println!("  forged messages accepted by honest nodes: {accepted_forgeries}");
    println!(
        "  victim rounds spent broken into: {} (zero — pure link attack)",
        result.stats.broken_rounds[victim.idx()]
    );
    println!(
        "  adversary stayed (t,t)-limited: max impaired per unit = {} ≤ t = {t}",
        adv.max_impaired()
    );

    println!("\nawareness (Proposition 31):");
    let alerted = result.alerted_in_unit(victim, attack_unit, &schedule);
    println!("  victim alerted in the attack unit: {alerted}");

    let incidents = awareness::find_impersonations(&result.outputs, &schedule, |_, _| false);
    println!("  impersonation incidents detected (Definition 10): {}", incidents.len());
    let uncovered = awareness::unalerted_impersonations(
        &result.outputs,
        &schedule,
        |_, _| false,
        |node, unit| result.alerted_in_unit(node, unit, &schedule),
    );
    println!(
        "  incidents NOT covered by a same-unit alert: {} (the theorem demands 0)",
        uncovered.len()
    );

    assert!(alerted && uncovered.is_empty());
    println!(
        "\nthe victim cannot *prevent* impersonation while it is cut off from the network, \
         but it always *knows*: it announced one key and the network certified another — \
         so no certificate for its key ever arrived, and it raised the alarm."
    );
}
