//! Property tests for the ground-truth machinery: link reliability
//! (Definition 4) and the s-operational tracker (Definition 5).

use proauth_sim::message::{Envelope, NodeId};
use proauth_sim::reliability::{link_reliability, OperationalRule, OperationalTracker, PairMatrix};
use proptest::prelude::*;

/// Strategy: a random message set over an n-node network.
fn msgs(n: u32, max: usize) -> impl Strategy<Value = Vec<Envelope>> {
    proptest::collection::vec(
        (1..=n, 1..=n, proptest::collection::vec(any::<u8>(), 0..4)).prop_filter_map(
            "no self-links",
            |(a, b, payload)| (a != b).then(|| Envelope::new(NodeId(a), NodeId(b), payload)),
        ),
        0..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn faithful_delivery_keeps_unbroken_links_reliable(sent in msgs(5, 20)) {
        let n = 5;
        let m = link_reliability(n, &sent, &sent, &[false; 5]);
        for a in NodeId::all(n) {
            for b in NodeId::all(n) {
                if a != b {
                    prop_assert!(m.get(a, b));
                }
            }
        }
    }

    #[test]
    fn reliability_is_symmetric(sent in msgs(5, 20), delivered in msgs(5, 20)) {
        let n = 5;
        let m = link_reliability(n, &sent, &delivered, &[false; 5]);
        for a in NodeId::all(n) {
            for b in NodeId::all(n) {
                if a != b {
                    prop_assert_eq!(m.get(a, b), m.get(b, a));
                }
            }
        }
    }

    #[test]
    fn any_mismatch_breaks_exactly_affected_links(
        sent in msgs(4, 12),
        drop_idx in any::<prop::sample::Index>(),
    ) {
        const N: usize = 4;
        let n = N;
        if sent.is_empty() {
            return Ok(());
        }
        let victim = drop_idx.get(&sent).clone();
        let delivered: Vec<Envelope> = {
            // Drop exactly one copy of the chosen message.
            let mut dropped = false;
            sent.iter()
                .filter(|e| {
                    if !dropped && **e == victim {
                        dropped = true;
                        false
                    } else {
                        true
                    }
                })
                .cloned()
                .collect()
        };
        let m = link_reliability(n, &sent, &delivered, &[false; N]);
        // The victim's link must be unreliable.
        prop_assert!(!m.get(victim.from, victim.to));
        // Links with no traffic discrepancy stay reliable.
        for a in NodeId::all(n) {
            for b in NodeId::all(n) {
                if a.0 < b.0 && !m.get(a, b) {
                    // Some message between a and b must differ between sent
                    // and delivered.
                    let pair_msgs = |set: &[Envelope]| {
                        let mut v: Vec<&Envelope> = set
                            .iter()
                            .filter(|e| {
                                (e.from == a && e.to == b) || (e.from == b && e.to == a)
                            })
                            .collect();
                        v.sort_by(|x, y| (x.from.0, &x.payload).cmp(&(y.from.0, &y.payload)));
                        v.into_iter().cloned().collect::<Vec<_>>()
                    };
                    prop_assert_ne!(pair_msgs(&sent), pair_msgs(&delivered));
                }
            }
        }
    }

    #[test]
    fn broken_nodes_are_never_operational(broken_mask in 0u8..32) {
        let n = 5;
        let broken: Vec<bool> = (0..n).map(|i| broken_mask & (1 << i) != 0).collect();
        let mut tracker = OperationalTracker::new(n, 2);
        let rel = link_reliability(n, &[], &[], &broken);
        tracker.on_round(&broken, &rel, false, false);
        for (i, &b) in broken.iter().enumerate() {
            if b {
                prop_assert!(!tracker.is_operational(NodeId::from_idx(i)));
            }
        }
    }

    #[test]
    fn operational_set_never_grows_outside_refresh_end(
        breaks in proptest::collection::vec(0u8..32, 1..12),
    ) {
        // Without a refresh-phase end, rule 3 cannot fire, so the
        // operational set is monotonically non-increasing.
        let n = 5;
        let mut tracker = OperationalTracker::new(n, 2);
        let mut prev_count = n;
        for mask in breaks {
            let broken: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            let rel = link_reliability(n, &[], &[], &broken);
            tracker.on_round(&broken, &rel, false, false);
            let count = tracker.count();
            prop_assert!(count <= prev_count, "grew {prev_count} -> {count}");
            prev_count = count;
        }
    }

    #[test]
    fn parenthetical_no_less_permissive_than_main_text(
        breaks in proptest::collection::vec(0u8..32, 1..8),
    ) {
        // Every node operational under MainText is operational under
        // Parenthetical (the latter only discounts non-operational peers).
        let n = 5;
        let mut lax = OperationalTracker::with_rule(n, 2, OperationalRule::Parenthetical);
        let mut strict = OperationalTracker::with_rule(n, 2, OperationalRule::MainText);
        for mask in breaks {
            let broken: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            let rel = link_reliability(n, &[], &[], &broken);
            lax.on_round(&broken, &rel, false, false);
            strict.on_round(&broken, &rel, false, false);
            for i in 0..n {
                if strict.is_operational(NodeId::from_idx(i)) {
                    prop_assert!(lax.is_operational(NodeId::from_idx(i)));
                }
            }
        }
    }

    #[test]
    fn pair_matrix_and_with_is_intersection(
        cuts1 in proptest::collection::vec((1u32..=4, 1u32..=4), 0..6),
        cuts2 in proptest::collection::vec((1u32..=4, 1u32..=4), 0..6),
    ) {
        let n = 4;
        let mk = |cuts: &[(u32, u32)]| {
            let mut m = PairMatrix::filled(n, true);
            for &(a, b) in cuts {
                if a != b {
                    m.set(NodeId(a), NodeId(b), false);
                }
            }
            m
        };
        let m1 = mk(&cuts1);
        let m2 = mk(&cuts2);
        let mut both = m1.clone();
        both.and_with(&m2);
        for a in NodeId::all(n) {
            for b in NodeId::all(n) {
                if a != b {
                    prop_assert_eq!(both.get(a, b), m1.get(a, b) && m2.get(a, b));
                }
            }
        }
    }
}
