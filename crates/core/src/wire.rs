//! Wire formats of the UL-model protocol stack (§4.1–4.2).
//!
//! Layering, outermost first:
//!
//! 1. [`UlsWire`] — what actually travels in a physical envelope: either a
//!    *clear* key announcement (refresh Part I, step 2 — the one message the
//!    paper deliberately leaves unauthenticated) or a [`DisperseMsg`].
//! 2. [`DisperseMsg`] — the two-phase echo of Fig. 2 carrying an opaque blob.
//! 3. [`Blob`] — what DISPERSE carries: a [`CertifiedMsg`] (AUTH-SEND),
//!    relayed equivocation [`Blob::Evidence`] (PARTIAL-AGREEMENT step 3), or
//!    a self-authenticating certificate delivery (URfr Part I step 4).
//! 4. [`Inner`] — the payload of a certified message: PDS traffic, top-layer
//!    (π) application traffic, or a PARTIAL-AGREEMENT input value.

use proauth_crypto::schnorr::Signature;
use proauth_primitives::wire::{
    decode_seq, encode_seq, Decode, Encode, InternedBlob, Reader, WireError, Writer,
};
use proauth_sim::message::Payload;

/// Outermost physical payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UlsWire {
    /// Refresh Part I step 2: "the public key of N_i in time unit u is v",
    /// sent in the clear (the sender may have nothing to authenticate with).
    KeyAnnounce {
        /// The unit the key is for.
        unit: u64,
        /// The announced verification key bytes.
        vk: Vec<u8>,
    },
    /// Everything else rides the DISPERSE echo.
    Disperse(DisperseMsg),
}

impl UlsWire {
    /// Encodes into a shared [`Payload`] — for fan-out sites that send the
    /// same bytes to many peers: one allocation, refcounted clones.
    pub fn to_payload(&self) -> Payload {
        self.to_bytes().into()
    }
}

/// The two-phase echo of Fig. 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DisperseMsg {
    /// Round 1: "forward `blob` to `dst`" (from the claimed `origin`).
    Forward {
        /// Claimed originator.
        origin: u32,
        /// Final destination.
        dst: u32,
        /// Opaque cargo, shared (never re-copied) across fan-out, relay
        /// duty, dedup, and inspection.
        blob: InternedBlob,
    },
    /// Round 2: "forwarding `blob` from `origin`".
    Forwarding {
        /// Claimed originator.
        origin: u32,
        /// Opaque cargo (shared handle, as in `Forward`).
        blob: InternedBlob,
    },
}

/// Cargo carried by DISPERSE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Blob {
    /// An AUTH-SEND message.
    Certified(CertifiedMsg),
    /// PARTIAL-AGREEMENT step 3: a relayed certified message serving as
    /// (majority or equivocation) evidence about `subject`'s announced key.
    Evidence {
        /// The PA subject the evidence concerns.
        subject: u32,
        /// The original certified message (addressed to the relayer).
        msg: CertifiedMsg,
    },
    /// PARTIAL-AGREEMENT step 3, bundled: *all* of a node's evidence relays
    /// for one PA instance in a single DISPERSE send — one bundle per
    /// destination instead of |MAJ| separate `Evidence` DISPERSEs, cutting a
    /// node's refresh envelopes from Θ(n³) to Θ(n²). Receivers unpack the
    /// bundle and feed each message through the exact `Evidence` checks, so
    /// `PaInstance::on_evidence` (Lemma 16, cheater exposure) sees the same
    /// (certifier, value) pairs either way.
    EvidenceBundle {
        /// The PA subject the evidence concerns.
        subject: u32,
        /// The majority members' certified step-1 messages.
        msgs: Vec<CertifiedMsg>,
    },
    /// A session-MAC authenticated message (the §1.3 shared-key mode).
    MacCertified(MacMsg),
    /// URfr Part I step 4: a certificate delivered to its subject. The
    /// certificate is a PDS signature verifiable straight from ROM, so the
    /// carrier needs no authentication of its own.
    CertDeliver {
        /// The node the certificate is for.
        subject: u32,
        /// The time unit of the certificate.
        unit: u64,
        /// The certified verification key bytes.
        vk: Vec<u8>,
        /// The PDS signature over the key statement.
        cert: Signature,
    },
}

/// A message authenticated with a per-unit *session MAC* instead of a
/// signature — the paper's shared-key alternative (§1.3): nodes derive a
/// pairwise key from their certified per-unit keys (Diffie–Hellman in the
/// same group) and authenticate with HMAC. The certificate still rides
/// along so a receiver that has not yet cached the sender's key can verify
/// it once, then authenticate every later message with two hashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacMsg {
    /// The inner payload bytes (an encoded [`Inner`]).
    pub m: Vec<u8>,
    /// Claimed source node.
    pub i: u32,
    /// Destination node.
    pub j: u32,
    /// Time unit whose keys authenticate the message.
    pub u: u64,
    /// Physical round the message was authenticated at.
    pub w: u64,
    /// `HMAC-SHA256(session_key, ⟨m, i, j, u, w⟩)`.
    pub tag: [u8; 32],
    /// The sender's local verification key bytes.
    pub vk: Vec<u8>,
    /// The PDS certificate for `vk` in unit `u`.
    pub cert: Signature,
}

impl Encode for MacMsg {
    fn encode(&self, w: &mut Writer) {
        self.m.encode(w);
        w.put_u32(self.i);
        w.put_u32(self.j);
        w.put_u64(self.u);
        w.put_u64(self.w);
        self.tag.encode(w);
        self.vk.encode(w);
        self.cert.encode(w);
    }
}

impl Decode for MacMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(MacMsg {
            m: Vec::<u8>::decode(r)?,
            i: r.get_u32()?,
            j: r.get_u32()?,
            u: r.get_u64()?,
            w: r.get_u64()?,
            tag: <[u8; 32]>::decode(r)?,
            vk: Vec::<u8>::decode(r)?,
            cert: Signature::decode(r)?,
        })
    }
}

/// A message in the Fig. 3 format: `⟨m, i, j, u, w, σ, v, cert⟩`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifiedMsg {
    /// The inner payload bytes (`m`), an encoded [`Inner`].
    pub m: Vec<u8>,
    /// Claimed source node.
    pub i: u32,
    /// Destination node.
    pub j: u32,
    /// Time unit (`u`) whose local keys certify the message.
    pub u: u64,
    /// Physical communication round when the message was certified (`w`).
    pub w: u64,
    /// The sender's local signature over `⟨m, i, j, u, w⟩`.
    pub sig: Signature,
    /// The sender's local verification key bytes (`v`).
    pub vk: Vec<u8>,
    /// The PDS certificate for `v` in unit `u`.
    pub cert: Signature,
}

/// Payloads inside certified messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inner {
    /// PDS protocol traffic (encoded `AlsMsg`).
    Pds(Vec<u8>),
    /// Top-layer protocol (π) traffic — the authenticator of §5.
    App(Vec<u8>),
    /// PARTIAL-AGREEMENT step 1 input: "I received `value` as `subject`'s
    /// announced key".
    PaValue {
        /// Whose key is being agreed on.
        subject: u32,
        /// The value I received (announced verification key bytes).
        value: Vec<u8>,
    },
}

impl Encode for UlsWire {
    fn encode(&self, w: &mut Writer) {
        match self {
            UlsWire::KeyAnnounce { unit, vk } => {
                w.put_u8(1);
                w.put_u64(*unit);
                vk.encode(w);
            }
            UlsWire::Disperse(d) => {
                w.put_u8(2);
                d.encode(w);
            }
        }
    }
}

impl Decode for UlsWire {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            1 => Ok(UlsWire::KeyAnnounce {
                unit: r.get_u64()?,
                vk: Vec::<u8>::decode(r)?,
            }),
            2 => Ok(UlsWire::Disperse(DisperseMsg::decode(r)?)),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

impl Encode for DisperseMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            DisperseMsg::Forward { origin, dst, blob } => {
                w.put_u8(1);
                w.put_u32(*origin);
                w.put_u32(*dst);
                blob.encode(w);
            }
            DisperseMsg::Forwarding { origin, blob } => {
                w.put_u8(2);
                w.put_u32(*origin);
                blob.encode(w);
            }
        }
    }
}

impl Decode for DisperseMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            1 => Ok(DisperseMsg::Forward {
                origin: r.get_u32()?,
                dst: r.get_u32()?,
                blob: InternedBlob::decode(r)?,
            }),
            2 => Ok(DisperseMsg::Forwarding {
                origin: r.get_u32()?,
                blob: InternedBlob::decode(r)?,
            }),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

impl Encode for Blob {
    fn encode(&self, w: &mut Writer) {
        match self {
            Blob::Certified(msg) => {
                w.put_u8(1);
                msg.encode(w);
            }
            Blob::Evidence { subject, msg } => {
                w.put_u8(2);
                w.put_u32(*subject);
                msg.encode(w);
            }
            Blob::EvidenceBundle { subject, msgs } => {
                w.put_u8(5);
                w.put_u32(*subject);
                encode_seq(msgs, w);
            }
            Blob::MacCertified(msg) => {
                w.put_u8(4);
                msg.encode(w);
            }
            Blob::CertDeliver {
                subject,
                unit,
                vk,
                cert,
            } => {
                w.put_u8(3);
                w.put_u32(*subject);
                w.put_u64(*unit);
                vk.encode(w);
                cert.encode(w);
            }
        }
    }
}

impl Decode for Blob {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            1 => Ok(Blob::Certified(CertifiedMsg::decode(r)?)),
            2 => Ok(Blob::Evidence {
                subject: r.get_u32()?,
                msg: CertifiedMsg::decode(r)?,
            }),
            3 => Ok(Blob::CertDeliver {
                subject: r.get_u32()?,
                unit: r.get_u64()?,
                vk: Vec::<u8>::decode(r)?,
                cert: Signature::decode(r)?,
            }),
            4 => Ok(Blob::MacCertified(MacMsg::decode(r)?)),
            5 => Ok(Blob::EvidenceBundle {
                subject: r.get_u32()?,
                msgs: decode_seq(r)?,
            }),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

impl Blob {
    /// Encodes into an interned, content-addressed blob — the handle
    /// DISPERSE shares across every fan-out copy, relay, and dedup check.
    pub fn intern(&self) -> InternedBlob {
        InternedBlob::from(self.to_bytes())
    }
}

impl Encode for CertifiedMsg {
    fn encode(&self, w: &mut Writer) {
        self.m.encode(w);
        w.put_u32(self.i);
        w.put_u32(self.j);
        w.put_u64(self.u);
        w.put_u64(self.w);
        self.sig.encode(w);
        self.vk.encode(w);
        self.cert.encode(w);
    }
}

impl Decode for CertifiedMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CertifiedMsg {
            m: Vec::<u8>::decode(r)?,
            i: r.get_u32()?,
            j: r.get_u32()?,
            u: r.get_u64()?,
            w: r.get_u64()?,
            sig: Signature::decode(r)?,
            vk: Vec::<u8>::decode(r)?,
            cert: Signature::decode(r)?,
        })
    }
}

impl Encode for Inner {
    fn encode(&self, w: &mut Writer) {
        match self {
            Inner::Pds(b) => {
                w.put_u8(1);
                b.encode(w);
            }
            Inner::App(b) => {
                w.put_u8(2);
                b.encode(w);
            }
            Inner::PaValue { subject, value } => {
                w.put_u8(3);
                w.put_u32(*subject);
                value.encode(w);
            }
        }
    }
}

impl Decode for Inner {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            1 => Ok(Inner::Pds(Vec::<u8>::decode(r)?)),
            2 => Ok(Inner::App(Vec::<u8>::decode(r)?)),
            3 => Ok(Inner::PaValue {
                subject: r.get_u32()?,
                value: Vec::<u8>::decode(r)?,
            }),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proauth_primitives::bigint::BigUint;

    fn sig(n: u64) -> Signature {
        Signature {
            e: BigUint::from_u64(n),
            s: BigUint::from_u64(n + 1),
        }
    }

    fn certified() -> CertifiedMsg {
        CertifiedMsg {
            m: Inner::App(b"payload".to_vec()).to_bytes(),
            i: 1,
            j: 2,
            u: 3,
            w: 44,
            sig: sig(5),
            vk: vec![7, 8],
            cert: sig(9),
        }
    }

    #[test]
    fn uls_wire_roundtrip() {
        let msgs = vec![
            UlsWire::KeyAnnounce {
                unit: 2,
                vk: vec![1, 2, 3],
            },
            UlsWire::Disperse(DisperseMsg::Forward {
                origin: 1,
                dst: 2,
                blob: vec![9].into(),
            }),
            UlsWire::Disperse(DisperseMsg::Forwarding {
                origin: 1,
                blob: vec![9].into(),
            }),
        ];
        for m in msgs {
            assert_eq!(UlsWire::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }

    fn mac_msg() -> MacMsg {
        MacMsg {
            m: Inner::App(b"p".to_vec()).to_bytes(),
            i: 1,
            j: 2,
            u: 3,
            w: 44,
            tag: [9; 32],
            vk: vec![7, 8],
            cert: sig(9),
        }
    }

    #[test]
    fn blob_roundtrip() {
        let blobs = vec![
            Blob::Certified(certified()),
            Blob::MacCertified(mac_msg()),
            Blob::Evidence {
                subject: 4,
                msg: certified(),
            },
            Blob::EvidenceBundle {
                subject: 4,
                msgs: vec![certified(), certified()],
            },
            Blob::EvidenceBundle {
                subject: 7,
                msgs: vec![],
            },
            Blob::CertDeliver {
                subject: 4,
                unit: 2,
                vk: vec![1],
                cert: sig(3),
            },
        ];
        for b in blobs {
            assert_eq!(Blob::from_bytes(&b.to_bytes()).unwrap(), b);
        }
    }

    #[test]
    fn inner_roundtrip() {
        for inner in [
            Inner::Pds(vec![1, 2]),
            Inner::App(vec![]),
            Inner::PaValue {
                subject: 3,
                value: vec![4],
            },
        ] {
            assert_eq!(Inner::from_bytes(&inner.to_bytes()).unwrap(), inner);
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(UlsWire::from_bytes(&[99]).is_err());
        assert!(Blob::from_bytes(&[]).is_err());
        assert!(Inner::from_bytes(&[7, 7]).is_err());
        // A bundle claiming an absurd message count is rejected up front.
        assert!(Blob::from_bytes(&[5, 0, 0, 0, 4, 0xff, 0xff, 0xff, 0xff]).is_err());
    }

    #[test]
    fn intern_matches_to_bytes() {
        let b = Blob::Certified(certified());
        let interned = b.intern();
        assert_eq!(interned.as_bytes(), &b.to_bytes()[..]);
        assert_eq!(Blob::from_bytes(interned.as_bytes()).unwrap(), b);
    }
}
