//! Shared helpers for examples.
