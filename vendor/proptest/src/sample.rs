//! Index sampling (mirror of `proptest::sample::Index`).

/// A length-agnostic index: drawn once, projected onto any collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(usize);

impl Index {
    pub(crate) fn from_raw(raw: usize) -> Self {
        Index(raw)
    }

    /// Projects onto `0..len`; panics if `len == 0` (as upstream does).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        self.0 % len
    }

    /// Returns the selected element of a non-empty slice.
    pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }
}
