//! Robustness fuzzing of the ALS state machine: arbitrary adversarial bytes
//! fed straight into the logical-round inbox must never panic, never mint
//! signatures, and never destroy the node's own key material.

use proauth_crypto::group::{Group, GroupId};
use proauth_pds::api::{AlPds, PdsPhase, PdsTime};
use proauth_pds::als::{AlsConfig, AlsPds};
use proauth_sim::message::NodeId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 5;
const T: usize = 2;

/// Builds one node with a fully completed (single-party-simulated) setup:
/// node 1's machine, fed the setup traffic of all five machines.
fn setup_network(seed: u64) -> Vec<AlsPds> {
    let group = Group::new(GroupId::Toy64);
    let mut nodes: Vec<AlsPds> = (1..=N as u32)
        .map(|i| AlsPds::new(AlsConfig::new(group.clone(), N, T), NodeId(i)))
        .collect();
    let mut in_flight: Vec<(NodeId, NodeId, Vec<u8>)> = Vec::new();
    for round in 0..2u64 {
        let delivered = std::mem::take(&mut in_flight);
        for (idx, node) in nodes.iter_mut().enumerate() {
            let me = NodeId::from_idx(idx);
            let inbox: Vec<(NodeId, Vec<u8>)> = delivered
                .iter()
                .filter(|(_, to, _)| *to == me)
                .map(|(from, _, payload)| (*from, payload.clone()))
                .collect();
            let mut rng = StdRng::seed_from_u64(seed ^ (round << 8) ^ idx as u64);
            for env in node.on_setup_round(round, &inbox, &mut rng) {
                in_flight.push((me, env.to, env.payload.to_vec()));
            }
        }
    }
    nodes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn garbage_inbox_never_panics_or_corrupts(
        garbage in proptest::collection::vec(
            (1u32..=N as u32, proptest::collection::vec(any::<u8>(), 0..120)),
            0..20,
        ),
        seed in any::<u64>(),
    ) {
        let mut nodes = setup_network(seed);
        let node = &mut nodes[0];
        let key_before = node.key_share().cloned();
        prop_assert!(key_before.is_some());
        let inbox: Vec<(NodeId, Vec<u8>)> = garbage
            .into_iter()
            .map(|(from, bytes)| (NodeId(from), bytes))
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        // Feed garbage across phases; must never panic.
        for phase in [
            PdsPhase::Normal,
            PdsPhase::Refresh { step: 0 },
            PdsPhase::Refresh { step: 3 },
            PdsPhase::Refresh { step: 6 },
        ] {
            let _ = node.on_logical_round(
                PdsTime { unit: 1, phase },
                &inbox,
                &mut rng,
            );
        }
        // No signatures minted out of garbage.
        prop_assert!(node.take_completed().is_empty());
    }

    #[test]
    fn truncated_valid_traffic_never_panics(seed in any::<u64>(), cut in 1usize..20) {
        // Run a legitimate signing round, truncate every message, replay.
        let mut nodes = setup_network(seed);
        nodes[0].request_sign(b"fuzz-doc".to_vec(), 0);
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let outs = nodes[0].on_logical_round(
            PdsTime { unit: 0, phase: PdsPhase::Normal },
            &[],
            &mut rng,
        );
        let truncated: Vec<(NodeId, Vec<u8>)> = outs
            .iter()
            .map(|env| {
                let len = env.payload.len().saturating_sub(cut);
                (NodeId(1), env.payload[..len].to_vec())
            })
            .collect();
        // Feed the mangled copies into another node.
        let _ = nodes[1].on_logical_round(
            PdsTime { unit: 0, phase: PdsPhase::Normal },
            &truncated,
            &mut rng,
        );
        prop_assert!(nodes[1].take_completed().is_empty());
    }
}
