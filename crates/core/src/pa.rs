//! PARTIAL-AGREEMENT (Fig. 5) bookkeeping.
//!
//! One instance per (subject, refresh phase): every node that received the
//! subject's announced key runs the protocol so that *some single value* `y`
//! exists with every honest participant ending at `y` or `φ` (Lemma 16).
//!
//! The instance operates on inputs the transport layer has already
//! authenticated:
//!
//! * step 1 values arrive through AUTH-SEND (strict VER-CERT);
//! * step 3 relays arrive as [`crate::wire::Blob::Evidence`] and are
//!   verified with the relaxed destination check before being fed here.
//!
//! Cheater marking: a node observed (directly or via evidence) certifying
//! two different input values is a *cheater* and drops out of the majority
//! set; the final output stands only if at least `⌈(n+1)/2⌉` non-cheaters
//! certified the same value.

use proauth_telemetry as telemetry;
use std::collections::{BTreeMap, BTreeSet};

/// One PARTIAL-AGREEMENT instance at one node.
#[derive(Debug, Clone)]
pub struct PaInstance {
    n: usize,
    /// Values accepted in step 1, per sender (each kept as a set to detect
    /// equivocation).
    accepted: BTreeMap<u32, BTreeSet<Vec<u8>>>,
    /// Values seen via step-3 evidence, per original certifier.
    relayed: BTreeMap<u32, BTreeSet<Vec<u8>>>,
    /// The majority set fixed in step 2.
    maj: Option<(Vec<u8>, BTreeSet<u32>)>,
}

impl PaInstance {
    /// Creates an instance for an `n`-node network.
    pub fn new(n: usize) -> Self {
        PaInstance {
            n,
            accepted: BTreeMap::new(),
            relayed: BTreeMap::new(),
            maj: None,
        }
    }

    /// The majority quorum size `⌈(n+1)/2⌉`.
    fn quorum(&self) -> usize {
        (self.n + 1).div_ceil(2)
    }

    /// Feeds a step-1 value accepted from `sender` via AUTH-SEND.
    pub fn on_accepted_value(&mut self, sender: u32, value: Vec<u8>) {
        telemetry::count("pa/accepted_values", 1);
        self.accepted.entry(sender).or_default().insert(value);
    }

    /// Step 2: fixes the majority set. Returns the senders whose (unique)
    /// certified value forms a `⌈(n+1)/2⌉` majority, if one exists.
    ///
    /// Call exactly once, after all step-1 values are in.
    pub fn fix_majority(&mut self) -> Option<(Vec<u8>, Vec<u32>)> {
        // Cheaters: senders with more than one accepted value.
        let mut counts: BTreeMap<&[u8], BTreeSet<u32>> = BTreeMap::new();
        for (&sender, values) in &self.accepted {
            if values.len() != 1 {
                continue; // marked "cheater"
            }
            let v = values.iter().next().expect("single value");
            counts.entry(v.as_slice()).or_default().insert(sender);
        }
        let quorum = self.quorum();
        let best = counts
            .into_iter()
            .find(|(_, members)| members.len() >= quorum);
        match best {
            Some((value, members)) => {
                let value = value.to_vec();
                self.maj = Some((value.clone(), members.clone()));
                Some((value, members.into_iter().collect()))
            }
            None => None,
        }
    }

    /// Feeds a verified step-3 evidence message: `certifier` certified
    /// `value` as its input.
    pub fn on_evidence(&mut self, certifier: u32, value: Vec<u8>) {
        telemetry::count("pa/evidence", 1);
        self.relayed.entry(certifier).or_default().insert(value);
    }

    /// Step 5: the final decision — `Some(y)` or `None` (the paper's `φ`).
    pub fn decide(&self) -> Option<Vec<u8>> {
        let (value, members) = self.maj.as_ref()?;
        // MAJ′: members not exposed as cheaters by steps 2+4 combined.
        let quorum = self.quorum();
        let survivors = members
            .iter()
            .filter(|&&m| {
                let mut all: BTreeSet<&Vec<u8>> = BTreeSet::new();
                if let Some(vs) = self.accepted.get(&m) {
                    all.extend(vs.iter());
                }
                if let Some(vs) = self.relayed.get(&m) {
                    all.extend(vs.iter());
                }
                all.len() == 1
            })
            .count();
        if survivors >= quorum {
            Some(value.clone())
        } else {
            None
        }
    }

    /// The step-1 accepted values (used by the driver to build evidence
    /// relays for the majority members).
    pub fn majority_members(&self) -> Vec<u32> {
        self.maj
            .as_ref()
            .map(|(_, m)| m.iter().copied().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives n instances with the given per-node inputs and full exchange,
    /// returning each node's decision. `equivocators` send value `alt` to
    /// the second half of the nodes.
    fn run_pa(
        n: usize,
        inputs: Vec<Option<&[u8]>>,
        equivocators: &[u32],
        alt: &[u8],
    ) -> Vec<Option<Vec<u8>>> {
        let mut instances: Vec<PaInstance> = (0..n).map(|_| PaInstance::new(n)).collect();
        // Step 1: everyone with an input "sends" it to everyone.
        for (idx, input) in inputs.iter().enumerate() {
            let sender = idx as u32 + 1;
            let Some(input) = input else { continue };
            for (jdx, inst) in instances.iter_mut().enumerate() {
                let recv = jdx as u32 + 1;
                if recv == sender {
                    inst.on_accepted_value(sender, input.to_vec());
                    continue;
                }
                let value = if equivocators.contains(&sender) && jdx >= n / 2 {
                    alt.to_vec()
                } else {
                    input.to_vec()
                };
                inst.on_accepted_value(sender, value);
            }
        }
        // Step 2 + 3: fix majorities, relay all accepted values as evidence.
        let mut evidence: Vec<(u32, Vec<u8>)> = Vec::new();
        for inst in instances.iter_mut() {
            inst.fix_majority();
            for (&sender, values) in &inst.accepted {
                for v in values {
                    evidence.push((sender, v.clone()));
                }
            }
        }
        // Step 4: everyone sees all evidence.
        for inst in instances.iter_mut() {
            for (sender, v) in &evidence {
                inst.on_evidence(*sender, v.clone());
            }
        }
        instances.iter().map(PaInstance::decide).collect()
    }

    #[test]
    fn unanimous_inputs_decide_that_value() {
        let out = run_pa(5, vec![Some(b"k"); 5], &[], b"x");
        assert!(out.iter().all(|d| d.as_deref() == Some(b"k".as_slice())));
    }

    #[test]
    fn lemma_16_property_2_holds_under_equivocation() {
        // Node 2 equivocates; outputs must all be in {y, φ} for a single y.
        let out = run_pa(5, vec![Some(b"k"); 5], &[2], b"x");
        let decided: BTreeSet<Vec<u8>> = out.iter().flatten().cloned().collect();
        assert!(decided.len() <= 1, "at most one decided value: {decided:?}");
    }

    #[test]
    fn no_majority_decides_phi() {
        // Split inputs 2/2 in a 5-node network with one abstainer.
        let out = run_pa(
            5,
            vec![Some(b"a"), Some(b"a"), Some(b"b"), Some(b"b"), None],
            &[],
            b"x",
        );
        assert!(out.iter().all(Option::is_none));
    }

    #[test]
    fn bare_majority_suffices() {
        // 3 of 5 share a value; quorum is 3.
        let out = run_pa(
            5,
            vec![Some(b"a"), Some(b"a"), Some(b"a"), Some(b"b"), None],
            &[],
            b"x",
        );
        assert!(out.iter().all(|d| d.as_deref() == Some(b"a".as_slice())));
    }

    #[test]
    fn exposed_cheater_shrinks_majority_to_phi() {
        // 3 of 5 agree but one of them equivocates: survivors = 2 < 3 → φ.
        let out = run_pa(
            5,
            vec![Some(b"a"), Some(b"a"), Some(b"a"), Some(b"b"), None],
            &[3],
            b"x",
        );
        // The equivocator is exposed at every node that got evidence.
        assert!(out.iter().all(Option::is_none), "{out:?}");
    }

    #[test]
    fn abstaining_nodes_see_majority_of_others() {
        // The instance at a node with no own input still decides from the
        // other nodes' step-1 sends.
        let out = run_pa(5, vec![Some(b"k"), Some(b"k"), Some(b"k"), None, None], &[], b"x");
        assert_eq!(out[3].as_deref(), Some(b"k".as_slice()));
        assert_eq!(out[4].as_deref(), Some(b"k".as_slice()));
    }

    #[test]
    fn quorum_is_ceil_half_plus() {
        for (n, q) in [(3usize, 2usize), (4, 3), (5, 3), (6, 4), (7, 4)] {
            let inst = PaInstance::new(n);
            assert_eq!(inst.quorum(), q, "n={n}");
        }
    }
}
