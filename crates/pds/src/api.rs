//! The PDS interface (§3.2 of the paper): `⟨Gen, Sign, Ver, Rfr⟩` as a
//! transport-agnostic state machine.
//!
//! The paper's Theorem 14 transformation is generic over "any `t`-secure PDS
//! scheme in the AL model". We capture that genericity with the [`AlPds`]
//! trait: a PDS implementation consumes and produces *logical-round* message
//! batches, and the surrounding driver decides how those messages travel —
//! directly over authenticated links (the AL model, `proauth-pds::als_node`),
//! or wrapped in `AUTH-SEND` over unauthenticated links (the ULS construction
//! of §4.2, in `proauth-core`). One logical round corresponds to two physical
//! rounds under `AUTH-SEND` (a `DISPERSE` echo costs one extra round).

use proauth_crypto::schnorr::Signature;
use proauth_primitives::wire::InternedBlob;
use proauth_sim::message::NodeId;
use rand::rngs::StdRng;

/// Where a logical round sits relative to the PDS refresh schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PdsPhase {
    /// Inside the share-refresh protocol (`Rfr`), at the given step.
    Refresh {
        /// 0-based step within the refresh protocol.
        step: u64,
    },
    /// Ordinary operation (signing allowed).
    Normal,
}

/// Logical time handed to the PDS state machine by its driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PdsTime {
    /// Current time unit.
    pub unit: u64,
    /// Phase within the unit.
    pub phase: PdsPhase,
}

/// A message between PDS participants (payloads are wire-encoded
/// [`crate::msg::AlsMsg`] for the bundled implementation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdsEnvelope {
    /// Destination (for the driver to route).
    pub to: NodeId,
    /// Opaque payload. Interned so a broadcast shares one encoding across
    /// all `n − 1` envelopes (drivers clone handles, not bytes).
    pub payload: InternedBlob,
}

/// A completed signature the scheme hands back to its driver.
#[derive(Debug, Clone)]
pub struct SignatureRecord {
    /// The signed message (application bytes, *excluding* the `(m, u)`
    /// time-unit binding which the scheme adds internally).
    pub msg: Vec<u8>,
    /// Time unit in which it was signed.
    pub unit: u64,
    /// The threshold signature, verifiable with the scheme's public key.
    pub sig: Signature,
}

/// A proactive distributed signature scheme in the AL model, as a state
/// machine over logical rounds.
///
/// Drivers must uphold the synchrony contract: messages returned from
/// [`AlPds::on_logical_round`] at logical round `w` are passed to the
/// recipients' `on_logical_round` at `w+1` (authenticated and reliable
/// delivery is the *driver's* responsibility — that is exactly the gap the
/// paper's ULS transformation fills).
pub trait AlPds: 'static {
    /// Number of adversary-free setup logical rounds needed by key
    /// generation (`Gen`).
    fn setup_rounds(&self) -> u64;

    /// Executes one setup round; returns messages to deliver next setup round.
    fn on_setup_round(
        &mut self,
        round: u64,
        inbox: &[(NodeId, Vec<u8>)],
        rng: &mut StdRng,
    ) -> Vec<PdsEnvelope>;

    /// The joint verification key, available after setup (`Gen` output).
    fn public_key(&self) -> Option<Vec<u8>>;

    /// Requests a signature on `(msg, unit)` (the "sign m" invocation of
    /// §3.2). Takes effect at the next logical round.
    fn request_sign(&mut self, msg: Vec<u8>, unit: u64);

    /// Executes one logical round; returns outgoing messages.
    fn on_logical_round(
        &mut self,
        time: PdsTime,
        inbox: &[(NodeId, Vec<u8>)],
        rng: &mut StdRng,
    ) -> Vec<PdsEnvelope>;

    /// Drains signatures completed since the last call.
    fn take_completed(&mut self) -> Vec<SignatureRecord>;

    /// Whether the most recent refresh failed for this node (drives the
    /// "alert" output of §4.2.3).
    fn refresh_failed(&self) -> bool;

    /// Whether this node currently holds usable key material.
    fn has_share(&self) -> bool;

    /// Marks the node's share as lost (break-in recovery entry point; the
    /// next refresh will run share recovery).
    fn mark_share_lost(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pds_time_equality() {
        let a = PdsTime {
            unit: 1,
            phase: PdsPhase::Refresh { step: 2 },
        };
        assert_eq!(
            a,
            PdsTime {
                unit: 1,
                phase: PdsPhase::Refresh { step: 2 }
            }
        );
        assert_ne!(
            a,
            PdsTime {
                unit: 1,
                phase: PdsPhase::Normal
            }
        );
    }
}
