//! Property tests for the metrics-delta wire codec (the observability
//! plane's per-round `Metrics` frames): arbitrary deltas round-trip through
//! encode/decode, truncated encodings are rejected (never panic, never
//! misdecode), arbitrary garbage never panics, and applying a recomputed
//! delta chain reconstructs the source registry exactly.

use proauth_primitives::wire::{Decode, Encode, Reader, Writer};
use proauth_telemetry::{intern_name, Histogram, MetricsDelta, Registry};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A short registry-ish name: keeps the interner small across cases.
fn arb_name() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-d]{1,3}/[a-d]{1,3}",
        Just("uls/accepted".to_owned()),
        Just("net/late_frames".to_owned()),
    ]
}

fn arb_hist() -> impl Strategy<Value = Histogram> {
    (
        proptest::collection::vec(0u64..1000, 14),
        any::<u32>(),
    )
        .prop_map(|(counts, sum)| {
            let mut h = Histogram::default();
            for (slot, c) in h.counts.iter_mut().zip(&counts) {
                *slot = *c;
            }
            h.total = counts.iter().sum();
            h.sum_ns = sum as u64;
            h
        })
}

/// The vendored proptest has no `collection::btree_map`; collect pairs.
fn arb_map<V: std::fmt::Debug>(
    values: impl Strategy<Value = V>,
    max: usize,
) -> impl Strategy<Value = BTreeMap<String, V>> {
    proptest::collection::vec((arb_name(), values), 0..max)
        .prop_map(|pairs| pairs.into_iter().collect())
}

fn arb_delta() -> impl Strategy<Value = MetricsDelta> {
    (
        arb_map(1u64..u64::MAX / 2, 6),
        arb_map(any::<u64>(), 4),
        arb_map(arb_hist(), 3),
        arb_map(arb_hist(), 3),
    )
        .prop_map(|(counters, maxes, hists, value_hists)| MetricsDelta {
            counters,
            maxes,
            hists,
            value_hists,
        })
}

fn encode(delta: &MetricsDelta) -> Vec<u8> {
    let mut w = Writer::new();
    delta.encode(&mut w);
    w.into_bytes()
}

proptest! {
    /// Encode → decode is the identity for any delta.
    #[test]
    fn roundtrip(delta in arb_delta()) {
        let bytes = encode(&delta);
        let mut r = Reader::new(&bytes);
        let back = MetricsDelta::decode(&mut r).expect("well-formed encoding");
        prop_assert_eq!(back, delta);
        prop_assert_eq!(r.remaining(), 0);
    }

    /// Every strict prefix of a non-empty encoding fails to decode cleanly:
    /// either an error, or (for prefixes that happen to parse) leftover
    /// detection at a higher layer — it must never panic either way.
    #[test]
    fn truncation_never_panics(delta in arb_delta(), cut_seed in any::<usize>()) {
        let bytes = encode(&delta);
        prop_assume!(!bytes.is_empty());
        let cut = cut_seed % bytes.len();
        let mut r = Reader::new(&bytes[..cut]);
        // A strict prefix can never successfully decode to the original.
        if let Ok(back) = MetricsDelta::decode(&mut r) {
            prop_assert_ne!(back, delta);
        }
    }

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut r = Reader::new(&bytes);
        let _ = MetricsDelta::decode(&mut r);
    }

    /// Folding a registry's per-step deltas into a second registry
    /// reconstructs the first: the exact invariant the collector's merge
    /// relies on.
    #[test]
    fn delta_chain_reconstructs_registry(
        steps in proptest::collection::vec(arb_map(1u64..1000, 5), 1..6),
    ) {
        let source = Registry::default();
        let mirror = Registry::default();
        let mut last = source.snapshot();
        for step in &steps {
            for (name, v) in step {
                source.add(intern_name(name), *v);
            }
            let snap = source.snapshot();
            let delta = snap.delta_since(&last);
            delta.apply_to(&mirror);
            last = snap;
        }
        let want: BTreeMap<&str, u64> = source
            .snapshot()
            .counters
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect();
        let got: BTreeMap<&str, u64> = mirror
            .snapshot()
            .counters
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect();
        prop_assert_eq!(got, want);
    }
}
