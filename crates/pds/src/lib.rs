//! # proauth-pds
//!
//! Proactive distributed signatures (§3–§4 of Canetti–Halevi–Herzberg,
//! PODC '97):
//!
//! * [`api`] — the PDS interface `⟨Gen, Sign, Ver, Rfr⟩` as a
//!   transport-agnostic state machine ([`api::AlPds`]);
//! * [`als`] — the bundled AL-model instantiation (threshold Schnorr +
//!   joint-Feldman DKG + Herzberg-style proactive refresh and recovery),
//!   fulfilling Theorem 13;
//! * [`als_node`] — adapter running an ALS instance in the AL simulator;
//! * [`sign_session`] / [`refresh_session`] — the protocol state machines;
//! * [`msg`] — wire formats;
//! * [`statement`] — the canonical certificate statements of §1.3;
//! * [`ideal`] — the ideal signature process of §3.1 as a conformance
//!   oracle for Definition 12.
//!
//! The UL-model transformation of these schemes (Theorem 14) lives in
//! `proauth-core`.

pub mod api;
pub mod als;
pub mod als_node;
pub mod ideal;
pub mod msg;
pub mod refresh_session;
pub mod sign_session;
pub mod statement;

pub use api::{AlPds, PdsEnvelope, PdsPhase, PdsTime, SignatureRecord};
pub use als::{AlsConfig, AlsPds};
pub use als_node::AlsProcess;
pub use ideal::{IdealChecker, Violation};
