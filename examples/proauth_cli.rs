//! `proauth` — scenario runner CLI.
//!
//! Runs a configurable ULS network against a chosen adversary and prints a
//! full report: per-node traffic, alerts, impersonation analysis, ideal-model
//! conformance, and (s,t)-limit accounting.
//!
//! ```text
//! cargo run -p proauth-examples --bin proauth -- [options]
//! cargo run -p proauth-examples --bin proauth -- chaos [options]
//! cargo run -p proauth-examples --bin proauth -- service [options]
//! cargo run -p proauth-examples --bin proauth -- serve [options]
//! cargo run -p proauth-examples --bin proauth -- proxy [options]
//! cargo run -p proauth-examples --bin proauth -- client [options]
//! cargo run -p proauth-examples --bin proauth -- daemon [options]
//!
//! Daemon mode runs the protocol over real sockets, one OS process per node:
//!
//!   serve   one node process: --node <id> --n <int> --addr <plan> plus the
//!           scenario flags below; --via-proxy routes through the chaos
//!           proxy, --report streams events to the collector,
//!           --round-ms/--min-round-ms tune wall-clock round pacing
//!   proxy   the adversarial router: --n --addr plus --delay <pct>
//!           --delay-max <rounds> --dup <pct> --reorder <pct>
//!           --reset <pct> --partition <start:end:split> --chaos-seed <int>
//!   client  the collector: --n --addr; prints the goodput report once all
//!           nodes delivered their final reports
//!   daemon  orchestrator: spawns n `serve` processes (plus a `proxy` when
//!           any chaos flag is set), runs the collector inline, prints the
//!           goodput report; --check verifies the outcome against the
//!           in-process engine (bit-identical outputs AND flight-recorder
//!           trace without chaos; certified keys + zero forgeries +
//!           liveness under chaos)
//!   top     scrape a running daemon's live status socket: --addr plus
//!           --view metrics|json|top (default top), --once for a single
//!           snapshot, --interval <ms> to refresh (default 1000)
//!
//! Daemon observability (on by default): every node streams per-round
//! metrics deltas, a health beacon, and typed alarms to the collector,
//! which serves them at the status endpoint (`status.sock` / base-2 port).
//! --adaptive enables bounded AIMD round pacing (halve on congestion, creep
//! back when clean; --adapt-floor-ms sets the floor); --trace <path> saves
//! the collector-assembled cluster trace.
//!
//! Self-healing (daemon + serve):
//!   --state-dir <dir>    durable per-node state root; each node persists its
//!                        ROM image once after setup and a round watermark
//!                        every round, and a restarted process rejoins the
//!                        running cluster from there instead of re-running
//!                        setup (serve accepts the flag directly too)
//!   --kill <plan>        process-level chaos: `auto` SIGKILLs every node
//!                        once at a seed-derived round, or give an explicit
//!                        `node:round,node:round` schedule; needs --state-dir
//!   --truncate-state     corrupt each victim's watermark file before its
//!                        respawn (exercises the full catch-up + share
//!                        recovery path)
//!   --max-restarts <k>   restart budget per node per window (default 3)
//!   --restart-window <s> budget window in seconds (default 60)
//!   --backoff-ms <ms>    respawn backoff base; doubles per attempt, capped
//!                        at 10s, plus deterministic jitter (default 100)
//!   --hosts <manifest>   multi-host deployment: manifest lines are
//!                        `<label> <lo>-<hi>`; the daemon prints the serve
//!                        command for every remote range and spawns only the
//!                        ranges whose label matches --local <label>
//!
//! Prefer unix socket plans (the default) for kill/heal runs: a respawned
//! node rebinds its socket path immediately, while TCP listeners can land in
//! TIME_WAIT on some systems.
//!
//!   --addr <plan>        unix:DIR (default) or tcp:HOST:PORT — node i
//!                        listens at DIR/node-i.sock / PORT+i
//!
//! The `chaos` subcommand runs the degradation sweep instead of a single
//! scenario: the standard intensity ramp (calm / sub-budget / over-budget)
//! across the (s,t) boundary, one full ULS run per point. Exit code 0 means
//! the boundary was demonstrated (sub-budget guarantees held, over-budget
//! degraded loudly), 1 means it was not. `chaos` takes --n --t --units
//! --normal --seed.
//!
//! The `service` subcommand runs the ALS layer as a signing service: an
//! open-loop client workload (Poisson-like arrivals, 3:1 sign:verify) drives
//! concurrent sign sessions, and the run reports completion, online/sustained
//! signatures per second, and latency quantiles from telemetry. `service`
//! takes --n --t --units --seed --group, plus:
//!   --rate <int>         mean offered ops per round, in milli-ops
//!                        (default 2000 = 2 ops/round)
//!   --window <int>       batch-verify window; 1 disables amortization
//!                        (default 8)
//!   --mix <spec>         op mix, e.g. sign=8,verify=1,refresh=0.01
//!                        (default sign=3,verify=1)
//!   --preprocess         enable nonce preprocessing + Lagrange precompute
//!
//! Options:
//!   --n <int>            nodes (default 5)
//!   --t <int>            threshold (default (n-1)/2)
//!   --units <int>        time units to simulate (default 3)
//!   --normal <int>       normal-operation rounds per unit, even (default 12)
//!   --seed <int>         master seed (default 0)
//!   --group <id>         toy64 | s256 | s512 | s1024 (default toy64)
//!   --auth <mode>        sign | mac (default sign)
//!   --adversary <name>   none | drop:<pct> | replay | isolate:<node> |
//!                        wipe:<node> | hijack:<node> (default none)
//!   --clusters           run the §6 two-level hierarchy (√n clusters, each
//!                        with its own PDS, top-level PDS over
//!                        representatives) instead of the flat scheme;
//!                        supports adversary none | drop:<pct> | replay |
//!                        isolate:<node>
//!   --trace <path>       write a JSONL flight-recorder trace to <path>
//!                        (also enables the metrics report; PROAUTH_TRACE=path
//!                        works too)
//!   --parallel           run nodes on worker threads
//!   --verbose            print every output event
//! ```

use proauth_adversary::{run_sweep, Hijacker, LimitObserver, LinkCutter, Replayer, SweepConfig};
use proauth_core::authenticator::HeartbeatApp;
use proauth_core::awareness;
use proauth_core::uls::{uls_schedule, AuthMode, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_sim::adversary::{
    BreakPlan, FaithfulUl, NetView, UlAdversary,
};
use proauth_sim::clock::TimeView;
use proauth_sim::message::{Envelope, NodeId, OutputEvent};
use proauth_sim::runner::{run_ul, SimConfig, SimResult};
use std::collections::HashMap;
use std::process::exit;

struct Wiper {
    target: NodeId,
    break_at: u64,
    leave_at: u64,
}

impl UlAdversary for Wiper {
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        if view.time.round == self.break_at {
            BreakPlan::break_into([self.target])
        } else if view.time.round == self.leave_at {
            BreakPlan::leave([self.target])
        } else {
            BreakPlan::none()
        }
    }
    fn corrupt(&mut self, _n: NodeId, state: &mut dyn std::any::Any, _t: &TimeView) {
        if let Some(node) = state.downcast_mut::<UlsNode<HeartbeatApp>>() {
            node.corrupt_wipe();
            proauth_sim::telemetry::count("adversary/wipes", 1);
        }
    }
    fn deliver(&mut self, sent: &[Envelope], _v: &NetView<'_>) -> Vec<Envelope> {
        sent.to_vec()
    }
}

fn usage() -> ! {
    eprintln!("see the module docs at the top of examples/proauth_cli.rs for usage");
    exit(2)
}

fn parse_args(args: impl IntoIterator<Item = String>) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let Some(key) = arg.strip_prefix("--") else {
            eprintln!("unexpected argument: {arg}");
            usage()
        };
        match key {
            "parallel" | "verbose" | "preprocess" | "clusters" | "via-proxy" | "report"
            | "check" | "closed-loop" | "telemetry" | "stream-trace" | "adaptive" | "status"
            | "once" | "truncate-state" => {
                out.insert(key.to_owned(), "true".to_owned());
            }
            "n" | "t" | "units" | "normal" | "seed" | "group" | "auth" | "adversary"
            | "trace" | "rate" | "window" | "mix" | "node" | "addr" | "round-ms"
            | "min-round-ms" | "connect-timeout" | "idle-timeout" | "chaos-seed" | "delay"
            | "delay-max" | "dup" | "reorder" | "partition" | "windows" | "adapt-floor-ms"
            | "interval" | "view" | "state-dir" | "kill" | "max-restarts" | "restart-window"
            | "backoff-ms" | "reset" | "hosts" | "local" => {
                let Some(value) = args.next() else {
                    eprintln!("--{key} needs a value");
                    usage()
                };
                out.insert(key.to_owned(), value);
            }
            _ => {
                eprintln!("unknown option --{key}");
                usage()
            }
        }
    }
    out
}

fn get<T: std::str::FromStr>(args: &HashMap<String, String>, key: &str, default: T) -> T {
    match args.get(key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad value for --{key}: {v}");
            usage()
        }),
    }
}

/// The `chaos` subcommand: run the standard degradation ramp and report
/// whether the (s,t) boundary showed up where the paper says it should.
fn chaos_main(args: &HashMap<String, String>) -> ! {
    let n: usize = get(args, "n", 5);
    let t: usize = get(args, "t", (n - 1) / 2);
    let units: u64 = get(args, "units", 4);
    let normal: u64 = get(args, "normal", 8);
    let seed: u64 = get(args, "seed", 0);
    if n < 2 * t + 1 {
        eprintln!("need n >= 2t+1 (got n={n}, t={t})");
        exit(2);
    }
    if !normal.is_multiple_of(2) {
        eprintln!("--normal must be even");
        exit(2);
    }
    println!("proauth chaos sweep: n={n} t={t} units={units} normal={normal} seed={seed}");
    println!("impairment budget: t={t} nodes per unit (Definition 7)\n");

    let cfg = SweepConfig::boundary_ramp(n, t, units, normal, seed);
    let points = run_sweep(&cfg);
    let mut demonstrated = true;
    for p in &points {
        println!("{p}");
        // Sub-budget points must uphold every guarantee; over-budget points
        // must degrade *loudly* — a silent pass past the boundary means the
        // accounting is broken.
        if p.intended_sub_budget != p.healthy() || p.intended_sub_budget == p.alarm() {
            demonstrated = false;
        }
    }
    println!();
    if demonstrated {
        println!(
            "boundary demonstrated: sub-budget guarantees held, over-budget degraded with alarms"
        );
        exit(0)
    }
    println!("boundary NOT demonstrated (see points above)");
    exit(1)
}

/// The `service` subcommand: drive the ALS layer with the open-loop client
/// workload and report signing-as-a-service throughput and latency.
/// `service --closed-loop`: sweep the outstanding-request window and print
/// the latency-vs-offered-load curve. Open-loop runs show overload as
/// unbounded queueing; the closed loop instead throttles the client to the
/// service's own completion rate, so the sweep traces the classic curve —
/// throughput climbs with the window until the service saturates (the
/// *knee*), after which extra outstanding work only buys latency.
fn service_closed_loop_main(args: &HashMap<String, String>) -> ! {
    use proauth_pds::als::{AlsConfig, AlsPds};
    use proauth_pds::als_node::AlsProcess;
    use proauth_sim::adversary::PassiveAl;
    use proauth_sim::clock::Schedule;
    use proauth_sim::runner::run_al_with_inputs;
    use proauth_sim::workload::ClosedLoopWorkload;
    use std::collections::BTreeSet;

    let n: usize = get(args, "n", 5);
    let t: usize = get(args, "t", (n - 1) / 2);
    let units: u64 = get(args, "units", 2);
    let seed: u64 = get(args, "seed", 0);
    let verify_window: usize = get(args, "window", 8);
    let preprocess = args.contains_key("preprocess");
    if n < 2 * t + 1 {
        eprintln!("need n >= 2t+1 (got n={n}, t={t})");
        exit(2);
    }
    let group_id = match args.get("group").map(String::as_str) {
        None | Some("toy64") => GroupId::Toy64,
        Some("s256") => GroupId::S256,
        Some("s512") => GroupId::S512,
        Some("s1024") => GroupId::S1024,
        Some(other) => {
            eprintln!("unknown group {other}");
            usage()
        }
    };
    let windows: Vec<usize> = match args.get("windows") {
        None => vec![1, 2, 4, 8, 16, 32],
        Some(spec) => {
            let parsed: Result<Vec<usize>, _> =
                spec.split(',').map(|w| w.trim().parse()).collect();
            match parsed {
                Ok(ws) if !ws.is_empty() && ws.iter().all(|&w| w > 0) => ws,
                _ => {
                    eprintln!("--windows wants a comma list of positive ints, e.g. 1,2,4,8");
                    exit(2);
                }
            }
        }
    };
    println!(
        "proauth signing service, closed loop: n={n} t={t} units={units} group={group_id} \
         preprocess={preprocess} seed={seed} windows={windows:?}\n"
    );

    let mut rows = Vec::new();
    let mut curve: Vec<(usize, f64, u64, u64)> = Vec::new(); // (window, sigs/round, p50, p95)
    for &w in &windows {
        let schedule = Schedule::new(20, 1, 8);
        let mut cfg = SimConfig::new(n, t, schedule);
        cfg.setup_rounds = 2;
        cfg.total_rounds = schedule.unit_rounds * units;
        cfg.seed = seed;
        cfg.parallel = args.contains_key("parallel");
        let telemetry = proauth_sim::Telemetry::enabled();
        cfg.telemetry = telemetry.clone();
        let total_rounds = cfg.total_rounds;

        let mut wl = ClosedLoopWorkload::new(seed ^ 0xC105ED, w);
        let group = Group::new(group_id);
        let feedback = telemetry.clone();
        let result = run_al_with_inputs(
            cfg,
            |id| {
                let mut c = AlsConfig::new(group.clone(), n, t);
                c.nonce_pool = if preprocess { 64 } else { 0 };
                c.verify_window = verify_window;
                AlsProcess::new(AlsPds::new(c, id))
            },
            &mut PassiveAl,
            // Every node increments `pds/sign_completed` once per finished
            // session, so the per-client completion count is the counter
            // divided by n. The registry only changes at round barriers,
            // which keeps the feedback (and so the issued stream)
            // deterministic for any engine.
            |id, round| {
                let completed = feedback.counter("pds/sign_completed") / n as u64;
                wl.input(id, round, completed)
            },
        );

        let mut distinct: BTreeSet<(Vec<u8>, u64)> = BTreeSet::new();
        for node_log in &result.outputs {
            for (_, ev) in node_log {
                if let OutputEvent::Signed { msg, unit } = ev {
                    distinct.insert((msg.clone(), *unit));
                }
            }
        }
        let signed = distinct.len();
        let snap = telemetry.snapshot().expect("telemetry enabled");
        let (p50, p95) = snap
            .value_hists
            .get("pds/sign_latency_rounds")
            .map(|h| {
                let q = h.quantiles_value(&[0.5, 0.95]);
                (q[0], q[1])
            })
            .unwrap_or((0, 0));
        let per_round = signed as f64 / total_rounds as f64;
        curve.push((w, per_round, p50, p95));
        rows.push(vec![
            w.to_string(),
            wl.issued().to_string(),
            signed.to_string(),
            format!("{per_round:.2}"),
            p50.to_string(),
            p95.to_string(),
        ]);
    }

    // The knee: the last window that still bought a meaningful (≥10%)
    // throughput gain — past it, deeper pipelines only add latency.
    let mut knee = curve.first().map(|c| c.0).unwrap_or(1);
    for pair in curve.windows(2) {
        let (_, prev_tp, _, _) = pair[0];
        let (w, tp, _, _) = pair[1];
        if tp > prev_tp * 1.10 {
            knee = w;
        }
    }
    println!("latency vs offered load (closed loop, sign-only):");
    println!(
        "  {:>7} {:>7} {:>7} {:>10} {:>11} {:>11}",
        "window", "issued", "signed", "sigs/round", "p50 rounds", "p95 rounds"
    );
    for row in &rows {
        println!(
            "  {:>7} {:>7} {:>7} {:>10} {:>11} {:>11}{}",
            row[0],
            row[1],
            row[2],
            row[3],
            row[4],
            row[5],
            if row[0] == knee.to_string() {
                "   <- knee"
            } else {
                ""
            }
        );
    }
    println!(
        "\nknee at window {knee}: larger windows raise latency without a matching \
         throughput gain"
    );
    exit(0)
}

fn service_main(args: &HashMap<String, String>) -> ! {
    use proauth_pds::als::{AlsConfig, AlsPds};
    use proauth_pds::als_node::AlsProcess;
    use proauth_sim::adversary::PassiveAl;
    use proauth_sim::clock::Schedule;
    use proauth_sim::runner::run_al_with_inputs;
    use proauth_sim::workload::{Workload, WorkloadConfig};
    use std::collections::BTreeSet;

    if args.contains_key("closed-loop") {
        service_closed_loop_main(args);
    }
    let n: usize = get(args, "n", 5);
    let t: usize = get(args, "t", (n - 1) / 2);
    let units: u64 = get(args, "units", 2);
    let seed: u64 = get(args, "seed", 0);
    let rate: u64 = get(args, "rate", 2_000);
    let window: usize = get(args, "window", 8);
    let mix = args.get("mix").cloned();
    let preprocess = args.contains_key("preprocess");
    if n < 2 * t + 1 {
        eprintln!("need n >= 2t+1 (got n={n}, t={t})");
        exit(2);
    }
    let group_id = match args.get("group").map(String::as_str) {
        None | Some("toy64") => GroupId::Toy64,
        Some("s256") => GroupId::S256,
        Some("s512") => GroupId::S512,
        Some("s1024") => GroupId::S1024,
        Some(other) => {
            eprintln!("unknown group {other}");
            usage()
        }
    };
    println!(
        "proauth signing service: n={n} t={t} units={units} group={group_id} \
         rate={rate}m ops/round window={window} mix={} preprocess={preprocess} seed={seed}\n",
        mix.as_deref().unwrap_or("sign=3,verify=1")
    );

    let schedule = Schedule::new(20, 1, 8);
    let mut cfg = SimConfig::new(n, t, schedule);
    cfg.setup_rounds = 2;
    cfg.total_rounds = schedule.unit_rounds * units;
    cfg.seed = seed;
    cfg.parallel = args.contains_key("parallel");
    let telemetry = proauth_sim::Telemetry::enabled();
    cfg.telemetry = telemetry.clone();

    let wcfg = match &mix {
        None => WorkloadConfig::with_rate(seed ^ 0xE13, rate),
        Some(spec) => match WorkloadConfig::with_mix(seed ^ 0xE13, rate, spec) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("bad --mix: {e}");
                exit(2);
            }
        },
    };
    let workload = Workload::new(wcfg, n);
    let offered = workload.offered_signs(cfg.total_rounds);
    let group = Group::new(group_id);
    let start = std::time::Instant::now();
    let result = run_al_with_inputs(
        cfg,
        |id| {
            let mut c = AlsConfig::new(group.clone(), n, t);
            c.nonce_pool = if preprocess { 64 } else { 0 };
            c.verify_window = window;
            AlsProcess::new(AlsPds::new(c, id))
        },
        &mut PassiveAl,
        |id, round| workload.input(id, round),
    );
    let elapsed = start.elapsed();

    let mut distinct: BTreeSet<(Vec<u8>, u64)> = BTreeSet::new();
    for node_log in &result.outputs {
        for (_, ev) in node_log {
            if let OutputEvent::Signed { msg, unit } = ev {
                distinct.insert((msg.clone(), *unit));
            }
        }
    }
    let signed = distinct.len();
    let snap = telemetry.snapshot().expect("telemetry enabled");
    let normal_ns = snap.hists.get("phase/normal_ns").map_or(0, |h| h.sum_ns);
    println!("signed {signed} of {offered} offered sign requests");
    if normal_ns > 0 {
        println!(
            "online throughput:    {:.1} sig/s of normal-phase engine time",
            signed as f64 * 1e9 / normal_ns as f64
        );
    }
    if !elapsed.is_zero() {
        println!(
            "sustained throughput: {:.1} sig/s wall-clock (setup + refresh included)",
            signed as f64 / elapsed.as_secs_f64()
        );
    }
    if let Some(h) = snap.value_hists.get("pds/sign_latency_rounds") {
        let q = h.quantiles_value(&[0.5, 0.95, 0.99]);
        println!(
            "sign latency (rounds): p50 {}  p95 {}  p99 {}",
            q[0], q[1], q[2]
        );
    }
    if let Some(metrics) = proauth_sim::report::render_metrics(&telemetry) {
        println!("\nmetrics:");
        print!("{metrics}");
    }
    exit(0)
}

#[allow(clippy::too_many_lines)]
fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("chaos") {
        raw.remove(0);
        chaos_main(&parse_args(raw));
    }
    if raw.first().map(String::as_str) == Some("service") {
        raw.remove(0);
        service_main(&parse_args(raw));
    }
    if raw.first().map(String::as_str) == Some("serve") {
        raw.remove(0);
        serve_main(&parse_args(raw));
    }
    if raw.first().map(String::as_str) == Some("proxy") {
        raw.remove(0);
        proxy_main(&parse_args(raw));
    }
    if raw.first().map(String::as_str) == Some("client") {
        raw.remove(0);
        client_main(&parse_args(raw));
    }
    if raw.first().map(String::as_str) == Some("daemon") {
        raw.remove(0);
        daemon_main(&parse_args(raw));
    }
    if raw.first().map(String::as_str) == Some("top") {
        raw.remove(0);
        top_main(&parse_args(raw));
    }
    let args = parse_args(raw);
    let n: usize = get(&args, "n", 5);
    let t: usize = get(&args, "t", (n - 1) / 2);
    let units: u64 = get(&args, "units", 3);
    let normal: u64 = get(&args, "normal", 12);
    let seed: u64 = get(&args, "seed", 0);
    if n < 2 * t + 1 {
        eprintln!("need n >= 2t+1 (got n={n}, t={t})");
        exit(2);
    }
    if !normal.is_multiple_of(2) {
        eprintln!("--normal must be even");
        exit(2);
    }
    let group_id = match args.get("group").map(String::as_str) {
        None | Some("toy64") => GroupId::Toy64,
        Some("s256") => GroupId::S256,
        Some("s512") => GroupId::S512,
        Some("s1024") => GroupId::S1024,
        Some(other) => {
            eprintln!("unknown group {other}");
            usage()
        }
    };
    let auth_mode = match args.get("auth").map(String::as_str) {
        None | Some("sign") => AuthMode::Sign,
        Some("mac") => AuthMode::SessionMac,
        Some(other) => {
            eprintln!("unknown auth mode {other}");
            usage()
        }
    };

    if args.contains_key("clusters") {
        hier_main(&args, group_id, auth_mode);
    }

    let schedule = uls_schedule(normal);
    let mut cfg = SimConfig::new(n, t, schedule);
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = schedule.unit_rounds * units;
    cfg.seed = seed;
    cfg.parallel = args.contains_key("parallel");
    apply_trace(&args, &mut cfg);
    // Keep a handle for the post-run metrics report (the config moves into
    // the runner).
    let telemetry = cfg.telemetry.clone();

    let group = Group::new(group_id);
    let make_node = |id: NodeId| {
        let mut c = UlsConfig::new(group.clone(), n, t);
        c.auth_mode = auth_mode;
        UlsNode::new(c, id, HeartbeatApp::default())
    };

    println!(
        "proauth scenario: n={n} t={t} units={units} group={group_id} auth={auth_mode:?} seed={seed}"
    );
    let adversary_spec = args
        .get("adversary")
        .cloned()
        .unwrap_or_else(|| "none".to_owned());
    println!("adversary: {adversary_spec}\n");

    let parse_node = |spec: &str| -> NodeId {
        let id: u32 = spec.parse().unwrap_or_else(|_| {
            eprintln!("bad node id {spec}");
            usage()
        });
        if id == 0 || id as usize > n {
            eprintln!("node id out of range: {id}");
            exit(2);
        }
        NodeId(id)
    };

    // Dispatch on the adversary; each arm runs the same simulation.
    let result: SimResult;
    let mut limit_note = String::new();
    if adversary_spec == "none" {
        result = run_ul(cfg, make_node, &mut FaithfulUl);
    } else if let Some(pct) = adversary_spec.strip_prefix("drop:") {
        let p: f64 = pct.parse::<f64>().unwrap_or_else(|_| usage()) / 100.0;
        let mut adv = proauth_adversary::RandomDropper::new(p, seed ^ 0xD20);
        result = run_ul(cfg, make_node, &mut adv);
    } else if adversary_spec == "replay" {
        let mut adv = Replayer::new(6);
        result = run_ul(cfg, make_node, &mut adv);
    } else if let Some(node) = adversary_spec.strip_prefix("isolate:") {
        let victim = parse_node(node);
        let from = schedule.unit_rounds;
        let mut adv = LimitObserver::new(
            LinkCutter::isolate(victim, n).during(from, 2 * schedule.unit_rounds),
        );
        result = run_ul(cfg, make_node, &mut adv);
        limit_note = format!("max impaired per unit: {}", adv.max_impaired());
    } else if let Some(node) = adversary_spec.strip_prefix("wipe:") {
        let victim = parse_node(node);
        let mut adv = Wiper {
            target: victim,
            break_at: 4,
            leave_at: 8,
        };
        result = run_ul(cfg, make_node, &mut adv);
    } else if let Some(node) = adversary_spec.strip_prefix("hijack:") {
        let victim = parse_node(node);
        if units < 2 {
            eprintln!("hijack needs at least 2 units");
            exit(2);
        }
        let mut adv = LimitObserver::new(Hijacker::new(
            group.clone(),
            victim,
            1,
            schedule.unit_rounds,
        ));
        result = run_ul(cfg, make_node, &mut adv);
        limit_note = format!(
            "cert harvested: {}, forgeries: {}, max impaired per unit: {}",
            adv.inner.harvested_cert.is_some(),
            adv.inner.forgeries_sent,
            adv.max_impaired()
        );
    } else {
        eprintln!("unknown adversary {adversary_spec}");
        usage()
    }

    print_report(&args, n, &schedule, &telemetry, &result, &limit_note);
}

/// Applies `--trace` / `PROAUTH_TRACE` to the config (a requested-and-
/// unusable trace is a hard error for the CLI, not a silent run).
fn apply_trace(args: &HashMap<String, String>, cfg: &mut SimConfig) {
    if let Some(path) = args.get("trace") {
        cfg.telemetry = match proauth_sim::Telemetry::with_trace_path(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot open trace file {path}: {e}");
                exit(2);
            }
        };
    } else if let Ok(path) = std::env::var(proauth_sim::telemetry::TRACE_ENV) {
        // SimConfig::new already resolved PROAUTH_TRACE; the library falls
        // back to no tracing when the path is unwritable.
        if !path.is_empty() && !cfg.telemetry.is_on() {
            eprintln!("cannot open trace file {path} (from PROAUTH_TRACE)");
            exit(2);
        }
    }
}

/// The `--clusters` scenario: the §6 two-level hierarchy — √n clusters, each
/// running its own cluster-local ULS stack, a top-level PDS over the cluster
/// representatives, and inter-cluster traffic certified through the
/// authenticator.
fn hier_main(args: &HashMap<String, String>, group_id: GroupId, auth_mode: AuthMode) -> ! {
    use proauth_core::hier::{heartbeat_msg, HierConfig, HierNode, HIER_SETUP_ROUNDS};

    let n: usize = get(args, "n", 16);
    let units: u64 = get(args, "units", 3);
    let normal: u64 = get(args, "normal", 12);
    let seed: u64 = get(args, "seed", 0);
    if !normal.is_multiple_of(2) {
        eprintln!("--normal must be even");
        exit(2);
    }
    let mut hcfg = HierConfig::new(Group::new(group_id), n);
    hcfg.auth_mode = auth_mode;
    let k = hcfg.partition.cluster_count();

    let schedule = uls_schedule(normal);
    let mut cfg = SimConfig::new(n, 1, schedule);
    cfg.setup_rounds = HIER_SETUP_ROUNDS;
    cfg.total_rounds = schedule.unit_rounds * units;
    cfg.seed = seed;
    cfg.parallel = args.contains_key("parallel");
    cfg.clusters = Some(hcfg.partition.clusters.clone());
    apply_trace(args, &mut cfg);
    let telemetry = cfg.telemetry.clone();

    println!(
        "proauth hierarchy: n={n} clusters={k} group={group_id} auth={auth_mode:?} \
         units={units} seed={seed}"
    );
    for (c, members) in hcfg.partition.clusters.iter().enumerate() {
        println!(
            "  cluster {c}: nodes {}..{} (t={}, representative {})",
            members.first().unwrap(),
            members.last().unwrap(),
            hcfg.partition.cluster_threshold(c),
            hcfg.partition.representative(c, 0),
        );
    }
    let adversary_spec = args
        .get("adversary")
        .cloned()
        .unwrap_or_else(|| "none".to_owned());
    println!("adversary: {adversary_spec}\n");

    let make_node = |id: NodeId| HierNode::new(hcfg.clone(), id, HeartbeatApp::default());
    let result: SimResult;
    let mut limit_note = String::new();
    if adversary_spec == "none" {
        result = run_ul(cfg, make_node, &mut FaithfulUl);
    } else if let Some(pct) = adversary_spec.strip_prefix("drop:") {
        let p: f64 = pct.parse::<f64>().unwrap_or_else(|_| usage()) / 100.0;
        let mut adv = proauth_adversary::RandomDropper::new(p, seed ^ 0xD20);
        result = run_ul(cfg, make_node, &mut adv);
    } else if adversary_spec == "replay" {
        let mut adv = Replayer::new(6);
        result = run_ul(cfg, make_node, &mut adv);
    } else if let Some(node) = adversary_spec.strip_prefix("isolate:") {
        let victim: u32 = node.parse().unwrap_or_else(|_| usage());
        if victim == 0 || victim as usize > n {
            eprintln!("node id out of range: {victim}");
            exit(2);
        }
        let from = schedule.unit_rounds;
        let mut adv = LimitObserver::with_clusters(
            LinkCutter::isolate(NodeId(victim), n).during(from, 2 * schedule.unit_rounds),
            hcfg.partition.clusters.clone(),
        );
        result = run_ul(cfg, make_node, &mut adv);
        limit_note = format!(
            "max impaired per unit: {}, majority-compromised clusters: {}",
            adv.max_impaired(),
            adv.max_compromised_clusters()
        );
    } else {
        eprintln!("--clusters supports adversary none | drop:<pct> | replay | isolate:<node>");
        exit(2);
    }

    // Per-cluster liveness: which units each cluster co-signed the
    // top-level heartbeat for (any member — robust to re-elections).
    println!("top-level heartbeat signatures per cluster:");
    for (c, members) in hcfg.partition.clusters.iter().enumerate() {
        let mut units_signed: Vec<u64> = members
            .iter()
            .flat_map(|&m| result.events_of(NodeId(m)))
            .filter_map(|(_, ev)| match ev {
                OutputEvent::Signed { msg, unit } if *msg == heartbeat_msg(*unit) => Some(*unit),
                _ => None,
            })
            .collect();
        units_signed.sort_unstable();
        units_signed.dedup();
        println!("  cluster {c}: units {units_signed:?}");
    }
    println!();

    // The engine's own two-level Definition-7 scoreboard: distinct impaired
    // nodes per unit, scored against each cluster's PDS threshold and the
    // top-level PDS over representatives.
    println!("per-unit two-level (s,t) scoreboard:");
    for score in &result.stats.unit_scores {
        let per_cluster: Vec<String> = score
            .clusters
            .iter()
            .map(|c| {
                format!(
                    "{}/{}{}",
                    c.impaired,
                    c.size,
                    if c.majority_compromised() { "!" } else { "" }
                )
            })
            .collect();
        println!(
            "  unit {}: impaired {} non-op {}  clusters [{}]  majority-compromised {}  {}",
            score.unit,
            score.impaired,
            score.non_operational,
            per_cluster.join(" "),
            score.majority_compromised_clusters(),
            if score.within_two_level_budget() {
                "within two-level budget"
            } else {
                "OVER two-level budget"
            }
        );
    }
    println!();

    print_report(args, n, &schedule, &telemetry, &result, &limit_note);
    exit(0)
}

/// The common post-run report shared by the flat and hierarchy scenarios.
fn print_report(
    args: &HashMap<String, String>,
    n: usize,
    schedule: &proauth_sim::clock::Schedule,
    telemetry: &proauth_sim::Telemetry,
    result: &SimResult,
    limit_note: &str,
) {
    println!("per-node summary:");
    for id in NodeId::all(n) {
        let log = &result.outputs[id.idx()];
        let count = |f: &dyn Fn(&OutputEvent) -> bool| log.iter().filter(|(_, e)| f(e)).count();
        println!(
            "  {id}: accepted {:4}  sent {:4}  alerts {}  broken-rounds {:3}  operational {}",
            count(&|e| matches!(e, OutputEvent::Accepted { .. })),
            count(&|e| matches!(e, OutputEvent::Sent { .. })),
            count(&|e| *e == OutputEvent::Alert),
            result.stats.broken_rounds[id.idx()],
            result.final_operational[id.idx()],
        );
    }
    println!("\ntraffic: {}", result.stats);
    if !limit_note.is_empty() {
        println!("adversary: {limit_note}");
    }

    // Awareness analysis.
    let imps = awareness::find_impersonations(&result.outputs, schedule, |_, _| false);
    let uncovered = awareness::unalerted_impersonations(
        &result.outputs,
        schedule,
        |_, _| false,
        |node, unit| result.alerted_in_unit(node, unit, schedule),
    );
    println!(
        "awareness: {} impersonation incidents, {} NOT covered by same-unit alerts",
        imps.len(),
        uncovered.len()
    );

    // Unit-by-unit operator view.
    println!("\nunit timeline:");
    for summary in proauth_sim::report::unit_summaries(result, schedule) {
        print!("{summary}");
    }

    if let Some(metrics) = proauth_sim::report::render_metrics(telemetry) {
        println!("\nmetrics:");
        print!("{metrics}");
        if let Some(path) = args.get("trace") {
            println!("trace written to {path}");
        }
    }

    if args.contains_key("verbose") {
        println!("\nfull event log:");
        for id in NodeId::all(n) {
            for (round, ev) in &result.outputs[id.idx()] {
                println!("  [{round:4}] {id}: {ev:?}");
            }
        }
    }

    for line in &result.adversary_output {
        println!("adversary output: {line}");
    }
}

// ---------------------------------------------------------------------------
// Daemon mode: the protocol over real sockets, one OS process per node.
// ---------------------------------------------------------------------------

/// The scenario parameters every daemon-mode process must agree on.
#[derive(Clone)]
struct NetScenario {
    n: usize,
    t: usize,
    units: u64,
    normal: u64,
    seed: u64,
    group_id: GroupId,
    auth_mode: AuthMode,
    plan: proauth_sim::net::AddrPlan,
}

impl NetScenario {
    fn from_args(args: &HashMap<String, String>) -> Self {
        let n: usize = get(args, "n", 5);
        let t: usize = get(args, "t", (n - 1) / 2);
        let normal: u64 = get(args, "normal", 8);
        if n < 2 * t + 1 {
            eprintln!("need n >= 2t+1 (got n={n}, t={t})");
            exit(2);
        }
        if !normal.is_multiple_of(2) {
            eprintln!("--normal must be even");
            exit(2);
        }
        let group_id = match args.get("group").map(String::as_str) {
            None | Some("toy64") => GroupId::Toy64,
            Some("s256") => GroupId::S256,
            Some("s512") => GroupId::S512,
            Some("s1024") => GroupId::S1024,
            Some(other) => {
                eprintln!("unknown group {other}");
                usage()
            }
        };
        let auth_mode = match args.get("auth").map(String::as_str) {
            None | Some("sign") => AuthMode::Sign,
            Some("mac") => AuthMode::SessionMac,
            Some(other) => {
                eprintln!("unknown auth mode {other}");
                usage()
            }
        };
        let addr = args
            .get("addr")
            .cloned()
            .unwrap_or_else(|| format!("unix:{}", default_sock_dir().display()));
        let plan = proauth_sim::net::AddrPlan::parse(&addr).unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2);
        });
        NetScenario {
            n,
            t,
            units: get(args, "units", 2),
            normal,
            seed: get(args, "seed", 0),
            group_id,
            auth_mode,
            plan,
        }
    }

    fn schedule(&self) -> proauth_sim::clock::Schedule {
        uls_schedule(self.normal)
    }

    fn total_rounds(&self) -> u64 {
        self.schedule().unit_rounds * self.units
    }

    /// The scenario digest: any parameter mismatch between processes changes
    /// it, so a stray `serve` from another invocation is rejected at Hello.
    fn run_id(&self) -> u64 {
        let d = proauth_primitives::sha256::hash_parts(
            "proauth/net/run-id",
            &[
                &(self.n as u64).to_be_bytes(),
                &(self.t as u64).to_be_bytes(),
                &self.units.to_be_bytes(),
                &self.normal.to_be_bytes(),
                &self.seed.to_be_bytes(),
                format!("{}", self.group_id).as_bytes(),
                format!("{:?}", self.auth_mode).as_bytes(),
            ],
        );
        u64::from_be_bytes(d[..8].try_into().expect("8 of 32 digest bytes"))
    }

    fn make_node(&self, id: NodeId) -> UlsNode<HeartbeatApp> {
        let mut c = UlsConfig::new(Group::new(self.group_id), self.n, self.t);
        c.auth_mode = self.auth_mode;
        UlsNode::new(c, id, HeartbeatApp::default())
    }

    /// The equivalent in-process engine run, for `--check`.
    fn engine_run(&self) -> SimResult {
        let mut cfg = SimConfig::new(self.n, self.t, self.schedule());
        cfg.setup_rounds = SETUP_ROUNDS;
        cfg.total_rounds = self.total_rounds();
        cfg.seed = self.seed;
        cfg.parallel = false;
        run_ul(cfg, |id| self.make_node(id), &mut FaithfulUl)
    }

    /// The engine run's flight-recorder trace (JSONL), for the daemon-trace
    /// equality check.
    fn engine_trace(&self) -> String {
        let (tele, buf) = proauth_sim::telemetry::Telemetry::with_memory_sink();
        let mut cfg = SimConfig::new(self.n, self.t, self.schedule());
        cfg.setup_rounds = SETUP_ROUNDS;
        cfg.total_rounds = self.total_rounds();
        cfg.seed = self.seed;
        cfg.parallel = false;
        cfg.telemetry = tele;
        run_ul(cfg, |id| self.make_node(id), &mut FaithfulUl);
        proauth_sim::telemetry::memory_contents(&buf)
    }

    /// The collector-side trace-assembly spec for this scenario.
    fn trace_spec(&self) -> proauth_sim::net::TraceSpec {
        proauth_sim::net::TraceSpec {
            n: self.n,
            s: self.t,
            seed: self.seed,
            schedule: self.schedule(),
            setup_rounds: SETUP_ROUNDS,
            total_rounds: self.total_rounds(),
        }
    }
}

fn default_sock_dir() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("proauth-daemon-{}", std::process::id()))
}

/// Chaos flags shared by `proxy` and `daemon`.
fn chaos_spec_from_args(args: &HashMap<String, String>) -> proauth_sim::net::ChaosNetSpec {
    use proauth_sim::net::{ChaosNetSpec, Partition};
    let partition = args.get("partition").map(|spec| {
        let parts: Vec<u64> = spec.split(':').filter_map(|s| s.parse().ok()).collect();
        if parts.len() != 3 {
            eprintln!("--partition wants start:end:split");
            exit(2);
        }
        Partition {
            start: parts[0],
            end: parts[1],
            split: parts[2] as u32,
        }
    });
    ChaosNetSpec {
        seed: get(args, "chaos-seed", 0),
        delay_pct: get(args, "delay", 0),
        delay_max: get(args, "delay-max", 2),
        dup_pct: get(args, "dup", 0),
        reorder_pct: get(args, "reorder", 0),
        reset_pct: get(args, "reset", 0),
        partition,
    }
}

/// `serve`: one node of the deployment, as this process.
fn serve_main(args: &HashMap<String, String>) -> ! {
    use proauth_sim::net::{run_node, Load, NodeNetConfig, StateDir};
    use proauth_sim::ProcessDriver;

    let sc = NetScenario::from_args(args);
    let node_id: u32 = get(args, "node", 0);
    if node_id == 0 || node_id as usize > sc.n {
        eprintln!("serve needs --node <1..={}>", sc.n);
        exit(2);
    }
    let me = NodeId(node_id);
    let mut cfg = NodeNetConfig::new(me, sc.n, sc.plan.clone(), sc.schedule());
    cfg.seed = sc.seed;
    cfg.run_id = sc.run_id();
    cfg.via_proxy = args.contains_key("via-proxy");
    cfg.report = args.contains_key("report");
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = sc.total_rounds();
    cfg.round_ms = get(args, "round-ms", 250);
    cfg.min_round_ms = get(args, "min-round-ms", 0);
    cfg.connect_timeout_ms = get(args, "connect-timeout", 30_000);
    cfg.telemetry = args.contains_key("telemetry");
    cfg.stream_trace = args.contains_key("stream-trace");
    cfg.adaptive = args.contains_key("adaptive");
    cfg.adapt_floor_ms = get(args, "adapt-floor-ms", 20);

    // Durable state: with --state-dir, a restarted process finds its ROM
    // image and round watermark on disk and rejoins the running cluster
    // instead of re-running setup. A corrupt watermark demotes to a full
    // catch-up from round 0 (share recovery repairs the lost shares); a
    // corrupt ROM is fatal — the write-once image is the node's identity
    // and cannot be reconstructed locally.
    let state_root = args.get("state-dir").map(std::path::PathBuf::from);
    cfg.state_dir = state_root.clone();
    let mut driver = match &state_root {
        None => ProcessDriver::new(sc.make_node(me), me, sc.n, sc.seed),
        Some(root) => {
            let sd = StateDir::open(root, me.0).unwrap_or_else(|e| {
                eprintln!("node {me}: cannot open state dir {}: {e}", root.display());
                exit(1)
            });
            match sd.load_rom() {
                Load::Absent => ProcessDriver::new(sc.make_node(me), me, sc.n, sc.seed),
                Load::Corrupt => {
                    eprintln!("node {me}: durable ROM image is corrupt; refusing to rejoin");
                    exit(1)
                }
                Load::Ok(rom) => {
                    let resume = match sd.load_watermark() {
                        Load::Ok(wm) => wm.completed_rounds,
                        Load::Absent => 0,
                        Load::Corrupt => {
                            eprintln!(
                                "node {me}: watermark corrupt; rejoining from round 0 \
                                 (full catch-up + share recovery)"
                            );
                            0
                        }
                    };
                    eprintln!("node {me}: rejoining from durable state at round {resume}");
                    cfg.resume = Some(resume);
                    ProcessDriver::with_rom(sc.make_node(me), me, sc.n, sc.seed, rom)
                }
            }
        }
    };
    match run_node(cfg, &mut driver, |_, _| None) {
        Ok(rep) => {
            println!(
                "node {me}: rounds {} sent {} received {} bytes_sent {} alerts {} \
                 late {} mark_timeouts {}",
                rep.rounds,
                rep.sent,
                rep.received,
                rep.bytes_sent,
                rep.alerts,
                rep.late_frames,
                rep.mark_timeouts
            );
            exit(0)
        }
        Err(e) => {
            eprintln!("node {me} failed: {e}");
            exit(1)
        }
    }
}

/// `proxy`: the adversarial router, as this process.
fn proxy_main(args: &HashMap<String, String>) -> ! {
    use proauth_sim::net::{run_proxy, ProxyConfig};

    let sc = NetScenario::from_args(args);
    let spec = chaos_spec_from_args(args);
    let cfg = ProxyConfig {
        n: sc.n,
        plan: sc.plan.clone(),
        spec,
        run_id: sc.run_id(),
        idle_timeout_ms: get(args, "idle-timeout", 60_000),
    };
    println!(
        "proxy: n={} chaos: delay {}%/{}r dup {}% reorder {}% reset {}% partition {:?}",
        sc.n, spec.delay_pct, spec.delay_max, spec.dup_pct, spec.reorder_pct, spec.reset_pct,
        spec.partition
    );
    match run_proxy(cfg) {
        Ok(stats) => {
            println!(
                "proxy: forwarded {} delayed {} duplicated {} reordered {} resets {} \
                 setup {} marks {}",
                stats.forwarded,
                stats.delayed,
                stats.duplicated,
                stats.reordered,
                stats.resets,
                stats.setup_forwarded,
                stats.marks
            );
            exit(0)
        }
        Err(e) => {
            eprintln!("proxy failed: {e}");
            exit(1)
        }
    }
}

/// `client`: the collector, as this process.
fn client_main(args: &HashMap<String, String>) -> ! {
    use proauth_sim::net::{collect, CollectorConfig};

    let sc = NetScenario::from_args(args);
    let cfg = CollectorConfig {
        n: sc.n,
        plan: sc.plan.clone(),
        run_id: sc.run_id(),
        idle_timeout_ms: get(args, "idle-timeout", 60_000),
        t: sc.t,
        unit_rounds: sc.schedule().unit_rounds,
        status: args.contains_key("status"),
        trace_spec: None,
    };
    match collect(cfg) {
        Ok(outcome) => {
            print_goodput_report(&sc, &outcome);
            exit(0)
        }
        Err(e) => {
            eprintln!("collector failed: {e}");
            exit(1)
        }
    }
}

/// The goodput report shared by `client` and `daemon`.
fn print_goodput_report(sc: &NetScenario, outcome: &proauth_sim::net::DaemonOutcome) {
    println!("\ndaemon run complete: n={} units={} rounds={}", sc.n, sc.units, sc.total_rounds());
    println!("per-node summary:");
    for id in NodeId::all(sc.n) {
        let rep = &outcome.reports[id.idx()];
        let log = &outcome.outputs[id.idx()];
        let accepted = log
            .iter()
            .filter(|(_, e)| matches!(e, OutputEvent::Accepted { .. }))
            .count();
        println!(
            "  {id}: accepted {accepted:4}  sent {:5}  late {:3}  mark-timeouts {:2}  alerts {}",
            rep.sent, rep.late_frames, rep.mark_timeouts, rep.alerts
        );
    }
    let wall = outcome.wall.as_secs_f64();
    println!(
        "\nwall clock: {wall:.2}s  rounds/s: {:.1}  msgs/s: {:.0}",
        outcome.rounds_per_sec(),
        outcome.reports.iter().map(|r| r.sent).sum::<u64>() as f64 / wall.max(1e-9),
    );
    println!(
        "authenticated goodput: {:.0} B/s ({} accepted payload bytes)",
        outcome.goodput(),
        outcome.accepted_bytes()
    );
}

/// The observability-plane summary: merged transport counters and the alarm
/// stream (empty on a clean run).
fn print_observability_report(outcome: &proauth_sim::net::DaemonOutcome) {
    let c = |name: &str| outcome.merged.counters.get(name).copied().unwrap_or(0);
    if !outcome.merged.counters.is_empty() {
        println!(
            "observability: late_frames {} mark_timeouts {} dup {} reorder {} \
             rejected {} alerts {}",
            c("net/late_frames"),
            c("net/mark_timeouts"),
            c("net/dup_frames"),
            c("net/reorder_frames"),
            c("uls/rejected"),
            c("uls/alerts"),
        );
    }
    if let Some(h) = outcome.merged.value_hists.get("net/recovery_latency_ms") {
        let q = h.quantiles_value(&[0.5, 0.95, 1.0]);
        println!(
            "recovery latency: {} restart(s) healed, p50 {}ms p95 {}ms max {}ms",
            h.total, q[0], q[1], q[2]
        );
    }
    if std::env::var_os("PROAUTH_DEBUG_COUNTERS").is_some() {
        for (name, v) in &outcome.merged.counters {
            println!("  counter {name} = {v}");
        }
    }
    if outcome.alarms.is_empty() {
        println!("alarms: none");
    } else {
        println!("alarms: {}", outcome.alarms.len());
        for a in &outcome.alarms {
            println!(
                "  [{}] node {} round {}: {} ({})",
                a.severity.label(),
                a.node,
                a.round,
                a.kind,
                a.detail
            );
        }
    }
}

/// `top`: scrape the collector's live status socket and print the result.
/// `--view metrics|json|top` picks the rendering (default `top`); `--once`
/// prints one snapshot, otherwise refreshes every `--interval` ms.
fn top_main(args: &HashMap<String, String>) -> ! {
    use proauth_sim::net::{AddrPlan, Endpoint};
    use std::io::{Read, Write};

    let addr = args
        .get("addr")
        .cloned()
        .unwrap_or_else(|| format!("unix:{}", default_sock_dir().display()));
    let plan = AddrPlan::parse(&addr).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(2);
    });
    let endpoint = plan.status();
    let view = args.get("view").cloned().unwrap_or_else(|| "top".to_owned());
    if !matches!(view.as_str(), "metrics" | "json" | "top") {
        eprintln!("--view wants metrics|json|top");
        exit(2);
    }
    let once = args.contains_key("once");
    let interval = std::time::Duration::from_millis(get(args, "interval", 1_000));

    let scrape = |endpoint: &Endpoint| -> std::io::Result<String> {
        let mut body = String::new();
        match endpoint {
            Endpoint::Tcp(addr) => {
                let mut s = std::net::TcpStream::connect(addr)?;
                s.write_all(format!("{view}\n").as_bytes())?;
                s.read_to_string(&mut body)?;
            }
            Endpoint::Unix(path) => {
                let mut s = std::os::unix::net::UnixStream::connect(path)?;
                s.write_all(format!("{view}\n").as_bytes())?;
                s.read_to_string(&mut body)?;
            }
        }
        Ok(body)
    };

    loop {
        match scrape(&endpoint) {
            Ok(body) => {
                print!("{body}");
                if !body.ends_with('\n') {
                    println!();
                }
            }
            Err(e) => {
                eprintln!("cannot scrape {endpoint}: {e}");
                exit(1)
            }
        }
        if once {
            exit(0)
        }
        println!("---");
        std::thread::sleep(interval);
    }
}

/// Checks a chaos-run outcome against the protocol's promises: certified
/// keys match the engine's, every node made progress, and nothing was
/// accepted that its claimed sender never sends. Returns human-readable
/// failures (empty = pass).
///
/// Restarted nodes are read off the collector's `node_restarted` alarm
/// stream (the supervisor emits one per respawn, stamped with the observed
/// round): a restarted node's report covers only the rounds since its
/// rejoin (the dead instance never reported), so its round count is checked
/// for progress rather than completeness, and its liveness must be
/// demonstrated *at or after* the restart round — proof that the respawned
/// process caught up and the cluster still authenticates it.
fn check_chaos_outcome(
    sc: &NetScenario,
    outcome: &proauth_sim::net::DaemonOutcome,
    engine: &SimResult,
) -> Vec<String> {
    let mut failures = Vec::new();
    // Certified keys: setup is adversary-free even under the chaos proxy, so
    // every ROM (v_cert and friends) must equal the engine's exactly.
    if outcome.roms != engine.roms {
        failures.push("ROMs (certified keys) diverged from the engine run".to_owned());
    }
    for id in NodeId::all(sc.n) {
        let log = &outcome.outputs[id.idx()];
        // The last round this node's process was respawned at, per the
        // supervisor's alarms (None = never restarted).
        let restart_round = outcome
            .alarms
            .iter()
            .filter(|a| a.kind == "node_restarted" && a.node == id.0)
            .map(|a| a.round)
            .max();
        // Liveness: heartbeats verified at every node — for a restarted
        // node, at or after the restart, but only when recovery is
        // observable. A respawned process rebuilds its volatile protocol
        // state through share recovery at the next refreshment phase, so it
        // can only prove liveness if a complete time unit (refresh, then
        // normal rounds) starts at or after the restart; a kill inside the
        // final unit heals the process but leaves nothing on the schedule
        // to accept.
        let live = match restart_round {
            None => log
                .iter()
                .any(|(_, e)| matches!(e, OutputEvent::Accepted { .. })),
            Some(rr) => {
                let sched = sc.schedule();
                let unit_rounds = sched.unit_rounds;
                let next_unit_start = rr.div_ceil(unit_rounds) * unit_rounds;
                let observable = next_unit_start + unit_rounds <= sc.total_rounds();
                // The victim verifies peers from its durable ROM right away;
                // the cluster re-authenticates the victim only once the
                // refresh after its restart hands it fresh certified keys.
                // Both directions must be visible: the respawned process
                // accepts, and some peer accepts *from* it post-recovery.
                let recertified_by = next_unit_start + sched.refresh_rounds();
                let accepts = log
                    .iter()
                    .any(|(r, e)| *r >= rr && matches!(e, OutputEvent::Accepted { .. }));
                let heard_from = outcome.outputs.iter().flat_map(|l| l.iter()).any(
                    |(r, e)| {
                        *r >= recertified_by
                            && matches!(e, OutputEvent::Accepted { from, .. } if *from == id)
                    },
                );
                !observable || (accepts && heard_from)
            }
        };
        if !live {
            let last_accept = log
                .iter()
                .filter(|(_, e)| matches!(e, OutputEvent::Accepted { .. }))
                .map(|(r, _)| *r)
                .max();
            failures.push(match restart_round {
                None => format!("{id} accepted no heartbeats"),
                Some(rr) => {
                    format!(
                        "{id} accepted no heartbeats after its restart at round {rr} \
                         (last accept: {})",
                        last_accept.map_or("never".into(), |r| format!("round {r}")),
                    )
                }
            });
        }
        let rounds = outcome.reports[id.idx()].rounds;
        match restart_round {
            None if rounds != sc.total_rounds() => {
                failures.push(format!("{id} did not complete all rounds"));
            }
            Some(_) if rounds == 0 || rounds > sc.total_rounds() => {
                failures.push(format!(
                    "{id} rejoined instance reported a nonsensical round count {rounds}"
                ));
            }
            _ => {}
        }
        // Zero forgeries: an accepted heartbeat must be one its claimed
        // sender actually emits ("hb:<sender>:<round>").
        for (_, ev) in log {
            if let OutputEvent::Accepted { from, msg } = ev {
                let ok = std::str::from_utf8(msg).is_ok_and(|text| {
                    let mut parts = text.splitn(3, ':');
                    parts.next() == Some("hb")
                        && parts.next() == Some(from.0.to_string().as_str())
                        && parts.next().is_some_and(|r| r.parse::<u64>().is_ok())
                });
                if !ok {
                    failures.push(format!("{id} accepted a forged message: {msg:?}"));
                }
            }
        }
    }
    failures
}

/// `daemon`: orchestrates a full deployment — spawns `serve` children (and a
/// `proxy` when chaos flags are set), runs the collector inline, reports
/// goodput, and optionally verifies against the in-process engine.
fn daemon_main(args: &HashMap<String, String>) -> ! {
    use proauth_sim::net::{AddrPlan, Alarm, Collector, CollectorConfig, Severity, StateDir};
    use proauth_sim::ProcessFaultPlan;
    use std::process::{Child, Command, Stdio};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{mpsc, Arc};
    use std::time::{Duration, Instant};

    let sc = NetScenario::from_args(args);
    let spec = chaos_spec_from_args(args);
    let chaos = !spec.is_faithful();
    let check = args.contains_key("check");
    let round_ms: u64 = get(args, "round-ms", 1_000);

    // Process-level chaos and the self-healing knobs. Kills only make sense
    // with durable state: a respawned node without a ROM image on disk would
    // try to re-run setup against a cluster whose setup barrier has passed.
    let mut kill_plan = match args.get("kill").map(String::as_str) {
        None => ProcessFaultPlan::default(),
        Some("auto") => ProcessFaultPlan::kill_all_once(
            sc.n,
            sc.t,
            &sc.schedule(),
            sc.total_rounds(),
            sc.seed,
        )
        .unwrap_or_else(|e| {
            eprintln!("bad --kill auto: {e}");
            exit(2)
        }),
        Some(spec) => ProcessFaultPlan::parse(spec).unwrap_or_else(|e| {
            eprintln!("bad --kill: {e}");
            exit(2)
        }),
    };
    for &(round, victim) in &kill_plan.kills {
        if victim == 0 || victim as usize > sc.n || round >= sc.total_rounds() {
            eprintln!("--kill {victim}:{round} is out of range (n={}, rounds={})",
                sc.n, sc.total_rounds());
            exit(2);
        }
    }
    let state_root = args.get("state-dir").map(std::path::PathBuf::from);
    if !kill_plan.kills.is_empty() && state_root.is_none() {
        eprintln!("--kill needs --state-dir (a killed node can only rejoin from durable state)");
        exit(2);
    }
    if args.contains_key("truncate-state") {
        kill_plan.truncate = kill_plan.kills.iter().map(|&(_, v)| v).collect();
        kill_plan.truncate.dedup();
    }
    let max_restarts: usize = get(args, "max-restarts", 3);
    let restart_window = Duration::from_secs(get(args, "restart-window", 60));
    let backoff_ms: u64 = get(args, "backoff-ms", 100);
    // Trace assembly needs the nodes to stream their flight-recorder events;
    // `--check` compares the assembled trace against the engine (faithful
    // runs only), `--trace PATH` saves it.
    let want_trace = check || args.contains_key("trace");
    let adaptive = args.contains_key("adaptive");
    let exe = std::env::current_exe().expect("own executable path");

    if let AddrPlan::Unix { dir } = &sc.plan {
        std::fs::create_dir_all(dir).expect("socket directory");
    }
    println!(
        "proauth daemon: n={} t={} units={} normal={} group={} auth={:?} seed={} addr={}",
        sc.n,
        sc.t,
        sc.units,
        sc.normal,
        sc.group_id,
        sc.auth_mode,
        sc.seed,
        args.get("addr").cloned().unwrap_or_else(|| format!(
            "unix:{}",
            default_sock_dir().display()
        ))
    );
    if chaos {
        println!(
            "chaos proxy: delay {}%/{}r dup {}% reorder {}% reset {}% partition {:?} (seed {})",
            spec.delay_pct, spec.delay_max, spec.dup_pct, spec.reorder_pct, spec.reset_pct,
            spec.partition, spec.seed
        );
    } else {
        println!("topology: direct full mesh (no proxy)");
    }
    if let Some(root) = &state_root {
        println!("durable state: {}", root.display());
    }
    if !kill_plan.kills.is_empty() {
        let sched: Vec<String> = kill_plan
            .kills
            .iter()
            .map(|(r, v)| format!("{v}@r{r}"))
            .collect();
        println!(
            "kill schedule: {} (truncate-state: {})",
            sched.join(" "),
            if kill_plan.truncate.is_empty() { "no" } else { "yes" }
        );
    }

    // Bind the collector before any child starts so report dials never race.
    // The live status socket is always on in daemon mode (`proauth top`
    // scrapes it at `plan.status()`).
    let mut collector = Collector::bind(CollectorConfig {
        n: sc.n,
        plan: sc.plan.clone(),
        run_id: sc.run_id(),
        idle_timeout_ms: get(args, "idle-timeout", 120_000),
        t: sc.t,
        unit_rounds: sc.schedule().unit_rounds,
        status: true,
        trace_spec: want_trace.then(|| sc.trace_spec()),
    })
    .unwrap_or_else(|e| {
        eprintln!("cannot bind collector: {e}");
        exit(1)
    });
    println!("status endpoint: {}", sc.plan.status());

    // The supervisor's two taps into the observability plane: restart alarms
    // flow into the collector's alarm stream (Warning severity, so a kill
    // charges the victim's Definition-7 budget), and the collector publishes
    // the highest beacon round so the kill schedule can fire on protocol
    // time instead of wall clock.
    let (alarm_tx, alarm_rx) = mpsc::channel::<Alarm>();
    let round_watch = Arc::new(AtomicU64::new(0));
    collector.set_alarm_channel(alarm_rx);
    collector.set_round_watch(round_watch.clone());
    let stop = Arc::new(AtomicBool::new(false));

    let addr_arg = args
        .get("addr")
        .cloned()
        .unwrap_or_else(|| format!("unix:{}", default_sock_dir().display()));
    // Children are described by argv vectors, not pre-built Commands, so the
    // supervisor can respawn a dead node with exactly the arguments it was
    // born with.
    let scenario_argv = || -> Vec<String> {
        let mut v = vec![
            "--n".to_owned(),
            sc.n.to_string(),
            "--t".to_owned(),
            sc.t.to_string(),
            "--units".to_owned(),
            sc.units.to_string(),
            "--normal".to_owned(),
            sc.normal.to_string(),
            "--seed".to_owned(),
            sc.seed.to_string(),
            "--group".to_owned(),
            format!("{}", sc.group_id).to_lowercase(),
            "--addr".to_owned(),
            addr_arg.clone(),
        ];
        if sc.auth_mode == AuthMode::SessionMac {
            v.push("--auth".to_owned());
            v.push("mac".to_owned());
        }
        v
    };
    let serve_argv = |id: u32| -> Vec<String> {
        let mut v = vec!["serve".to_owned()];
        v.extend(scenario_argv());
        v.push("--node".to_owned());
        v.push(id.to_string());
        v.push("--report".to_owned());
        v.push("--round-ms".to_owned());
        v.push(round_ms.to_string());
        if let Some(x) = args.get("min-round-ms") {
            v.push("--min-round-ms".to_owned());
            v.push(x.clone());
        } else if !kill_plan.kills.is_empty() {
            // A kill schedule fires on beacon-observed rounds, so rounds must
            // take long enough for the supervisor to interleave; unpaced
            // rounds finish in microseconds and every kill would land after
            // the run. Pace at a quarter of the round deadline by default.
            v.push("--min-round-ms".to_owned());
            v.push((round_ms / 4).max(20).to_string());
        }
        if chaos {
            v.push("--via-proxy".to_owned());
        }
        // Observability is on by default in daemon mode: each node folds its
        // registry into per-round metrics deltas and a health beacon.
        v.push("--telemetry".to_owned());
        if want_trace {
            v.push("--stream-trace".to_owned());
        }
        if adaptive {
            v.push("--adaptive".to_owned());
            if let Some(x) = args.get("adapt-floor-ms") {
                v.push("--adapt-floor-ms".to_owned());
                v.push(x.clone());
            }
        }
        if let Some(root) = &state_root {
            v.push("--state-dir".to_owned());
            v.push(root.display().to_string());
        }
        v
    };
    // Node stdout is summary-only; keep the orchestrator's output clean but
    // surface child errors.
    let spawn_child = |argv: &[String], quiet: bool| -> Child {
        let mut cmd = Command::new(&exe);
        cmd.args(argv);
        cmd.stdout(if quiet { Stdio::null() } else { Stdio::inherit() });
        cmd.stderr(Stdio::inherit());
        cmd.spawn().expect("spawn child")
    };

    // --hosts: which node ids this invocation spawns locally. Remote ranges
    // get their exact serve command printed for the operator to run; the
    // collector then waits for them to dial in.
    let local_only: Option<Vec<u32>> = args.get("hosts").map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read hosts manifest {path}: {e}");
            exit(2)
        });
        if matches!(sc.plan, AddrPlan::Unix { .. }) {
            eprintln!(
                "warning: --hosts over unix sockets only reaches this machine; \
                 use --addr tcp:HOST:PORT for a real multi-host run"
            );
        }
        let local_label = args.get("local").cloned().unwrap_or_default();
        let mut local = Vec::new();
        let mut matched = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parsed = line.split_once(char::is_whitespace).and_then(|(label, range)| {
                let (lo, hi) = range.trim().split_once('-')?;
                Some((label, lo.trim().parse::<u32>().ok()?, hi.trim().parse::<u32>().ok()?))
            });
            let Some((label, lo, hi)) = parsed else {
                eprintln!("{path}:{}: want `<label> <lo>-<hi>`, got: {line}", lineno + 1);
                exit(2)
            };
            if lo == 0 || hi as usize > sc.n || lo > hi {
                eprintln!("{path}:{}: node range {lo}-{hi} out of 1..={}", lineno + 1, sc.n);
                exit(2)
            }
            if label == local_label {
                matched = true;
                local.extend(lo..=hi);
            } else {
                println!("host {label}: run nodes {lo}-{hi} with:");
                for id in lo..=hi {
                    println!("  proauth {}", serve_argv(id).join(" "));
                }
            }
        }
        if !local_label.is_empty() && !matched {
            eprintln!("--local {local_label} matches no line in {path}");
            exit(2);
        }
        local
    });

    /// One supervised child: its respawn recipe and restart accounting.
    struct Slot {
        name: String,
        /// 0 = the proxy (never respawned: it holds no protocol state worth
        /// healing, so its death fails the run).
        node: u32,
        argv: Vec<String>,
        child: Option<Child>,
        done: bool,
        why: String,
        attempt: u32,
        restarts: Vec<Instant>,
        respawn_at: Option<Instant>,
    }
    let new_slot = |name: String, node: u32, argv: Vec<String>, child: Child| Slot {
        name,
        node,
        argv,
        child: Some(child),
        done: false,
        why: String::new(),
        attempt: 0,
        restarts: Vec::new(),
        respawn_at: None,
    };

    let mut slots: Vec<Slot> = Vec::new();
    if chaos {
        let mut argv = vec!["proxy".to_owned()];
        argv.extend(scenario_argv());
        for key in ["chaos-seed", "delay", "delay-max", "dup", "reorder", "reset", "partition"] {
            if let Some(v) = args.get(key) {
                argv.push(format!("--{key}"));
                argv.push(v.clone());
            }
        }
        let child = spawn_child(&argv, false);
        slots.push(new_slot("proxy".into(), 0, argv, child));
    }
    for id in 1..=sc.n as u32 {
        if let Some(local) = &local_only {
            if !local.contains(&id) {
                continue;
            }
        }
        let argv = serve_argv(id);
        let child = spawn_child(&argv, true);
        slots.push(new_slot(format!("node {id}"), id, argv, child));
    }

    // The supervisor: fires scheduled kills on protocol time, reaps children,
    // classifies their exits, and respawns crashed nodes under the restart
    // policy while the collector runs on this thread.
    let seed = sc.seed;
    let supervisor = {
        let stop = Arc::clone(&stop);
        let round_watch = Arc::clone(&round_watch);
        let exe = exe.clone();
        let state_root = state_root.clone();
        let mut pending_kills = kill_plan.kills.clone();
        let truncate = kill_plan.truncate.clone();
        std::thread::spawn(move || {
            let mut slots = slots;
            let mut failures: Vec<String> = Vec::new();
            let mut restarts_total = 0u64;
            let mut shutdown_deadline: Option<Instant> = None;
            let respawn = |argv: &[String]| -> std::io::Result<Child> {
                let mut cmd = Command::new(&exe);
                cmd.args(argv);
                cmd.stdout(Stdio::null()).stderr(Stdio::inherit());
                cmd.spawn()
            };
            loop {
                let stopping = stop.load(Ordering::Relaxed);
                if stopping && shutdown_deadline.is_none() {
                    // Children self-terminate (round deadlines, idle
                    // timeouts); give the stragglers a grace period.
                    shutdown_deadline = Some(Instant::now() + Duration::from_secs(30));
                    pending_kills.clear();
                }

                // Fire due kills: SIGKILL mid-protocol, no warning — the
                // process-level analogue of the paper's break-in.
                let cur = round_watch.load(Ordering::Relaxed);
                while let Some(&(round, victim)) = pending_kills.first() {
                    if round > cur {
                        break;
                    }
                    pending_kills.remove(0);
                    if let Some(slot) = slots.iter_mut().find(|s| s.node == victim) {
                        if let Some(child) = slot.child.as_mut() {
                            println!(
                                "supervisor: SIGKILL node {victim} \
                                 (scheduled round {round}, cluster at {cur})"
                            );
                            let _ = child.kill();
                        }
                    }
                }

                for slot in slots.iter_mut() {
                    if slot.done {
                        continue;
                    }
                    if let Some(child) = slot.child.as_mut() {
                        match child.try_wait() {
                            Ok(Some(status)) => {
                                slot.child = None;
                                if status.success() {
                                    slot.done = true;
                                    continue;
                                }
                                use std::os::unix::process::ExitStatusExt;
                                slot.why = match status.signal() {
                                    Some(sig) => format!("killed by signal {sig}"),
                                    None => format!("exited with {status}"),
                                };
                                if stopping || slot.node == 0 {
                                    slot.done = true;
                                    failures.push(format!("{} {}", slot.name, slot.why));
                                    continue;
                                }
                                let now = Instant::now();
                                slot.restarts
                                    .retain(|t| now.duration_since(*t) < restart_window);
                                if slot.restarts.len() >= max_restarts {
                                    slot.done = true;
                                    failures.push(format!(
                                        "{} {}; restart budget exhausted \
                                         ({max_restarts} per {}s)",
                                        slot.name,
                                        slot.why,
                                        restart_window.as_secs()
                                    ));
                                    continue;
                                }
                                // Bounded exponential backoff with
                                // deterministic jitter so simultaneous deaths
                                // do not respawn in lockstep.
                                let base = backoff_ms
                                    .saturating_mul(1 << slot.attempt.min(5))
                                    .min(10_000);
                                let d = proauth_primitives::sha256::hash_parts(
                                    "proauth/net/backoff",
                                    &[
                                        &seed.to_be_bytes(),
                                        &slot.node.to_be_bytes(),
                                        &slot.attempt.to_be_bytes(),
                                    ],
                                );
                                let jitter = u64::from_be_bytes(
                                    d[..8].try_into().expect("8 of 32 digest bytes"),
                                ) % backoff_ms.max(1);
                                slot.respawn_at =
                                    Some(now + Duration::from_millis(base + jitter));
                            }
                            Ok(None) => {}
                            Err(e) => {
                                slot.child = None;
                                slot.done = true;
                                failures.push(format!("{}: wait failed: {e}", slot.name));
                            }
                        }
                        continue;
                    }
                    // Down, waiting out its backoff.
                    let Some(at) = slot.respawn_at else {
                        slot.done = true;
                        continue;
                    };
                    if stopping {
                        slot.done = true;
                        failures.push(format!("{} down at shutdown ({})", slot.name, slot.why));
                        continue;
                    }
                    if Instant::now() < at {
                        continue;
                    }
                    slot.respawn_at = None;
                    slot.restarts.push(Instant::now());
                    slot.attempt += 1;
                    restarts_total += 1;
                    if truncate.contains(&slot.node) {
                        if let Some(root) = &state_root {
                            match StateDir::open(root, slot.node)
                                .and_then(|sd| sd.truncate_state_file())
                            {
                                Ok(true) => println!(
                                    "supervisor: truncated node {}'s watermark before respawn",
                                    slot.node
                                ),
                                Ok(false) => {}
                                Err(e) => eprintln!(
                                    "supervisor: cannot truncate node {}'s state: {e}",
                                    slot.node
                                ),
                            }
                        }
                    }
                    match respawn(&slot.argv) {
                        Ok(child) => {
                            println!(
                                "supervisor: respawned {} (attempt {}, was {})",
                                slot.name, slot.attempt, slot.why
                            );
                            slot.child = Some(child);
                            // Warning severity: the restart impairs the victim
                            // for Definition-7 accounting, exactly like an
                            // in-engine break-in would.
                            let _ = alarm_tx.send(Alarm {
                                node: slot.node,
                                round: round_watch.load(Ordering::Relaxed),
                                severity: Severity::Warning,
                                kind: "node_restarted".to_owned(),
                                detail: format!("{}; respawn attempt {}", slot.why, slot.attempt),
                            });
                        }
                        Err(e) => {
                            slot.done = true;
                            failures.push(format!("{}: respawn failed: {e}", slot.name));
                        }
                    }
                }

                if let Some(deadline) = shutdown_deadline {
                    if Instant::now() >= deadline {
                        for slot in slots.iter_mut().filter(|s| !s.done) {
                            if let Some(child) = slot.child.as_mut() {
                                let _ = child.kill();
                                let _ = child.wait();
                                failures.push(format!("{} hung; killed", slot.name));
                            }
                            slot.child = None;
                            slot.done = true;
                        }
                    }
                }
                if slots.iter().all(|s| s.done) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            (failures, restarts_total)
        })
    };

    let outcome = collector.run();
    stop.store(true, Ordering::Relaxed);
    let (child_failures, restarts_total) = supervisor.join().expect("supervisor thread");
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            eprintln!("collector failed: {e}");
            for f in &child_failures {
                eprintln!("  {f}");
            }
            exit(1)
        }
    };
    print_goodput_report(&sc, &outcome);
    print_observability_report(&outcome);
    if restarts_total > 0 {
        println!("supervisor: {restarts_total} restart(s) performed");
    }
    for f in &child_failures {
        eprintln!("child failure: {f}");
    }

    if let Some(path) = args.get("trace") {
        match &outcome.trace {
            Some(trace) => {
                std::fs::write(path, trace).unwrap_or_else(|e| {
                    eprintln!("cannot write trace to {path}: {e}");
                    exit(1)
                });
                println!("assembled cluster trace: {path} ({} lines)", trace.lines().count());
            }
            None => eprintln!("trace assembly incomplete; {path} not written"),
        }
    }

    if check {
        println!("\nchecking against the in-process engine...");
        let engine = sc.engine_run();
        // Kill schedules disturb the run the same way link chaos does: the
        // certified keys and safety properties must hold exactly, but
        // per-round output logs are no longer bit-comparable (a rejoined
        // node's log starts at its resume watermark).
        let disturbed = chaos || !kill_plan.kills.is_empty();
        let failures = if disturbed {
            check_chaos_outcome(&sc, &outcome, &engine)
        } else {
            // No chaos: the daemon must be bit-identical to the engine.
            let mut fails = check_chaos_outcome(&sc, &outcome, &engine);
            for id in NodeId::all(sc.n) {
                if outcome.outputs[id.idx()] != engine.outputs[id.idx()] {
                    fails.push(format!("{id} output log diverged from the engine"));
                }
            }
            // Golden-trace guarantee, daemon edition: the collector-assembled
            // trace, stripped of wall-clock fields, must be byte-identical to
            // the engine's flight recorder.
            use proauth_sim::telemetry::strip_wall_fields;
            match &outcome.trace {
                Some(trace) => {
                    if strip_wall_fields(trace) != strip_wall_fields(&sc.engine_trace()) {
                        fails.push("assembled trace diverged from the engine trace".to_owned());
                    }
                }
                None => fails.push("trace assembly did not complete".to_owned()),
            }
            fails
        };
        if failures.is_empty() {
            let accepted_engine = engine
                .outputs
                .iter()
                .flatten()
                .filter(|(_, e)| matches!(e, OutputEvent::Accepted { .. }))
                .count();
            let accepted_daemon = outcome
                .count_events(|e| matches!(e, OutputEvent::Accepted { .. }));
            println!(
                "check PASSED: certified keys match, zero forgeries, all nodes live \
                 (daemon accepted {accepted_daemon}, engine {accepted_engine}{})",
                if disturbed { ", chaos run" } else { ", bit-identical" }
            );
        } else {
            println!("check FAILED:");
            for f in &failures {
                println!("  {f}");
            }
            exit(1)
        }
    }
    if !child_failures.is_empty() {
        exit(1)
    }
    exit(0)
}
