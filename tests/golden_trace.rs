//! Golden-trace snapshot: the flight recorder's JSONL event sequence is a
//! pure function of `(config, seed, adversary)` — the engine variant must
//! not show through. One fixed scenario (n = 13, an active adversary mixing
//! break-ins and random drops with a chaos layer of scheduled
//! crash–restarts and chaotic delivery) is run on the serial engine and on
//! worker
//! pools of 1 and 4 threads; after stripping the `wall_*` fields (the only
//! nondeterministic bytes, by design) the three traces must be
//! **byte-identical**, and so must the three `SimResult`s.
//!
//! This is the observability analogue of `prop_engine_determinism`: it
//! pins not just the simulation outcome but the *recorded evidence* of it.

use proauth_adversary::{CorruptMode, MobileBreakins, RandomDropper};
use proauth_core::authenticator::HeartbeatApp;
use proauth_core::uls::{uls_schedule, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_sim::adversary::{BreakPlan, NetView, UlAdversary};
use proauth_sim::chaos::{ChaosConfig, ChaosNet};
use proauth_sim::clock::TimeView;
use proauth_sim::message::{Envelope, NodeId};
use proauth_sim::runner::{run_ul, SimConfig, SimResult};
use proauth_sim::telemetry::{memory_contents, strip_wall_fields, Telemetry};

const N: usize = 13;
const T: usize = 6;
const NORMAL: u64 = 8;
const UNITS: u64 = 2;

/// Break-ins (wipe) riding on top of seeded random message drops: exercises
/// the adversary-side counters (break_ins, wipes, dropped) while staying
/// fully deterministic for a fixed seed.
struct ActiveAdversary {
    breakins: MobileBreakins<HeartbeatApp>,
    dropper: RandomDropper,
}

impl UlAdversary for ActiveAdversary {
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        self.breakins.plan(view)
    }
    fn corrupt(&mut self, node: NodeId, state: &mut dyn std::any::Any, time: &TimeView) {
        self.breakins.corrupt(node, state, time);
    }
    fn deliver(&mut self, sent: &[Envelope], view: &NetView<'_>) -> Vec<Envelope> {
        self.dropper.deliver(sent, view)
    }
}

fn run_traced(parallel: bool, threads: usize) -> (SimResult, String) {
    let schedule = uls_schedule(NORMAL);
    let mut cfg = SimConfig::new(N, T, schedule);
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = schedule.unit_rounds * UNITS;
    cfg.seed = 7;
    cfg.parallel = parallel;
    cfg.threads = threads;
    let (telemetry, buf) = Telemetry::with_memory_sink();
    cfg.telemetry = telemetry;

    let group = Group::new(GroupId::Toy64);
    let make_node = |id: NodeId| {
        let c = UlsConfig::new(group.clone(), N, T);
        UlsNode::new(c, id, HeartbeatApp::default())
    };
    // Chaos on top of the break-ins and drops: scheduled crash–restarts plus
    // chaotic delivery (delay, duplication, reordering). Every knob at once —
    // the trace must still be a pure function of (config, seed, adversary).
    let chaos = ChaosConfig {
        crash_p: 0.01,
        boundary_crash_p: 0.5,
        restart_after: Some(6),
        max_down: 2,
        presumed_down: None,
        target: None,
        delay_p: 0.02,
        dup_p: 0.02,
        reorder: true,
    };
    let mut adv = ChaosNet::compile(
        ActiveAdversary {
            breakins: MobileBreakins::rotating(
                N,
                2,
                UNITS,
                schedule.unit_rounds,
                4,
                6,
                CorruptMode::Wipe,
            ),
            dropper: RandomDropper::new(0.02, 0xD20),
        },
        chaos,
        N,
        cfg.total_rounds,
        &schedule,
        0xC405,
    );
    let result = run_ul(cfg, make_node, &mut adv);
    let raw = memory_contents(&buf);
    (result, strip_wall_fields(&raw))
}

#[test]
fn golden_trace_is_engine_invariant() {
    let (serial_result, serial_trace) = run_traced(false, 0);
    let (pool1_result, pool1_trace) = run_traced(true, 1);
    let (pool4_result, pool4_trace) = run_traced(true, 4);

    assert_eq!(serial_result, pool1_result, "serial vs pool(1) results");
    assert_eq!(serial_result, pool4_result, "serial vs pool(4) results");

    // Byte-identical traces once wall-clock fields are stripped.
    assert_eq!(serial_trace, pool1_trace, "serial vs pool(1) trace");
    assert_eq!(serial_trace, pool4_trace, "serial vs pool(4) trace");

    // Structural sanity of the snapshot itself.
    let total_rounds = uls_schedule(NORMAL).unit_rounds * UNITS;
    let lines: Vec<&str> = serial_trace.lines().collect();
    assert!(
        lines[0].starts_with(&format!("{{\"ev\":\"run_start\",\"n\":{N},")),
        "first event is run_start: {}",
        lines[0]
    );
    assert!(
        lines.last().unwrap().starts_with("{\"ev\":\"run_end\","),
        "last event is run_end"
    );
    let count = |kind: &str| {
        let tag = format!("{{\"ev\":\"{kind}\",");
        lines.iter().filter(|l| l.starts_with(&tag)).count() as u64
    };
    assert_eq!(count("round_start"), total_rounds);
    assert_eq!(count("round_end"), total_rounds);
    assert_eq!(count("unit_end"), UNITS);

    // The active adversary left its marks in the trace and the stats.
    assert!(
        serial_trace.contains("\"adversary/break_ins\":"),
        "break-ins recorded in unit_end counters"
    );
    assert!(
        serial_trace.contains("\"adversary/wipes\":"),
        "wipes recorded in unit_end counters"
    );
    assert!(serial_result.stats.messages_dropped > 0, "dropper was live");

    // The chaos layer was live too, and its events are part of the golden
    // sequence: scheduled crashes, restarts, and delivery faults.
    assert!(serial_result.stats.crashes > 0, "chaos crashed somebody");
    assert!(serial_result.stats.restarts > 0, "and restarted them");
    assert!(
        serial_trace.contains("{\"ev\":\"node_crash\","),
        "crashes recorded in the trace"
    );
    assert!(
        serial_trace.contains("{\"ev\":\"node_restart\","),
        "restarts recorded in the trace"
    );
}
