//! Smoke tests at realistic group sizes: the whole stack is parameterized by
//! the Schnorr group, and everything that works on `Toy64` must work
//! unchanged on `S256`+ (only slower). The parallel execution mode keeps the
//! larger runs tolerable.

use proauth_core::authenticator::HeartbeatApp;
use proauth_core::uls::{sign_input, uls_schedule, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_sim::adversary::FaithfulUl;
use proauth_sim::message::OutputEvent;
use proauth_sim::runner::{run_ul_with_inputs, SimConfig};

#[test]
fn s256_unit_zero_sign_and_heartbeats() {
    // One time unit (no refresh) at 256-bit group size: setup DKG, unit-0
    // certificates, authenticated heartbeats, one threshold signature.
    let n = 5;
    let t = 2;
    let schedule = uls_schedule(12);
    let mut cfg = SimConfig::new(n, t, schedule);
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = 12; // stay within unit 0's normal phase
    cfg.seed = 77;
    cfg.parallel = true;
    let group = Group::new(GroupId::S256);
    let result = run_ul_with_inputs(
        cfg,
        |id| UlsNode::new(UlsConfig::new(group.clone(), n, t), id, HeartbeatApp::default()),
        &mut FaithfulUl,
        |_, round| (round == 2).then(|| sign_input(b"s256 smoke")),
    );
    let signed = result
        .outputs
        .iter()
        .flat_map(|l| l.iter())
        .filter(|(_, e)| matches!(e, OutputEvent::Signed { msg, .. } if msg == b"s256 smoke"))
        .count();
    assert_eq!(signed, n);
    let accepted = result
        .outputs
        .iter()
        .flat_map(|l| l.iter())
        .filter(|(_, e)| matches!(e, OutputEvent::Accepted { .. }))
        .count();
    assert!(accepted > 0, "heartbeats authenticated at 256-bit sizes");
    assert_eq!(result.stats.alerts.iter().sum::<u64>(), 0);
}

#[test]
#[ignore = "minutes-long: full refresh cycle at 256-bit group size; run with --ignored"]
fn s256_full_refresh_cycle() {
    let n = 5;
    let t = 2;
    let schedule = uls_schedule(12);
    let mut cfg = SimConfig::new(n, t, schedule);
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = schedule.unit_rounds * 2;
    cfg.seed = 78;
    cfg.parallel = true;
    let group = Group::new(GroupId::S256);
    let result = run_ul_with_inputs(
        cfg,
        |id| UlsNode::new(UlsConfig::new(group.clone(), n, t), id, HeartbeatApp::default()),
        &mut FaithfulUl,
        |_, _| None,
    );
    assert_eq!(result.stats.alerts.iter().sum::<u64>(), 0);
    assert!(result.final_operational.iter().all(|&b| b));
    // Heartbeats flowed after the refresh (unit-1 keys in force).
    let refresh_end = schedule.unit_rounds + schedule.refresh_rounds();
    let late_accepts = result
        .outputs
        .iter()
        .flat_map(|l| l.iter())
        .filter(|(round, e)| {
            *round > refresh_end && matches!(e, OutputEvent::Accepted { .. })
        })
        .count();
    assert!(late_accepts > 0);
}

#[test]
fn all_group_presets_load_and_sign() {
    use proauth_crypto::schnorr::SigningKey;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for id in [GroupId::Toy64, GroupId::S256, GroupId::S512, GroupId::S1024] {
        let group = Group::new(id);
        let sk = SigningKey::generate(&group, &mut rng);
        let sig = sk.sign(b"preset", &mut rng);
        assert!(sk.verify_key().verify(b"preset", &sig), "{id:?}");
    }
}
