//! Degradation sweep across the Definition-7 `(s,t)` boundary.
//!
//! The chaos engine ([`proauth_sim::chaos`]) makes faults a dial; this module
//! turns the dial. [`run_sweep`] runs the full ULS stack once per
//! [`Intensity`] step — same protocol, same seed discipline, increasing
//! fault pressure — and reports, per step, whether the paper's guarantees
//! held:
//!
//! * **sub-budget** (impairment stayed ≤ `t` per unit): no forgeries, every
//!   node operational at the end, and crash victims re-certified with
//!   bounded latency (the `engine/recovery_rounds` histogram);
//! * **over-budget** (impairment exceeded `t`): the run still completes —
//!   no panic, no hang — but degrades *loudly*: [`SweepPoint::alarm`] is
//!   raised and the report says which guarantee gave way.
//!
//! The sweep is deterministic: every fault decision comes from the compiled
//! [`proauth_sim::chaos::FaultSchedule`] or keyed per-round RNG, so a
//! `(config, seed)` pair
//! yields the same `Vec<SweepPoint>` on every run and every worker-pool
//! size.

use std::fmt;

use proauth_core::authenticator::HeartbeatApp;
use proauth_core::uls::{uls_schedule, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_pds::ideal::IdealChecker;
use proauth_sim::adversary::FaithfulUl;
use proauth_sim::chaos::{ChaosConfig, ChaosNet};
use proauth_sim::message::NodeId;
use proauth_sim::runner::{run_ul, SimConfig};
use proauth_sim::Telemetry;
use proauth_telemetry::HIST_BOUNDS_VALUE;

use crate::limits::LimitObserver;

/// One step of a degradation sweep: a crash budget plus delivery-fault
/// pressure. Steps with `max_down <= t` are intended to stay inside the
/// Definition-7 budget; steps with `max_down > t` deliberately cross it.
#[derive(Debug, Clone)]
pub struct Intensity {
    /// Human-readable step name for reports.
    pub label: &'static str,
    /// Cap on simultaneously crashed nodes (`ChaosConfig::max_down`).
    pub max_down: usize,
    /// Per-node per-round background crash probability.
    pub crash_p: f64,
    /// Crash probability at each refreshment phase boundary.
    pub boundary_crash_p: f64,
    /// Per-message delay probability.
    pub delay_p: f64,
    /// Per-message duplication probability.
    pub dup_p: f64,
    /// Shuffle delivery order within each inbox.
    pub reorder: bool,
}

impl Intensity {
    /// No faults at all — the sweep's control point.
    pub fn calm() -> Self {
        Intensity {
            label: "calm",
            max_down: 0,
            crash_p: 0.0,
            boundary_crash_p: 0.0,
            delay_p: 0.0,
            dup_p: 0.0,
            reorder: false,
        }
    }
}

/// A degradation sweep: one ULS network configuration run at each intensity.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Number of nodes.
    pub n: usize,
    /// Break-in / crash tolerance `t` (the budget boundary under test).
    pub t: usize,
    /// Time units to simulate per point.
    pub units: u64,
    /// Normal-phase rounds per unit (Fig. 1).
    pub normal_rounds: u64,
    /// Master seed; each point derives its schedule from this.
    pub seed: u64,
    /// Intensity steps, run in order.
    pub intensities: Vec<Intensity>,
}

impl SweepConfig {
    /// The standard ramp: calm control, a sub-budget point whose schedule is
    /// provably capped below `t` (crash victims' re-certification tails
    /// included), and an over-budget point that crosses the boundary.
    ///
    /// The sub-budget point uses crashes and reordering only: reordering
    /// within a round preserves each link's delivered multiset, so links
    /// stay reliable (Definition 4). Delay and duplication are *link*
    /// attacks — a delayed message is a drop-this-round, a duplicate is a
    /// replay — and spraying them across all links impairs arbitrary nodes,
    /// which is exactly the over-budget behavior, so those knobs only turn
    /// on past the boundary.
    pub fn boundary_ramp(n: usize, t: usize, units: u64, normal_rounds: u64, seed: u64) -> Self {
        SweepConfig {
            n,
            t,
            units,
            normal_rounds,
            seed,
            intensities: vec![
                Intensity::calm(),
                Intensity {
                    label: "sub-budget",
                    max_down: 1,
                    crash_p: 0.01,
                    boundary_crash_p: 0.35,
                    delay_p: 0.0,
                    dup_p: 0.0,
                    reorder: true,
                },
                Intensity {
                    label: "over-budget",
                    max_down: t + 1,
                    crash_p: 0.04,
                    boundary_crash_p: 1.0,
                    delay_p: 0.03,
                    dup_p: 0.03,
                    reorder: true,
                },
            ],
        }
    }
}

/// Observed outcome of one intensity step. The run *completing* at all is
/// part of the contract — a panicking node becomes a crash, never a crashed
/// sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPoint {
    /// Step name.
    pub label: &'static str,
    /// Crash budget the schedule was compiled with.
    pub max_down: usize,
    /// Whether this step was intended to stay inside the budget.
    pub intended_sub_budget: bool,
    /// Crash-stop events (scheduled + panics).
    pub crashes: u64,
    /// Panicking node steps converted to crashes.
    pub panics: u64,
    /// Restart events.
    pub restarts: u64,
    /// Total alerts raised across all nodes.
    pub alerts: u64,
    /// Forgery violations found by the ideal-signature checker.
    pub forgeries: usize,
    /// Peak per-unit impairment (Definition-7 ground truth).
    pub max_impaired: usize,
    /// `max_impaired <= t` — did the run actually stay inside the budget?
    pub within_budget: bool,
    /// Nodes operational at the end of the run.
    pub operational_nodes: usize,
    /// Total nodes.
    pub n: usize,
    /// Completed impairment spells (impaired → operational again).
    pub recoveries: u64,
    /// Median recovery latency in rounds (histogram bucket upper bound).
    pub recovery_p50_rounds: u64,
    /// p99 recovery latency in rounds (histogram bucket upper bound).
    pub recovery_p99_rounds: u64,
    /// Honest messages sent.
    pub messages_sent: u64,
    /// Messages delivered.
    pub messages_delivered: u64,
}

impl SweepPoint {
    /// True when the run degraded: the impairment budget was exceeded, some
    /// node ended non-operational, or a forgery slipped through. Over-budget
    /// steps are *expected* to raise this — silence past the boundary would
    /// mean the accounting is lying.
    pub fn alarm(&self) -> bool {
        !self.within_budget || self.operational_nodes < self.n || self.forgeries > 0
    }

    /// True when the step upheld the sub-budget contract: stayed within the
    /// budget, no forgeries, everyone operational at the end.
    pub fn healthy(&self) -> bool {
        self.within_budget && self.forgeries == 0 && self.operational_nodes == self.n
    }
}

impl fmt::Display for SweepPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12}: max_down {} | {} crashes ({} panics), {} restarts | \
             impaired peak {}/{} | {}/{} operational | {} alerts | {} forgeries",
            self.label,
            self.max_down,
            self.crashes,
            self.panics,
            self.restarts,
            self.max_impaired,
            self.n,
            self.operational_nodes,
            self.n,
            self.alerts,
            self.forgeries,
        )?;
        if self.recoveries > 0 {
            write!(
                f,
                " | recovery p50 ≤{} p99 ≤{} rounds ({} spells)",
                self.recovery_p50_rounds, self.recovery_p99_rounds, self.recoveries
            )?;
        }
        let verdict = if self.alarm() {
            "ALARM: degraded"
        } else {
            "ok: guarantees held"
        };
        write!(f, " | {verdict}")
    }
}

/// Run the full sweep. Each point runs the ULS stack (`UlsNode` over the
/// toy group with a heartbeat application) under a compiled chaos schedule,
/// wrapped in a [`LimitObserver`] for Definition-7 ground truth.
pub fn run_sweep(cfg: &SweepConfig) -> Vec<SweepPoint> {
    cfg.intensities
        .iter()
        .map(|intensity| run_point(cfg, intensity))
        .collect()
}

fn run_point(cfg: &SweepConfig, intensity: &Intensity) -> SweepPoint {
    let schedule = uls_schedule(cfg.normal_rounds);
    let mut sim = SimConfig::new(cfg.n, cfg.t, schedule);
    sim.setup_rounds = SETUP_ROUNDS;
    sim.total_rounds = schedule.unit_rounds * cfg.units;
    sim.seed = cfg.seed;
    let tele = Telemetry::enabled();
    sim.telemetry = tele.clone();

    // Restart a few rounds after the crash; a restarted node still waits for
    // the next refresh end to re-certify. Sub-budget points widen the
    // compiler's impairment presumption to cover that whole tail, so the
    // compiled schedule provably never impairs more than `max_down` nodes in
    // any unit.
    let restart_after = schedule.refresh_rounds() + 2;
    let chaos = ChaosConfig {
        crash_p: intensity.crash_p,
        boundary_crash_p: intensity.boundary_crash_p,
        restart_after: Some(restart_after),
        max_down: intensity.max_down,
        presumed_down: if intensity.max_down <= cfg.t {
            Some(restart_after + 2 * schedule.unit_rounds)
        } else {
            None
        },
        delay_p: intensity.delay_p,
        dup_p: intensity.dup_p,
        reorder: intensity.reorder,
        target: None,
    };
    let mut adv = LimitObserver::new(ChaosNet::compile(
        FaithfulUl,
        chaos,
        cfg.n,
        sim.total_rounds,
        &schedule,
        cfg.seed ^ 0xC4A0_5EED,
    ));

    let (n, t) = (cfg.n, cfg.t);
    let group = Group::new(GroupId::Toy64);
    let make_node =
        move |id: NodeId| UlsNode::new(UlsConfig::new(group.clone(), n, t), id, HeartbeatApp::default());
    let result = run_ul(sim, make_node, &mut adv);

    let forgeries = IdealChecker::new(cfg.t)
        .check_no_forgery(&result.outputs, &[])
        .len();
    let (recoveries, p50, p99) = tele
        .snapshot()
        .as_ref()
        .and_then(|snap| snap.value_hists.get("engine/recovery_rounds").cloned())
        .map_or((0, 0, 0), |h| {
            (
                h.total,
                h.quantile_bounded(&HIST_BOUNDS_VALUE, 0.50),
                h.quantile_bounded(&HIST_BOUNDS_VALUE, 0.99),
            )
        });
    let max_impaired = adv.max_impaired();

    SweepPoint {
        label: intensity.label,
        max_down: intensity.max_down,
        intended_sub_budget: intensity.max_down <= cfg.t,
        crashes: result.stats.crashes,
        panics: result.stats.panics,
        restarts: result.stats.restarts,
        alerts: result.stats.alerts.iter().sum(),
        forgeries,
        max_impaired,
        within_budget: max_impaired <= cfg.t,
        operational_nodes: result.final_operational.iter().filter(|&&b| b).count(),
        n: cfg.n,
        recoveries,
        recovery_p50_rounds: p50,
        recovery_p99_rounds: p99,
        messages_sent: result.stats.messages_sent,
        messages_delivered: result.stats.messages_delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calm_point_is_clean() {
        let cfg = SweepConfig {
            n: 5,
            t: 2,
            units: 2,
            normal_rounds: 8,
            seed: 7,
            intensities: vec![Intensity::calm()],
        };
        let points = run_sweep(&cfg);
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert_eq!(p.crashes, 0);
        assert_eq!(p.restarts, 0);
        assert_eq!(p.max_impaired, 0);
        assert!(p.healthy());
        assert!(!p.alarm());
    }

    #[test]
    fn sweep_is_deterministic() {
        let cfg = SweepConfig::boundary_ramp(5, 2, 3, 8, 42);
        let a = run_sweep(&cfg);
        let b = run_sweep(&cfg);
        assert_eq!(a, b);
    }
}
