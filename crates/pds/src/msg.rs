//! Wire messages of the bundled AL-model PDS (threshold Schnorr with
//! proactive refresh), plus the canonical signing payload.

use proauth_crypto::feldman::Commitments;
use proauth_primitives::bigint::BigUint;
use proauth_primitives::sha256;
use proauth_primitives::wire::{Decode, Encode, Reader, WireError, Writer};

/// Session identifier: hash of the `(msg, unit)` pair.
pub type Sid = [u8; 32];

/// Computes the session id for a sign request.
pub fn sid_for(msg: &[u8], unit: u64) -> Sid {
    sha256::hash_parts("proauth/pds/sid", &[msg, &unit.to_be_bytes()])
}

/// Computes a session id bound to an instance scope, so concurrent PDS
/// instances (per-cluster locals and the top level of the §6 hierarchy)
/// signing the same `(msg, unit)` cannot cross-feed sessions. The empty
/// scope is the flat instance and matches [`sid_for`] bit-for-bit.
pub fn sid_for_scoped(scope: &[u8], msg: &[u8], unit: u64) -> Sid {
    if scope.is_empty() {
        return sid_for(msg, unit);
    }
    sha256::hash_parts("proauth/pds/sid/scoped", &[scope, msg, &unit.to_be_bytes()])
}

/// The canonical bytes actually signed for `(msg, unit)` — the time-unit
/// binding the ideal process requires (§3.1: the database stores `(m, u)`).
pub fn signing_payload(msg: &[u8], unit: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_bytes(b"proauth/pds/signed-message/v1");
    w.put_bytes(msg);
    w.put_u64(unit);
    w.into_bytes()
}

/// Protocol messages of the bundled AL-model PDS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlsMsg {
    /// A signer announces participation in a session and its nonce commitment.
    SignInit {
        /// Session id.
        sid: Sid,
        /// Message to sign.
        msg: Vec<u8>,
        /// Time unit of the request.
        unit: u64,
        /// Nonce commitment `R_i`.
        nonce: BigUint,
    },
    /// A fresh nonce commitment for a retry attempt.
    SignRetryNonce {
        /// Session id.
        sid: Sid,
        /// Attempt number (≥ 1).
        attempt: u32,
        /// Fresh nonce commitment.
        nonce: BigUint,
    },
    /// A partial signature.
    SignPartial {
        /// Session id.
        sid: Sid,
        /// Attempt this partial belongs to.
        attempt: u32,
        /// The partial `z_i`.
        z: BigUint,
    },
    /// A completed threshold signature, gossiped to all session members.
    SignDone {
        /// Session id.
        sid: Sid,
        /// Challenge scalar.
        e: BigUint,
        /// Response scalar.
        s: BigUint,
    },
    /// A zero-sharing refresh dealing (commitments public, share private).
    RfrDeal {
        /// Refresh target unit.
        unit: u64,
        /// Feldman commitments (must commit to zero).
        commitments: Commitments,
        /// The receiver's share of the dealing.
        share: BigUint,
    },
    /// Echo of the commitments received from a dealer (consistency: nodes
    /// adopt the commitment vector echoed by `n−t` peers, so a two-faced
    /// dealer cannot split honest nodes, and a node that received a bad copy
    /// can still adopt the majority one).
    RfrEcho {
        /// Refresh target unit.
        unit: u64,
        /// The dealer being echoed.
        dealer: u32,
        /// The dealer's commitments as received.
        commitments: Commitments,
    },
    /// Complaint: the dealer's share for me did not verify.
    RfrComplaint {
        /// Refresh target unit.
        unit: u64,
        /// The accused dealer.
        dealer: u32,
    },
    /// The dealer's public response to a complaint: the complainer's share.
    RfrReveal {
        /// Refresh target unit.
        unit: u64,
        /// Whose share is being revealed.
        complainer: u32,
        /// The revealed share.
        share: BigUint,
    },
    /// Announcement that this node lost its share and needs recovery.
    RecoveryNeed {
        /// Refresh target unit.
        unit: u64,
    },
    /// A blinding dealing for share recovery (root at `target`).
    RecoveryBlind {
        /// Refresh target unit.
        unit: u64,
        /// The recovering node.
        target: u32,
        /// Commitments to the blinding polynomial.
        commitments: Commitments,
        /// The receiver's blinding share.
        share: BigUint,
    },
    /// A key-generation dealing (setup phase only, adversary-free).
    GenDeal {
        /// Feldman commitments to the dealer's random polynomial.
        commitments: Commitments,
        /// The receiver's share of the dealing.
        share: BigUint,
    },
    /// A helper's blinded share evaluation for the recovering node.
    RecoveryValue {
        /// Refresh target unit.
        unit: u64,
        /// The recovering node.
        target: u32,
        /// Sorted dealer ids of the blindings this helper applied.
        used: Vec<u32>,
        /// `v_j = x_j + Σ d_h(j)`.
        value: BigUint,
        /// The helper's view of the current share-key vector (public data
        /// the recovering node lost; accepted on `t+1` identical reports).
        share_keys: Vec<BigUint>,
    },
}

impl AlsMsg {
    fn tag(&self) -> u8 {
        match self {
            AlsMsg::SignInit { .. } => 1,
            AlsMsg::SignRetryNonce { .. } => 2,
            AlsMsg::SignPartial { .. } => 3,
            AlsMsg::SignDone { .. } => 4,
            AlsMsg::RfrDeal { .. } => 5,
            AlsMsg::RfrEcho { .. } => 6,
            AlsMsg::RfrComplaint { .. } => 7,
            AlsMsg::RfrReveal { .. } => 8,
            AlsMsg::RecoveryNeed { .. } => 9,
            AlsMsg::RecoveryBlind { .. } => 10,
            AlsMsg::RecoveryValue { .. } => 11,
            AlsMsg::GenDeal { .. } => 12,
        }
    }
}

impl Encode for AlsMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.tag());
        match self {
            AlsMsg::SignInit {
                sid,
                msg,
                unit,
                nonce,
            } => {
                sid.encode(w);
                msg.encode(w);
                w.put_u64(*unit);
                nonce.encode(w);
            }
            AlsMsg::SignRetryNonce {
                sid,
                attempt,
                nonce,
            } => {
                sid.encode(w);
                w.put_u32(*attempt);
                nonce.encode(w);
            }
            AlsMsg::SignPartial { sid, attempt, z } => {
                sid.encode(w);
                w.put_u32(*attempt);
                z.encode(w);
            }
            AlsMsg::SignDone { sid, e, s } => {
                sid.encode(w);
                e.encode(w);
                s.encode(w);
            }
            AlsMsg::RfrDeal {
                unit,
                commitments,
                share,
            } => {
                w.put_u64(*unit);
                commitments.encode(w);
                share.encode(w);
            }
            AlsMsg::RfrEcho {
                unit,
                dealer,
                commitments,
            } => {
                w.put_u64(*unit);
                w.put_u32(*dealer);
                commitments.encode(w);
            }
            AlsMsg::RfrComplaint { unit, dealer } => {
                w.put_u64(*unit);
                w.put_u32(*dealer);
            }
            AlsMsg::RfrReveal {
                unit,
                complainer,
                share,
            } => {
                w.put_u64(*unit);
                w.put_u32(*complainer);
                share.encode(w);
            }
            AlsMsg::RecoveryNeed { unit } => {
                w.put_u64(*unit);
            }
            AlsMsg::RecoveryBlind {
                unit,
                target,
                commitments,
                share,
            } => {
                w.put_u64(*unit);
                w.put_u32(*target);
                commitments.encode(w);
                share.encode(w);
            }
            AlsMsg::GenDeal {
                commitments,
                share,
            } => {
                commitments.encode(w);
                share.encode(w);
            }
            AlsMsg::RecoveryValue {
                unit,
                target,
                used,
                value,
                share_keys,
            } => {
                w.put_u64(*unit);
                w.put_u32(*target);
                used.encode(w);
                value.encode(w);
                share_keys.encode(w);
            }
        }
    }
}

impl Decode for AlsMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.get_u8()?;
        Ok(match tag {
            1 => AlsMsg::SignInit {
                sid: <[u8; 32]>::decode(r)?,
                msg: Vec::<u8>::decode(r)?,
                unit: r.get_u64()?,
                nonce: BigUint::decode(r)?,
            },
            2 => AlsMsg::SignRetryNonce {
                sid: <[u8; 32]>::decode(r)?,
                attempt: r.get_u32()?,
                nonce: BigUint::decode(r)?,
            },
            3 => AlsMsg::SignPartial {
                sid: <[u8; 32]>::decode(r)?,
                attempt: r.get_u32()?,
                z: BigUint::decode(r)?,
            },
            4 => AlsMsg::SignDone {
                sid: <[u8; 32]>::decode(r)?,
                e: BigUint::decode(r)?,
                s: BigUint::decode(r)?,
            },
            5 => AlsMsg::RfrDeal {
                unit: r.get_u64()?,
                commitments: Commitments::decode(r)?,
                share: BigUint::decode(r)?,
            },
            6 => AlsMsg::RfrEcho {
                unit: r.get_u64()?,
                dealer: r.get_u32()?,
                commitments: Commitments::decode(r)?,
            },
            7 => AlsMsg::RfrComplaint {
                unit: r.get_u64()?,
                dealer: r.get_u32()?,
            },
            8 => AlsMsg::RfrReveal {
                unit: r.get_u64()?,
                complainer: r.get_u32()?,
                share: BigUint::decode(r)?,
            },
            9 => AlsMsg::RecoveryNeed { unit: r.get_u64()? },
            10 => AlsMsg::RecoveryBlind {
                unit: r.get_u64()?,
                target: r.get_u32()?,
                commitments: Commitments::decode(r)?,
                share: BigUint::decode(r)?,
            },
            11 => AlsMsg::RecoveryValue {
                unit: r.get_u64()?,
                target: r.get_u32()?,
                used: Vec::<u32>::decode(r)?,
                value: BigUint::decode(r)?,
                share_keys: Vec::<BigUint>::decode(r)?,
            },
            12 => AlsMsg::GenDeal {
                commitments: Commitments::decode(r)?,
                share: BigUint::decode(r)?,
            },
            t => return Err(WireError::InvalidTag(t)),
        })
    }
}

/// Hashes a commitment vector for echo comparison.
pub fn commitment_hash(c: &Commitments) -> [u8; 32] {
    sha256::Sha256::digest(&c.to_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proauth_crypto::group::{Group, GroupId};
    use proauth_crypto::shamir::Polynomial;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_commitments() -> Commitments {
        let group = Group::new(GroupId::Toy64);
        let mut rng = StdRng::seed_from_u64(5);
        let poly = Polynomial::random(&group, 2, &mut rng);
        Commitments::from_polynomial(&group, &poly)
    }

    #[test]
    fn all_variants_roundtrip() {
        let c = sample_commitments();
        let msgs = vec![
            AlsMsg::SignInit {
                sid: [1; 32],
                msg: b"m".to_vec(),
                unit: 3,
                nonce: BigUint::from_u64(77),
            },
            AlsMsg::SignRetryNonce {
                sid: [2; 32],
                attempt: 1,
                nonce: BigUint::from_u64(88),
            },
            AlsMsg::SignPartial {
                sid: [3; 32],
                attempt: 0,
                z: BigUint::from_u64(99),
            },
            AlsMsg::SignDone {
                sid: [4; 32],
                e: BigUint::from_u64(1),
                s: BigUint::from_u64(2),
            },
            AlsMsg::RfrDeal {
                unit: 2,
                commitments: c.clone(),
                share: BigUint::from_u64(5),
            },
            AlsMsg::RfrEcho {
                unit: 2,
                dealer: 4,
                commitments: c.clone(),
            },
            AlsMsg::RfrComplaint { unit: 2, dealer: 4 },
            AlsMsg::RfrReveal {
                unit: 2,
                complainer: 3,
                share: BigUint::from_u64(6),
            },
            AlsMsg::RecoveryNeed { unit: 2 },
            AlsMsg::RecoveryBlind {
                unit: 2,
                target: 5,
                commitments: c.clone(),
                share: BigUint::from_u64(7),
            },
            AlsMsg::RecoveryValue {
                unit: 2,
                target: 5,
                used: vec![1, 2, 3],
                value: BigUint::from_u64(8),
                share_keys: vec![BigUint::from_u64(10), BigUint::from_u64(11)],
            },
            AlsMsg::GenDeal {
                commitments: c.clone(),
                share: BigUint::from_u64(12),
            },
        ];
        for m in msgs {
            let decoded = AlsMsg::from_bytes(&m.to_bytes()).unwrap();
            assert_eq!(decoded, m);
        }
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(AlsMsg::from_bytes(&[200]).is_err());
        assert!(AlsMsg::from_bytes(&[]).is_err());
    }

    #[test]
    fn sid_binds_msg_and_unit() {
        assert_ne!(sid_for(b"m", 1), sid_for(b"m", 2));
        assert_ne!(sid_for(b"m", 1), sid_for(b"n", 1));
        assert_eq!(sid_for(b"m", 1), sid_for(b"m", 1));
    }

    #[test]
    fn signing_payload_binds_unit() {
        assert_ne!(signing_payload(b"m", 1), signing_payload(b"m", 2));
    }
}
