//! Engine determinism across execution strategies.
//!
//! The persistent worker pool must be invisible in results: for any seed,
//! any worker count, and an *active* adversary (break-ins, memory wipes,
//! message drops, injections), `run_ul`/`run_al` must produce bit-identical
//! `SimResult`s. This is the load-bearing property behind `SimConfig::
//! parallel` — per-node state is disjoint, per-(node, round) randomness is
//! derived outside execution order, and slot results merge in `NodeId`
//! order.

use proauth_sim::adversary::{AlAdversary, BreakPlan, NetView, UlAdversary};
use proauth_sim::clock::{Schedule, TimeView};
use proauth_sim::message::{Envelope, NodeId, OutputEvent};
use proauth_sim::process::{Process, RoundCtx, SetupCtx};
use proauth_sim::runner::{run_al, run_ul, SimConfig, SimResult};
use proauth_sim::telemetry::{memory_contents, strip_wall_fields, Telemetry};
use std::any::Any;

/// A node whose behaviour is sensitive to everything that could diverge:
/// inbox contents, per-round randomness, ROM, and accumulated state.
struct Chatter {
    counter: u64,
}

impl Process for Chatter {
    fn on_setup_round(&mut self, ctx: &mut SetupCtx<'_>) {
        if ctx.setup_round == 0 {
            ctx.rom.write("tag", vec![ctx.me.0 as u8]);
        }
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
        use rand::RngCore;
        self.counter = self
            .counter
            .wrapping_add(ctx.inbox.iter().map(|e| e.payload.len() as u64).sum());
        // External inputs (the client workload channel) must be just as
        // engine-invariant as inbox traffic.
        if let Some(input) = ctx.input {
            self.counter = input
                .iter()
                .fold(self.counter, |c, &b| c.wrapping_mul(31).wrapping_add(b as u64));
        }
        let tag = (ctx.rng.next_u64() % 251) as u8;
        let rom = ctx.rom.read("tag").map_or(0, |v| v[0]);
        ctx.send_all(vec![tag, (self.counter % 256) as u8, rom]);
        if self.counter % 7 == 3 {
            ctx.emit(OutputEvent::Alert);
        }
    }

    fn state_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Active UL adversary: rotates break-ins through the nodes, wipes broken
/// memory, crash-stops and restarts a second victim, drops a deterministic
/// subset of messages, and injects traffic in broken nodes' names.
struct Chaos;

fn rotating_target(round: u64, n: usize) -> NodeId {
    NodeId((round / 8 % n as u64) as u32 + 1)
}

/// A second victim, offset from the break-in target, for crash–restart.
fn crash_target(round: u64, n: usize) -> NodeId {
    NodeId::from_idx((rotating_target(round, n).idx() + 3) % n)
}

impl Chaos {
    fn chaos_plan(view: &NetView<'_>) -> BreakPlan {
        match view.time.round % 8 {
            1 => BreakPlan::break_into([rotating_target(view.time.round, view.n)]),
            2 => BreakPlan::crash([crash_target(view.time.round, view.n)]),
            5 => BreakPlan::leave([rotating_target(view.time.round, view.n)]),
            6 => BreakPlan::restart([crash_target(view.time.round, view.n)]),
            _ => BreakPlan::none(),
        }
    }

    fn chaos_corrupt(state: &mut dyn Any) {
        if let Some(node) = state.downcast_mut::<Chatter>() {
            node.counter = node.counter.wrapping_mul(3).wrapping_add(1);
        }
    }
}

impl UlAdversary for Chaos {
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        Self::chaos_plan(view)
    }

    fn corrupt(&mut self, _node: NodeId, state: &mut dyn Any, _time: &TimeView) {
        Self::chaos_corrupt(state);
    }

    fn deliver(&mut self, sent: &[Envelope], view: &NetView<'_>) -> Vec<Envelope> {
        // Drop every 5th message; inject one in a broken node's name.
        let mut out: Vec<Envelope> = sent
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 5 != 4)
            .map(|(_, e)| e.clone())
            .collect();
        if let Some(b) = view.broken.iter().position(|&x| x) {
            let from = NodeId::from_idx(b);
            let to = NodeId::from_idx((b + 1) % view.n);
            out.push(Envelope::new(from, to, vec![0xEE, view.time.round as u8]));
        }
        out
    }
}

impl AlAdversary for Chaos {
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        Self::chaos_plan(view)
    }

    fn corrupt(&mut self, _node: NodeId, state: &mut dyn Any, _time: &TimeView) {
        Self::chaos_corrupt(state);
    }

    fn broken_sends(&mut self, _honest_sent: &[Envelope], view: &NetView<'_>) -> Vec<Envelope> {
        match view.broken.iter().position(|&x| x) {
            Some(b) => {
                let from = NodeId::from_idx(b);
                let to = NodeId::from_idx((b + 1) % view.n);
                vec![Envelope::new(from, to, vec![0xA1, view.time.round as u8])]
            }
            None => Vec::new(),
        }
    }
}

fn cfg(seed: u64, n: usize, parallel: bool, threads: usize) -> SimConfig {
    let mut c = SimConfig::new(n, 2, Schedule::new(12, 3, 3));
    c.seed = seed;
    c.total_rounds = 30;
    c.setup_rounds = 2;
    c.parallel = parallel;
    c.threads = threads;
    c
}

fn assert_identical(a: &SimResult, b: &SimResult, label: &str) {
    assert_eq!(a.outputs, b.outputs, "{label}: outputs diverged");
    assert_eq!(a.stats, b.stats, "{label}: stats diverged");
    assert_eq!(
        a.final_operational, b.final_operational,
        "{label}: operational set diverged"
    );
    assert_eq!(a.roms, b.roms, "{label}: ROMs diverged");
    assert_eq!(
        a.adversary_output, b.adversary_output,
        "{label}: adversary output diverged"
    );
}

#[test]
fn ul_results_identical_for_all_pool_sizes() {
    let n = 8;
    for seed in 0..16u64 {
        let serial = run_ul(cfg(seed, n, false, 0), |_| Chatter { counter: 0 }, &mut Chaos);
        for threads in [1usize, 2, 8] {
            let pooled = run_ul(
                cfg(seed, n, true, threads),
                |_| Chatter { counter: 0 },
                &mut Chaos,
            );
            assert_identical(&serial, &pooled, &format!("ul seed {seed} threads {threads}"));
        }
    }
}

#[test]
fn al_results_identical_for_all_pool_sizes() {
    let n = 8;
    for seed in 0..16u64 {
        let serial = run_al(cfg(seed, n, false, 0), |_| Chatter { counter: 0 }, &mut Chaos);
        for threads in [1usize, 2, 8] {
            let pooled = run_al(
                cfg(seed, n, true, threads),
                |_| Chatter { counter: 0 },
                &mut Chaos,
            );
            assert_identical(&serial, &pooled, &format!("al seed {seed} threads {threads}"));
        }
    }
}

#[test]
fn pooled_ground_truth_matches_serial_at_large_n() {
    // n = 32 crosses POOLED_GROUND_TRUTH_MIN_N, exercising the pooled
    // reliability-matrix and operational-induction paths as well.
    let n = 32;
    for seed in [7u64, 42] {
        let serial = run_ul(cfg(seed, n, false, 0), |_| Chatter { counter: 0 }, &mut Chaos);
        let pooled = run_ul(cfg(seed, n, true, 4), |_| Chatter { counter: 0 }, &mut Chaos);
        assert_identical(&serial, &pooled, &format!("large-n seed {seed}"));
    }
}

#[test]
fn ul_results_and_traces_identical_with_telemetry_on() {
    // Telemetry must be invisible in results AND itself deterministic: for
    // every pool size the SimResult matches the telemetry-off serial run
    // bit-for-bit, and the recorded JSONL trace (minus wall-clock fields)
    // matches the serial-with-telemetry trace byte-for-byte.
    let n = 8;
    for seed in [0u64, 3, 11] {
        let baseline = run_ul(cfg(seed, n, false, 0), |_| Chatter { counter: 0 }, &mut Chaos);
        let traced = |parallel: bool, threads: usize| {
            let mut c = cfg(seed, n, parallel, threads);
            let (tele, buf) = Telemetry::with_memory_sink();
            c.telemetry = tele;
            let result = run_ul(c, |_| Chatter { counter: 0 }, &mut Chaos);
            (result, strip_wall_fields(&memory_contents(&buf)))
        };
        let (serial, serial_trace) = traced(false, 0);
        assert_identical(
            &baseline,
            &serial,
            &format!("seed {seed}: telemetry on vs off"),
        );
        assert!(!serial_trace.is_empty(), "trace recorded");
        for threads in [1usize, 2, 8] {
            let (pooled, pooled_trace) = traced(true, threads);
            assert_identical(
                &baseline,
                &pooled,
                &format!("seed {seed} threads {threads}: telemetry on"),
            );
            assert_eq!(
                serial_trace, pooled_trace,
                "seed {seed} threads {threads}: trace diverged"
            );
        }
    }
}

#[test]
fn results_identical_with_workload_generator_active() {
    // The open-loop client workload feeds per-(node, round) inputs into the
    // engine; with chaos still active, serial and every pool size must stay
    // bit-identical — in both models.
    use proauth_sim::runner::{run_al_with_inputs, run_ul_with_inputs};
    use proauth_sim::workload::{Workload, WorkloadConfig};
    let n = 8;
    for seed in [0u64, 3, 11] {
        let wl = Workload::new(WorkloadConfig::with_rate(seed ^ 0xB00B5, 2_500), n);
        let inputs = |id: NodeId, round: u64| wl.input(id, round);
        let serial_al = run_al_with_inputs(
            cfg(seed, n, false, 0),
            |_| Chatter { counter: 0 },
            &mut Chaos,
            inputs,
        );
        let serial_ul = run_ul_with_inputs(
            cfg(seed, n, false, 0),
            |_| Chatter { counter: 0 },
            &mut Chaos,
            inputs,
        );
        for threads in [1usize, 8] {
            let pooled_al = run_al_with_inputs(
                cfg(seed, n, true, threads),
                |_| Chatter { counter: 0 },
                &mut Chaos,
                inputs,
            );
            assert_identical(
                &serial_al,
                &pooled_al,
                &format!("workload al seed {seed} threads {threads}"),
            );
            let pooled_ul = run_ul_with_inputs(
                cfg(seed, n, true, threads),
                |_| Chatter { counter: 0 },
                &mut Chaos,
                inputs,
            );
            assert_identical(
                &serial_ul,
                &pooled_ul,
                &format!("workload ul seed {seed} threads {threads}"),
            );
        }
    }
}

#[test]
fn transcripts_identical_when_recorded() {
    let n = 6;
    let mk = |parallel: bool| {
        let mut c = cfg(3, n, parallel, 2);
        c.record_transcript = true;
        run_ul(c, |_| Chatter { counter: 0 }, &mut Chaos)
    };
    let (serial, pooled) = (mk(false), mk(true));
    let (ts, tp) = (
        serial.transcript.expect("serial transcript"),
        pooled.transcript.expect("pooled transcript"),
    );
    assert_eq!(ts.len(), tp.len());
    for (a, b) in ts.iter().zip(&tp) {
        assert_eq!(a.sent, b.sent);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.broken, b.broken);
        assert_eq!(a.operational, b.operational);
    }
}

#[test]
fn panicking_node_is_deterministic_across_pool_sizes() {
    // A node step that panics is caught and converted into a crash-stop by
    // the engine — in the slot, before results merge — so a panic must be
    // exactly as deterministic as any other fault, for every pool size.
    use proauth_sim::chaos::PanicOn;
    let n = 8;
    let make = |_: NodeId| PanicOn::at(Chatter { counter: 0 }, NodeId(4), 9);
    for seed in [0u64, 5, 13] {
        let serial = run_ul(cfg(seed, n, false, 0), make, &mut Chaos);
        assert_eq!(serial.stats.panics, 1, "seed {seed}: panic converted");
        assert!(serial.stats.crashes >= 1);
        assert!(serial.stats.crashed_rounds[NodeId(4).idx()] > 0);
        for threads in [1usize, 2, 8] {
            let pooled = run_ul(cfg(seed, n, true, threads), make, &mut Chaos);
            assert_identical(
                &serial,
                &pooled,
                &format!("panic seed {seed} threads {threads}"),
            );
            assert_eq!(serial.stats, pooled.stats);
        }
    }
}
