//! Break-in and recovery walkthrough — the scenario from the paper's
//! introduction: a node is broken into, its cryptographic keys are exposed
//! *and erased*, and yet it regains authenticated communication at the next
//! proactive refreshment phase with help from its peers.
//!
//! ```text
//! cargo run -p proauth-examples --bin break_in_recovery
//! ```

use proauth_core::authenticator::HeartbeatApp;
use proauth_core::uls::{uls_schedule, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_sim::adversary::{BreakPlan, NetView, UlAdversary};
use proauth_sim::clock::TimeView;
use proauth_sim::message::{Envelope, NodeId, OutputEvent};
use proauth_sim::runner::{run_ul, SimConfig};

/// Breaks into the victim early in unit 0, wipes every volatile secret
/// (local signing keys, PDS share, in-flight state), then leaves.
struct WipingBurglar {
    victim: NodeId,
}

impl UlAdversary for WipingBurglar {
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        match view.time.round {
            4 => BreakPlan::break_into([self.victim]),
            8 => BreakPlan::leave([self.victim]),
            _ => BreakPlan::none(),
        }
    }

    fn corrupt(&mut self, _node: NodeId, state: &mut dyn std::any::Any, time: &TimeView) {
        if let Some(node) = state.downcast_mut::<UlsNode<HeartbeatApp>>() {
            node.corrupt_wipe();
            if time.round == 4 {
                println!("  [adversary] round 4: broke into N3, wiped keys and PDS share");
            }
        }
    }

    fn deliver(&mut self, sent: &[Envelope], _view: &NetView<'_>) -> Vec<Envelope> {
        sent.to_vec()
    }
}

fn main() {
    let n = 5;
    let t = 2;
    let victim = NodeId(3);
    let schedule = uls_schedule(12);
    let mut cfg = SimConfig::new(n, t, schedule);
    cfg.setup_rounds = SETUP_ROUNDS;
    cfg.total_rounds = schedule.unit_rounds * 3;
    cfg.seed = 7;

    println!("break-in & recovery: n = {n}, t = {t}, victim = {victim}");
    println!("timeline:");

    let group = Group::new(GroupId::Toy64);
    let result = run_ul(
        cfg,
        |id| UlsNode::new(UlsConfig::new(group.clone(), n, t), id, HeartbeatApp::default()),
        &mut WipingBurglar { victim },
    );

    // Reconstruct the victim's story from its output log.
    for (round, ev) in &result.outputs[victim.idx()] {
        let unit = schedule.unit_of(*round);
        match ev {
            OutputEvent::Compromised => {
                println!("  [N3] round {round} (unit {unit}): COMPROMISED — adversary inside")
            }
            OutputEvent::Recovered => {
                println!("  [N3] round {round} (unit {unit}): RECOVERED — s-operational again")
            }
            OutputEvent::Alert => {
                println!("  [N3] round {round} (unit {unit}): ALERT raised")
            }
            _ => {}
        }
    }

    // When did the network hear from N3 again?
    let refresh_end = schedule.unit_rounds + schedule.refresh_rounds();
    let first_accept_after = result
        .outputs
        .iter()
        .enumerate()
        .filter(|(idx, _)| *idx != victim.idx())
        .flat_map(|(_, log)| log.iter())
        .filter_map(|(round, ev)| match ev {
            OutputEvent::Accepted { from, .. } if *from == victim && *round >= refresh_end => {
                Some(*round)
            }
            _ => None,
        })
        .min();

    match first_accept_after {
        Some(round) => println!(
            "  [net] round {round} (unit {}): first authenticated message from N3 accepted \
             after recovery",
            schedule.unit_of(round)
        ),
        None => println!("  [net] N3 never re-authenticated (unexpected!)"),
    }

    println!(
        "\nwhat happened at the unit-1 refresh: N3 announced a fresh key in the clear; the \
         other nodes ran PARTIAL-AGREEMENT on it, threshold-signed a certificate with their \
         PDS shares, and DISPERSEd it back; in Part II they jointly rebuilt N3's share of \
         the signing key (blinded, so nobody learned it) — all without any trusted party."
    );
    assert!(result.final_operational[victim.idx()]);
}
