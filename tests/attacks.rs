//! Cross-crate attack integration tests — the paper's headline claims under
//! real adversaries:
//!
//! * emulation/no-forgery while the adversary is `(t,t)`-limited
//!   (Theorem 14 / Theorem 30);
//! * awareness: an impersonated node alerts in the same time unit
//!   (Proposition 31), including under the certification-hijack attack the
//!   introduction motivates;
//! * replay resistance and injection tolerance (§5.1).

use proauth_adversary::{Hijacker, KeyThief, LimitObserver, Replayer};
use proauth_core::authenticator::HeartbeatApp;
use proauth_core::awareness;
use proauth_core::uls::{uls_schedule, UlsConfig, UlsNode, SETUP_ROUNDS};
use proauth_crypto::group::{Group, GroupId};
use proauth_sim::message::{NodeId, OutputEvent};
use proauth_sim::runner::{run_ul, SimConfig, SimResult};

const N: usize = 5;
const T: usize = 2;
const NORMAL: u64 = 12;

fn unit_rounds() -> u64 {
    uls_schedule(NORMAL).unit_rounds
}

fn cfg(total_units: u64, seed: u64) -> SimConfig {
    let mut c = SimConfig::new(N, T, uls_schedule(NORMAL));
    c.setup_rounds = SETUP_ROUNDS;
    c.total_rounds = unit_rounds() * total_units;
    c.seed = seed;
    c
}

fn make_node(id: NodeId) -> UlsNode<HeartbeatApp> {
    let group = Group::new(GroupId::Toy64);
    UlsNode::new(UlsConfig::new(group, N, T), id, HeartbeatApp::default())
}

fn forged_accepts(result: &SimResult, marker: &[u8]) -> usize {
    result
        .outputs
        .iter()
        .flat_map(|log| log.iter())
        .filter(|(_, ev)| matches!(ev, OutputEvent::Accepted { msg, .. } if msg == marker))
        .count()
}

#[test]
fn keythief_cross_unit_forgery_rejected() {
    // Steal keys in unit 0, forge only in unit 1 (after the refresh): the
    // stolen certificate is bound to unit 0, so nothing is accepted.
    let forge_rounds: Vec<u64> = (0..6)
        .map(|k| unit_rounds() + proauth_core::PART1_ROUNDS + proauth_core::PART2_ROUNDS + 2 * k)
        .collect();
    let mut adv = KeyThief::<HeartbeatApp>::new(NodeId(3), 4, 6, forge_rounds);
    let result = run_ul(cfg(2, 1), make_node, &mut adv);
    assert!(adv.forgeries_sent > 0, "attack actually ran");
    assert_eq!(
        forged_accepts(&result, b"FORGED-BY-KEYTHIEF"),
        0,
        "stale keys are useless after the refresh"
    );
}

#[test]
fn keythief_same_unit_forgery_accepted_but_victim_counted_compromised() {
    // Forgeries inside the break-in unit *are* accepted — the emulation
    // treats the victim as compromised for that unit, so this is within the
    // ideal model's allowance.
    let forge_rounds: Vec<u64> = (5..10).map(|k| 2 * k).collect();
    let mut adv = KeyThief::<HeartbeatApp>::new(NodeId(3), 4, 6, forge_rounds);
    let result = run_ul(cfg(1, 2), make_node, &mut adv);
    assert!(adv.forgeries_sent > 0);
    assert!(
        forged_accepts(&result, b"FORGED-BY-KEYTHIEF") > 0,
        "same-unit impersonation of a broken node is possible (and allowed)"
    );
    // The victim logged the compromise.
    assert!(result.outputs[NodeId(3).idx()]
        .iter()
        .any(|(_, e)| *e == OutputEvent::Compromised));
}

#[test]
fn hijacker_certifies_fake_key_but_victim_alerts_same_unit() {
    let group = Group::new(GroupId::Toy64);
    let victim = NodeId(4);
    let inner = Hijacker::new(group, victim, 1, unit_rounds());
    let mut adv = LimitObserver::new(inner);
    let result = run_ul(cfg(2, 3), make_node, &mut adv);

    // The attack succeeded mechanically: a certificate for the fake key was
    // harvested and forgeries were accepted by honest nodes.
    assert!(adv.inner.harvested_cert.is_some(), "fake key got certified");
    assert!(adv.inner.forgeries_sent > 0);
    assert!(
        forged_accepts(&result, b"FORGED-BY-HIJACKER") > 0,
        "honest nodes accept messages from the hijacked identity"
    );

    // The victim was NEVER broken into...
    assert_eq!(result.stats.broken_rounds[victim.idx()], 0);

    // ...the adversary stayed (t,t)-limited (only the victim impaired)...
    assert!(
        adv.max_impaired() <= T,
        "impaired {} > t = {}",
        adv.max_impaired(),
        T
    );

    // ...and Proposition 31 holds: the victim alerted in the attack unit.
    assert!(
        result.alerted_in_unit(victim, 1, &uls_schedule(NORMAL)),
        "victim must alert in the unit it is impersonated"
    );

    // Definition 10/11 accounting: every impersonation incident of a
    // non-broken victim is covered by a same-unit alert.
    let sched = uls_schedule(NORMAL);
    let uncovered = awareness::unalerted_impersonations(
        &result.outputs,
        &sched,
        |_, _| false, // nobody was ever broken in this run
        |node, unit| result.alerted_in_unit(node, unit, &sched),
    );
    assert!(uncovered.is_empty(), "{uncovered:?}");
}

#[test]
fn replayed_traffic_causes_no_impersonation() {
    let mut adv = Replayer::new(6);
    let result = run_ul(cfg(2, 4), make_node, &mut adv);
    let sched = uls_schedule(NORMAL);
    let imps = awareness::find_impersonations(&result.outputs, &sched, |_, _| false);
    assert!(imps.is_empty(), "replays rejected by round binding: {imps:?}");
    // Replay does not even cost certificates: no alerts.
    assert_eq!(result.stats.alerts.iter().sum::<u64>(), 0);
}

#[test]
fn heartbeats_survive_replay_interference() {
    let mut adv = Replayer::new(3);
    let result = run_ul(cfg(2, 5), make_node, &mut adv);
    let accepted = result
        .outputs
        .iter()
        .flat_map(|log| log.iter())
        .filter(|(_, ev)| matches!(ev, OutputEvent::Accepted { .. }))
        .count();
    assert!(accepted > 4 * N, "legit traffic still flows");
}
