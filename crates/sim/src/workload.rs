//! Open-loop client workload: an external stream of sign/verify requests
//! driven through the per-round input channel (`x_{i,w}` of §3.1), so the
//! adversary and chaos layers apply to service traffic exactly as to
//! protocol traffic.
//!
//! The generator is **stateless per call**: the operation list for a round
//! is a pure function of `(seed, round)`, so any engine (serial or worker
//! pool, any thread count) sampling inputs in any per-round order sees
//! identical requests — the determinism property the golden tests pin.
//!
//! Semantics of the mix:
//!
//! * **sign** operations are broadcast to *every* node in the same round —
//!   the AL-model ideal process requires all intended signers to be asked
//!   within one time unit, and the session layer drops messages for unknown
//!   session ids;
//! * **verify** operations land on one node each (any single responder can
//!   check a signature against the ROM public key);
//! * **refresh** operations are *preprocessing* refreshes, broadcast like
//!   sign ops: every signer tops its nonce pool back up and re-warms its
//!   precomputation outside the scheduled offline window. Proactive *share*
//!   refresh stays time-triggered by the schedule (Fig. 1) — a client
//!   cannot move the Herzberg refresh, only the service-layer
//!   preprocessing; refresh exposure of the share protocol is controlled
//!   by running the workload across unit boundaries. Refresh arrivals are
//!   rare in realistic mixes, hence the fractional weight syntax
//!   (`refresh=0.01`).
//!
//! Arrivals are open-loop Poisson: the client does not wait for
//! completions, so overload shows up as queueing (and, past the session
//! cap, explicit rejections) rather than as a throttled offered load.

use crate::message::NodeId;
use proauth_primitives::wire::{Reader, Writer};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Wire magic distinguishing an encoded [`ClientBatch`] from a legacy raw
/// "sign these bytes" input.
const MAGIC: &[u8; 4] = b"PAWL";
/// Cap on operations sampled for a single round (keeps the Poisson sampler
/// total and a hostile rate from allocating unboundedly).
const MAX_OPS_PER_ROUND: usize = 64;

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientOp {
    /// Ask the service to threshold-sign `msg` in the current unit.
    Sign {
        /// Message bytes to sign.
        msg: Vec<u8>,
    },
    /// Ask the responder to verify a recently produced signature.
    Verify,
    /// Ask every signer to run a preprocessing refresh (nonce-pool refill +
    /// precompute warm-up) outside the scheduled offline window.
    Refresh,
}

/// A round's worth of client operations for one node, as delivered on the
/// external input channel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientBatch {
    /// Operations in issue order.
    pub ops: Vec<ClientOp>,
}

impl ClientBatch {
    /// Encodes the batch with a magic prefix so receivers can distinguish
    /// it from legacy raw sign inputs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_raw(MAGIC);
        w.put_u16(self.ops.len().min(u16::MAX as usize) as u16);
        for op in self.ops.iter().take(u16::MAX as usize) {
            match op {
                ClientOp::Sign { msg } => {
                    w.put_u8(1);
                    w.put_bytes(msg);
                }
                ClientOp::Verify => w.put_u8(2),
                ClientOp::Refresh => w.put_u8(3),
            }
        }
        w.into_bytes()
    }

    /// Decodes a batch; `None` when `bytes` is not magic-prefixed (legacy
    /// raw input) or is malformed.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return None;
        }
        let mut r = Reader::new(&bytes[MAGIC.len()..]);
        let count = r.get_u16().ok()?;
        let mut ops = Vec::with_capacity(count as usize);
        for _ in 0..count {
            match r.get_u8().ok()? {
                1 => ops.push(ClientOp::Sign {
                    msg: r.get_bytes().ok()?,
                }),
                2 => ops.push(ClientOp::Verify),
                3 => ops.push(ClientOp::Refresh),
                _ => return None,
            }
        }
        (r.remaining() == 0).then_some(ClientBatch { ops })
    }
}

/// Workload shape knobs.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Seed of the request stream (independent of the simulation seed).
    pub seed: u64,
    /// Mean arrivals per round across the whole network, in milli-ops
    /// (2500 = 2.5 ops/round on average).
    pub rate_millis: u64,
    /// Relative weight of sign operations in the mix.
    pub sign_weight: u32,
    /// Relative weight of verify operations in the mix.
    pub verify_weight: u32,
    /// Relative weight of preprocessing-refresh operations in the mix.
    /// Only the ratios matter: [`WorkloadConfig::with_mix`] scales the
    /// human-readable spec by 1000, so `refresh=0.01` next to `sign=8`
    /// becomes `10` next to `8000`.
    pub refresh_weight: u32,
    /// Length in bytes of generated sign messages (the round and op index
    /// are stamped in, so messages are unique regardless of length).
    pub msg_len: usize,
    /// First physical round that may carry operations.
    pub start_round: u64,
    /// First round past the active window (`u64::MAX` = never stop).
    pub stop_round: u64,
}

impl WorkloadConfig {
    /// A sign-heavy default stream: ~`rate_millis`/1000 ops per round,
    /// 3:1 sign:verify, 24-byte messages, active from round 0 forever.
    pub fn with_rate(seed: u64, rate_millis: u64) -> Self {
        WorkloadConfig {
            seed,
            rate_millis,
            sign_weight: 3,
            verify_weight: 1,
            refresh_weight: 0,
            msg_len: 24,
            start_round: 0,
            stop_round: u64::MAX,
        }
    }

    /// [`WorkloadConfig::with_rate`] with the op mix replaced by a spec of
    /// the form `sign=8,verify=1,refresh=0.01` (keys optional, values are
    /// non-negative decimals, at least one must be positive). Weights are
    /// scaled by 1000 and rounded, so two fractional digits survive.
    pub fn with_mix(seed: u64, rate_millis: u64, spec: &str) -> Result<Self, String> {
        let (sign, verify, refresh) = Self::parse_mix(spec)?;
        let mut cfg = Self::with_rate(seed, rate_millis);
        cfg.sign_weight = sign;
        cfg.verify_weight = verify;
        cfg.refresh_weight = refresh;
        Ok(cfg)
    }

    /// Parses a mix spec into `(sign, verify, refresh)` weights, each the
    /// decimal value scaled by 1000. Unknown or repeated keys are errors;
    /// omitted keys default to 0.
    pub fn parse_mix(spec: &str) -> Result<(u32, u32, u32), String> {
        let (mut sign, mut verify, mut refresh) = (None, None, None);
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("mix entry `{part}` is not key=value"))?;
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("mix weight `{value}` is not a number"))?;
            if !value.is_finite() || !(0.0..=1_000_000.0).contains(&value) {
                return Err(format!("mix weight `{value}` out of range [0, 1e6]"));
            }
            let slot = match key.trim() {
                "sign" => &mut sign,
                "verify" => &mut verify,
                "refresh" => &mut refresh,
                other => return Err(format!("unknown mix op `{other}`")),
            };
            if slot.replace((value * 1000.0).round() as u32).is_some() {
                return Err(format!("mix op `{}` given twice", key.trim()));
            }
        }
        let (sign, verify, refresh) = (
            sign.unwrap_or(0),
            verify.unwrap_or(0),
            refresh.unwrap_or(0),
        );
        if sign == 0 && verify == 0 && refresh == 0 {
            return Err("mix has no positive weight (after ×1000 rounding)".into());
        }
        Ok((sign, verify, refresh))
    }
}

/// The open-loop generator. Feed [`Workload::input`] to
/// `run_al_with_inputs`/`run_ul_with_inputs` as the per-round input
/// function.
#[derive(Debug, Clone)]
pub struct Workload {
    cfg: WorkloadConfig,
    n: usize,
}

/// SplitMix64 finalizer: decorrelates `(seed, round)` into an rng seed.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl Workload {
    /// A workload over an `n`-node network.
    pub fn new(cfg: WorkloadConfig, n: usize) -> Self {
        assert!(n > 0, "workload needs at least one node");
        assert!(
            cfg.sign_weight as u64 + cfg.verify_weight as u64 + cfg.refresh_weight as u64 > 0,
            "degenerate op mix"
        );
        Workload { cfg, n }
    }

    /// Samples the number of arrivals this round (Poisson via Knuth's
    /// product method, capped at [`MAX_OPS_PER_ROUND`]).
    fn arrivals(&self, rng: &mut StdRng) -> usize {
        let lambda = self.cfg.rate_millis as f64 / 1000.0;
        if lambda <= 0.0 {
            return 0;
        }
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0f64;
        loop {
            p *= rng.gen::<f64>();
            if p <= l || k >= MAX_OPS_PER_ROUND {
                return k;
            }
            k += 1;
        }
    }

    /// The full operation list for `round`: each op together with its
    /// destination (`None` = broadcast to all nodes).
    fn round_ops(&self, round: u64) -> Vec<(Option<NodeId>, ClientOp)> {
        if round < self.cfg.start_round || round >= self.cfg.stop_round {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(mix(self.cfg.seed ^ mix(round.wrapping_add(1))));
        let count = self.arrivals(&mut rng);
        let (s, v, r) = (
            self.cfg.sign_weight as u64,
            self.cfg.verify_weight as u64,
            self.cfg.refresh_weight as u64,
        );
        (0..count)
            .map(|idx| {
                let draw = rng.next_u32() as u64 % (s + v + r);
                if draw < s {
                    // Unique, reproducible message: round/op stamp + filler.
                    let mut msg = vec![0u8; self.cfg.msg_len.max(12)];
                    msg[..8].copy_from_slice(&round.to_be_bytes());
                    msg[8..12].copy_from_slice(&(idx as u32).to_be_bytes());
                    rng.fill_bytes(&mut msg[12..]);
                    (None, ClientOp::Sign { msg })
                } else if draw < s + v {
                    let node = NodeId(1 + (rng.next_u32() % self.n as u32));
                    (Some(node), ClientOp::Verify)
                } else {
                    (None, ClientOp::Refresh)
                }
            })
            .collect()
    }

    /// The encoded input for `(node, round)`, or `None` when the node has
    /// no operations this round. Pure in `(node, round)` — safe under any
    /// engine's sampling order.
    pub fn input(&self, node: NodeId, round: u64) -> Option<Vec<u8>> {
        let ops: Vec<ClientOp> = self
            .round_ops(round)
            .into_iter()
            .filter(|(dest, _)| dest.is_none() || *dest == Some(node))
            .map(|(_, op)| op)
            .collect();
        (!ops.is_empty()).then(|| ClientBatch { ops }.to_bytes())
    }

    /// Total sign operations the stream issues in `[0, rounds)` — the
    /// offered sign load, for benchmark accounting.
    pub fn offered_signs(&self, rounds: u64) -> usize {
        (0..rounds)
            .map(|r| {
                self.round_ops(r)
                    .iter()
                    .filter(|(_, op)| matches!(op, ClientOp::Sign { .. }))
                    .count()
            })
            .sum()
    }
}

/// Closed-loop client workload: instead of an open-loop arrival rate, the
/// client keeps a fixed **window** of sign operations outstanding and issues
/// a new one only when a previous one completes. Offered load is therefore
/// throttled by the service itself, which is what makes the latency-vs-load
/// *knee* visible: sweeping the window from 1 upward, throughput climbs
/// until the service saturates, after which extra outstanding work only adds
/// queueing latency.
///
/// Completion feedback is pushed in by the caller each round (typically the
/// live `pds/sign_completed` telemetry counter, which the engine merges at
/// every round barrier in deterministic `NodeId` order — so the feedback
/// value, and hence the issued stream, is identical across engines and
/// worker counts). Sign operations are broadcast like the open-loop
/// generator's, so every node sees the same batch.
#[derive(Debug, Clone)]
pub struct ClosedLoopWorkload {
    seed: u64,
    window: usize,
    msg_len: usize,
    /// First physical round that may carry operations.
    pub start_round: u64,
    /// First round past the active window (`u64::MAX` = never stop).
    pub stop_round: u64,
    issued: u64,
    /// The batch issued for the current round, cached so every node of the
    /// same round sees identical bytes regardless of sampling order.
    current: Option<(u64, Vec<u8>)>,
}

impl ClosedLoopWorkload {
    /// A closed-loop stream keeping `window` sign ops outstanding.
    pub fn new(seed: u64, window: usize) -> Self {
        assert!(window > 0, "closed loop needs a positive window");
        ClosedLoopWorkload {
            seed,
            window,
            msg_len: 24,
            start_round: 0,
            stop_round: u64::MAX,
            issued: 0,
            current: None,
        }
    }

    /// Total sign operations issued so far — the offered load actually
    /// achieved, for the load axis of the knee curve.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The encoded input for `(node, round)` given `completed` operations
    /// finished so far (as reported by the service's own counters). The
    /// first call of each round computes the batch; later calls (other
    /// nodes, same round) replay it. Rounds must be sampled in
    /// non-decreasing order, which every engine guarantees.
    pub fn input(&mut self, _node: NodeId, round: u64, completed: u64) -> Option<Vec<u8>> {
        if round < self.start_round || round >= self.stop_round {
            return None;
        }
        match &self.current {
            Some((r, bytes)) if *r == round => {
                return (!bytes.is_empty()).then(|| bytes.clone());
            }
            _ => {}
        }
        let outstanding = self.issued.saturating_sub(completed) as usize;
        let fresh = self
            .window
            .saturating_sub(outstanding)
            .min(MAX_OPS_PER_ROUND);
        let mut rng = StdRng::seed_from_u64(mix(self.seed ^ mix(round.wrapping_add(1))));
        let ops: Vec<ClientOp> = (0..fresh)
            .map(|idx| {
                let mut msg = vec![0u8; self.msg_len.max(12)];
                msg[..8].copy_from_slice(&round.to_be_bytes());
                msg[8..12].copy_from_slice(&(idx as u32).to_be_bytes());
                rng.fill_bytes(&mut msg[12..]);
                ClientOp::Sign { msg }
            })
            .collect();
        self.issued += fresh as u64;
        let bytes = if ops.is_empty() {
            Vec::new()
        } else {
            ClientBatch { ops }.to_bytes()
        };
        self.current = Some((round, bytes.clone()));
        (!bytes.is_empty()).then_some(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_roundtrips_and_rejects_legacy() {
        let batch = ClientBatch {
            ops: vec![
                ClientOp::Sign { msg: b"abc".to_vec() },
                ClientOp::Verify,
                ClientOp::Sign { msg: vec![] },
            ],
        };
        let bytes = batch.to_bytes();
        assert_eq!(ClientBatch::from_bytes(&bytes), Some(batch));
        assert_eq!(ClientBatch::from_bytes(b"hello world"), None);
        assert_eq!(ClientBatch::from_bytes(b""), None);
        // Truncated batches are malformed, not misparsed.
        assert_eq!(ClientBatch::from_bytes(&bytes[..bytes.len() - 1]), None);
    }

    #[test]
    fn inputs_are_deterministic_and_sign_ops_broadcast() {
        let w = Workload::new(WorkloadConfig::with_rate(42, 3000), 5);
        for round in 0..50 {
            let per_node: Vec<Option<Vec<u8>>> = (1..=5u32)
                .map(|i| w.input(NodeId(i), round))
                .collect();
            // Re-sampling is bit-identical.
            for (i, prev) in per_node.iter().enumerate() {
                assert_eq!(*prev, w.input(NodeId(1 + i as u32), round));
            }
            // Every sign op appears at every node.
            let signs = |bytes: &Option<Vec<u8>>| -> Vec<Vec<u8>> {
                bytes
                    .as_deref()
                    .and_then(ClientBatch::from_bytes)
                    .map(|b| {
                        b.ops
                            .into_iter()
                            .filter_map(|op| match op {
                                ClientOp::Sign { msg } => Some(msg),
                                _ => None,
                            })
                            .collect()
                    })
                    .unwrap_or_default()
            };
            let first = signs(&per_node[0]);
            for other in &per_node[1..] {
                assert_eq!(first, signs(other), "sign ops broadcast, round {round}");
            }
        }
    }

    #[test]
    fn rate_controls_volume_and_window_bounds_it() {
        let mut cfg = WorkloadConfig::with_rate(7, 2000);
        cfg.start_round = 10;
        cfg.stop_round = 20;
        let w = Workload::new(cfg, 3);
        assert_eq!(w.offered_signs(10), 0, "quiet before start_round");
        let active = w.offered_signs(20);
        assert!(active > 0, "ops inside the window");
        assert_eq!(w.offered_signs(100), active, "quiet after stop_round");

        let heavy = Workload::new(WorkloadConfig::with_rate(7, 8000), 3);
        let light = Workload::new(WorkloadConfig::with_rate(7, 500), 3);
        assert!(
            heavy.offered_signs(100) > light.offered_signs(100),
            "rate knob is monotone"
        );
    }

    #[test]
    fn mix_spec_parses_fractions_and_rejects_junk() {
        assert_eq!(
            WorkloadConfig::parse_mix("sign=8,verify=1,refresh=0.01"),
            Ok((8000, 1000, 10))
        );
        assert_eq!(WorkloadConfig::parse_mix("verify=2"), Ok((0, 2000, 0)));
        assert!(WorkloadConfig::parse_mix("sign=8,sign=1").is_err());
        assert!(WorkloadConfig::parse_mix("mint=8").is_err());
        assert!(WorkloadConfig::parse_mix("sign=-1").is_err());
        assert!(WorkloadConfig::parse_mix("sign").is_err());
        assert!(WorkloadConfig::parse_mix("refresh=0.0001").is_err(), "rounds to all-zero");
        let cfg = WorkloadConfig::with_mix(9, 2500, "sign=8,verify=1,refresh=0.01").expect("mix");
        assert_eq!(
            (cfg.sign_weight, cfg.verify_weight, cfg.refresh_weight),
            (8000, 1000, 10)
        );
    }

    #[test]
    fn refresh_ops_broadcast_and_rare_mix_still_signs() {
        // A refresh-only stream broadcasts every op to every node.
        let mut cfg = WorkloadConfig::with_rate(11, 4000);
        cfg.sign_weight = 0;
        cfg.verify_weight = 0;
        cfg.refresh_weight = 1;
        let w = Workload::new(cfg, 3);
        let mut seen = 0usize;
        for round in 0..30 {
            let per_node: Vec<_> = (1..=3u32).map(|i| w.input(NodeId(i), round)).collect();
            for other in &per_node[1..] {
                assert_eq!(per_node[0], *other, "refresh ops broadcast");
            }
            if let Some(bytes) = &per_node[0] {
                let ops = ClientBatch::from_bytes(bytes).expect("batch").ops;
                assert!(ops.iter().all(|op| *op == ClientOp::Refresh));
                seen += ops.len();
            }
        }
        assert!(seen > 0);

        // A rare-refresh mix still carries sign traffic every few rounds —
        // the fractional weight dilutes, it does not starve.
        let rare = Workload::new(
            WorkloadConfig::with_mix(42, 3000, "sign=8,verify=1,refresh=0.01").expect("mix"),
            5,
        );
        assert!(rare.offered_signs(40) > 0);
    }

    #[test]
    fn closed_loop_respects_window_and_tracks_completions() {
        let mut w = ClosedLoopWorkload::new(5, 4);
        // Round 0, nothing completed: the full window is issued, broadcast
        // identically to every node.
        let b1 = w.input(NodeId(1), 0, 0);
        let b2 = w.input(NodeId(2), 0, 0);
        assert_eq!(b1, b2, "same round, same batch");
        let ops = ClientBatch::from_bytes(&b1.expect("batch")).expect("decode").ops;
        assert_eq!(ops.len(), 4);
        assert_eq!(w.issued(), 4);

        // Round 1, still nothing completed: the window is full, no new ops.
        assert_eq!(w.input(NodeId(1), 1, 0), None);
        assert_eq!(w.issued(), 4);

        // Round 2, three completions: exactly three slots reopen.
        let b = w.input(NodeId(1), 2, 3).expect("batch");
        assert_eq!(ClientBatch::from_bytes(&b).expect("decode").ops.len(), 3);
        assert_eq!(w.issued(), 7);

        // Outstanding never exceeds the window under any feedback sequence.
        let mut completed = 3;
        for round in 3..40 {
            if round % 3 == 0 {
                completed += 2; // service drains slowly
            }
            let _ = w.input(NodeId(1), round, completed);
            assert!(w.issued() - completed.min(w.issued()) <= 4);
        }

        // Identical feedback ⇒ identical stream (engine invariance).
        let mut v1 = ClosedLoopWorkload::new(5, 4);
        let mut v2 = ClosedLoopWorkload::new(5, 4);
        for round in 0..20 {
            let completed = round / 2;
            assert_eq!(
                v1.input(NodeId(1), round, completed),
                v2.input(NodeId(1), round, completed)
            );
        }
    }

    #[test]
    fn verify_ops_land_on_single_nodes() {
        let mut cfg = WorkloadConfig::with_rate(3, 4000);
        cfg.sign_weight = 0;
        cfg.verify_weight = 1;
        let w = Workload::new(cfg, 4);
        let mut seen = 0usize;
        for round in 0..40 {
            let total: usize = (1..=4u32)
                .filter_map(|i| w.input(NodeId(i), round))
                .map(|b| ClientBatch::from_bytes(&b).expect("batch").ops.len())
                .sum();
            seen += total;
            assert_eq!(
                total,
                w.round_ops(round).len(),
                "each verify op delivered exactly once"
            );
        }
        assert!(seen > 0);
    }
}
