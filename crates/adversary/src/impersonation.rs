//! Impersonation attacks — the adversaries of §1.1/§1.3 that the scheme's
//! awareness property (Proposition 31) is designed to expose.
//!
//! * [`KeyThief`]: breaks into a node, steals its current local keys, leaves,
//!   and keeps impersonating with the stolen keys — within the same unit
//!   (possible: the node counts as compromised) and across the next refresh
//!   (must fail: the certificate is unit-bound).
//! * [`Hijacker`]: never breaks in at all. During a refresh it cuts the
//!   victim off, announces an adversary-generated key in the victim's name,
//!   lets the honest majority *certify the fake key*, harvests the
//!   certificate from the wire, and impersonates the victim for the rest of
//!   the unit. The paper's claim: the victim cannot prevent this while
//!   disconnected, but it **alerts** in that same unit (it obtains no
//!   certificate for the key it actually announced).

use proauth_core::authenticator::AlProtocol;
use proauth_core::certify::{certify, LocalKeys};
use proauth_core::uls::UlsNode;
use proauth_core::wire::{Blob, DisperseMsg, Inner, UlsWire};
use proauth_crypto::group::Group;
use proauth_crypto::schnorr::Signature;
use proauth_primitives::wire::{Decode, Encode};
use proauth_sim::adversary::{BreakPlan, NetView, UlAdversary};
use proauth_sim::clock::{Phase, TimeView};
use proauth_sim::message::{Envelope, NodeId};
use proauth_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::any::Any;

/// Builds a forged certified application message and wraps it as a
/// ready-to-deliver `Forwarding` envelope.
///
/// `arrival_round` is the round the envelope will be *processed* by the
/// receiver (injections made during round `r` arrive at `r+1`), so the
/// message is certified for `w = arrival_round − 2` to pass VER-CERT.
pub fn forge_app_message<R: rand::RngCore>(
    keys: &LocalKeys,
    victim: NodeId,
    to: NodeId,
    payload: Vec<u8>,
    arrival_round: u64,
    rng: &mut R,
) -> Option<Envelope> {
    let inner = Inner::App(payload);
    let w = arrival_round.checked_sub(2)?;
    let cmsg = certify(keys, &inner.to_bytes(), victim, to, w, rng)?;
    let wire = UlsWire::Disperse(DisperseMsg::Forwarding {
        origin: victim.0,
        blob: Blob::Certified(cmsg).intern(),
    });
    // The physical carrier claims to be some other node (it does not matter
    // which — authenticity rides the certificate, not the envelope).
    Some(Envelope::new(victim, to, wire.to_bytes()))
}

/// §1.1: steal-and-impersonate.
pub struct KeyThief<A: AlProtocol> {
    /// The victim.
    pub victim: NodeId,
    /// Round to break in (keys are stolen on this round).
    pub break_at: u64,
    /// Round to leave.
    pub leave_at: u64,
    /// Rounds at which to inject a forged message to every other node.
    pub forge_at: Vec<u64>,
    /// The stolen keys, once captured.
    pub stolen: Option<LocalKeys>,
    /// Forged messages injected (for experiment accounting).
    pub forgeries_sent: u64,
    rng: StdRng,
    _marker: std::marker::PhantomData<A>,
}

impl<A: AlProtocol> KeyThief<A> {
    /// Creates the attack.
    pub fn new(victim: NodeId, break_at: u64, leave_at: u64, forge_at: Vec<u64>) -> Self {
        KeyThief {
            victim,
            break_at,
            leave_at,
            forge_at,
            stolen: None,
            forgeries_sent: 0,
            rng: StdRng::seed_from_u64(0xBAD),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<A: AlProtocol> UlAdversary for KeyThief<A> {
    fn plan(&mut self, view: &NetView<'_>) -> BreakPlan {
        if view.time.round == self.break_at {
            BreakPlan::break_into([self.victim])
        } else if view.time.round == self.leave_at {
            BreakPlan::leave([self.victim])
        } else {
            BreakPlan::none()
        }
    }

    fn corrupt(&mut self, _node: NodeId, state: &mut dyn Any, _time: &TimeView) {
        if self.stolen.is_none() {
            if let Some(node) = state.downcast_mut::<UlsNode<A>>() {
                self.stolen = node.steal_local_keys();
            }
        }
    }

    fn deliver(&mut self, sent: &[Envelope], view: &NetView<'_>) -> Vec<Envelope> {
        let mut out = sent.to_vec();
        if let Some(keys) = &self.stolen {
            if self.forge_at.contains(&view.time.round) {
                for to in NodeId::all(view.n) {
                    if to == self.victim {
                        continue;
                    }
                    if let Some(env) = forge_app_message(
                        keys,
                        self.victim,
                        to,
                        b"FORGED-BY-KEYTHIEF".to_vec(),
                        view.time.round + 1,
                        &mut self.rng,
                    ) {
                        out.push(env);
                        self.forgeries_sent += 1;
                        telemetry::count("adversary/forgeries", 1);
                    }
                }
            }
        }
        out
    }

    fn output(&mut self) -> Vec<String> {
        vec![format!("keythief: {} forgeries injected", self.forgeries_sent)]
    }
}

/// §1.3: hijack a victim's key certification while it is cut off —
/// impersonating a *never-broken* node. Exercises the awareness guarantee.
pub struct Hijacker {
    /// The victim.
    pub victim: NodeId,
    /// The time unit whose refresh is hijacked.
    pub unit: u64,
    /// Rounds per unit (to locate the refresh window).
    pub unit_rounds: u64,
    /// Adversary-generated keys announced in the victim's name.
    pub fake_keys: Option<LocalKeys>,
    /// The harvested certificate for the fake key.
    pub harvested_cert: Option<Signature>,
    /// Number of forged app messages delivered.
    pub forgeries_sent: u64,
    group: Group,
    rng: StdRng,
}

impl Hijacker {
    /// Creates the attack against `victim`'s refresh in `unit`.
    pub fn new(group: Group, victim: NodeId, unit: u64, unit_rounds: u64) -> Self {
        Hijacker {
            victim,
            unit,
            unit_rounds,
            fake_keys: None,
            harvested_cert: None,
            forgeries_sent: 0,
            group,
            rng: StdRng::seed_from_u64(0x417AC), // attack seed
        }
    }

    fn in_attack_unit(&self, view: &NetView<'_>) -> bool {
        view.time.unit == self.unit
    }

    /// Whether to keep the victim isolated this round.
    fn isolating(&self, view: &NetView<'_>) -> bool {
        self.in_attack_unit(view)
    }
}

impl UlAdversary for Hijacker {
    fn deliver(&mut self, sent: &[Envelope], view: &NetView<'_>) -> Vec<Envelope> {
        let round = view.time.round;
        let unit_start = self.unit * self.unit_rounds;

        // Harvest certificates for the fake key from the wire.
        if let Some(fake) = &self.fake_keys {
            if self.harvested_cert.is_none() {
                let fake_vk = fake.vk_bytes();
                for env in sent {
                    let Ok(UlsWire::Disperse(d)) = UlsWire::from_bytes(&env.payload) else {
                        continue;
                    };
                    // Decoding already produced a shared blob handle; inspect
                    // it in place rather than copying the bytes back out.
                    let blob = match d {
                        DisperseMsg::Forward { blob, .. } => blob,
                        DisperseMsg::Forwarding { blob, .. } => blob,
                    };
                    if let Ok(Blob::CertDeliver {
                        subject,
                        unit,
                        vk,
                        cert,
                    }) = Blob::from_bytes(blob.as_bytes())
                    {
                        if subject == self.victim.0 && unit == self.unit && vk == fake_vk {
                            self.harvested_cert = Some(cert);
                            break;
                        }
                    }
                }
            }
        }

        // Base delivery: cut the victim off for the whole attack unit.
        let mut out: Vec<Envelope> = sent
            .iter()
            .filter(|e| {
                !self.isolating(view) || (e.from != self.victim && e.to != self.victim)
            })
            .cloned()
            .collect();

        // Round `unit_start`: the honest victim broadcasts its true key
        // announcement (dropped above); inject the fake one instead. The
        // injection is delivered at `unit_start + 1`, the announce window.
        if round == unit_start && matches!(view.time.phase, Phase::RefreshPart1 { .. }) {
            let fake = LocalKeys::generate(&self.group, self.unit, &mut self.rng);
            let announce = UlsWire::KeyAnnounce {
                unit: self.unit,
                vk: fake.vk_bytes(),
            };
            for to in NodeId::all(view.n) {
                if to != self.victim {
                    out.push(Envelope::new(self.victim, to, announce.to_bytes()));
                }
            }
            self.fake_keys = Some(fake);
        }

        // Normal phase of the attack unit: impersonate with the certified
        // fake key.
        if self.in_attack_unit(view) && matches!(view.time.phase, Phase::Normal) {
            if let (Some(fake), Some(cert)) = (&mut self.fake_keys, &self.harvested_cert) {
                if fake.cert.is_none() {
                    fake.cert = Some(cert.clone());
                }
                if round.is_multiple_of(2) {
                    for to in NodeId::all(view.n) {
                        if to == self.victim {
                            continue;
                        }
                        if let Some(env) = forge_app_message(
                            fake,
                            self.victim,
                            to,
                            b"FORGED-BY-HIJACKER".to_vec(),
                            round + 1,
                            &mut self.rng,
                        ) {
                            out.push(env);
                            self.forgeries_sent += 1;
                            telemetry::count("adversary/forgeries", 1);
                        }
                    }
                }
            }
        }
        out
    }

    fn output(&mut self) -> Vec<String> {
        vec![format!(
            "hijacker: cert harvested = {}, {} forgeries injected",
            self.harvested_cert.is_some(),
            self.forgeries_sent
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proauth_crypto::group::GroupId;
    use proauth_pds::msg::signing_payload;
    use proauth_pds::statement::key_statement;
    use proauth_crypto::schnorr::SigningKey;

    #[test]
    fn forged_message_is_wellformed_wire() {
        let group = Group::new(GroupId::Toy64);
        let mut rng = StdRng::seed_from_u64(1);
        // Mint a certificate with a throwaway "PDS" key.
        let ca = SigningKey::generate(&group, &mut rng);
        let mut keys = LocalKeys::generate(&group, 1, &mut rng);
        let st = key_statement(NodeId(3), 1, &keys.vk_bytes());
        keys.cert = Some(ca.sign(&signing_payload(&st, 1), &mut rng));

        let env = forge_app_message(&keys, NodeId(3), NodeId(1), b"x".to_vec(), 50, &mut rng)
            .expect("forgery built");
        let wire = UlsWire::from_bytes(&env.payload).unwrap();
        match wire {
            UlsWire::Disperse(DisperseMsg::Forwarding { origin, blob }) => {
                assert_eq!(origin, 3);
                let Blob::Certified(cmsg) = Blob::from_bytes(blob.as_bytes()).unwrap() else {
                    panic!("expected certified blob");
                };
                assert_eq!(cmsg.w, 48);
                assert_eq!(cmsg.i, 3);
                assert_eq!(cmsg.j, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn forge_requires_certificate() {
        let group = Group::new(GroupId::Toy64);
        let mut rng = StdRng::seed_from_u64(2);
        let keys = LocalKeys::generate(&group, 1, &mut rng); // no cert
        assert!(forge_app_message(&keys, NodeId(1), NodeId(2), vec![], 10, &mut rng).is_none());
    }
}
