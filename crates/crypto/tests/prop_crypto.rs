//! Property tests over the cryptographic substrates: Shamir interpolation on
//! random subsets, Feldman verification soundness/completeness, Schnorr
//! signature correctness, and refresh invariants.

use proauth_crypto::dkg;
use proauth_crypto::feldman::{self, Commitments, Dealing, ShareCheck};
use proauth_crypto::group::{Group, GroupId};
use proauth_crypto::refresh;
use proauth_crypto::schnorr::{self, SigningKey};
use proauth_crypto::shamir::{self, Polynomial};
use proauth_crypto::thresh;
use proauth_primitives::bigint::BigUint;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn group() -> Group {
    Group::new(GroupId::Toy64)
}

/// multi_exp over random pairs must equal the product of seed-path
/// (binary, non-cached) exponentiations.
fn check_multi_exp_matches_naive(group: &Group, seed: u64, k: usize) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs: Vec<(BigUint, BigUint)> = (0..k)
        .map(|_| {
            let base = group.exp_g(&group.random_scalar(&mut rng));
            let exp = group.random_scalar(&mut rng);
            (base, exp)
        })
        .collect();
    let borrowed: Vec<(&BigUint, &BigUint)> = pairs.iter().map(|(b, e)| (b, e)).collect();
    let mut expected = group.identity();
    for (base, exp) in &pairs {
        expected = group.mul(&expected, &group.exp_binary(base, exp));
    }
    prop_assert_eq!(group.multi_exp(&borrowed), expected);
    Ok(())
}

/// Feldman batch verification accepts exactly when every share individually
/// verifies; `corrupt_mask` selects which shares get perturbed.
fn check_feldman_batch_iff_individual(
    group: &Group,
    seed: u64,
    t: usize,
    corrupt_mask: u8,
) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 2 * t + 1;
    let secret = group.random_scalar(&mut rng);
    let dealing = Dealing::deal(group, t, n, secret, &mut rng);
    let shares: Vec<BigUint> = (1..=n as u32)
        .map(|i| {
            let s = dealing.share_for(i).clone();
            if corrupt_mask & (1 << (i - 1)) != 0 {
                group.scalar_add(&s, &BigUint::one())
            } else {
                s
            }
        })
        .collect();
    let checks: Vec<ShareCheck<'_>> = shares
        .iter()
        .enumerate()
        .map(|(idx, share)| ShareCheck {
            commitments: &dealing.commitments,
            index: (idx + 1) as u32,
            share,
        })
        .collect();
    let each = checks
        .iter()
        .all(|c| c.commitments.verify_share_in(group, c.index, c.share));
    prop_assert_eq!(feldman::batch_verify_shares(group, &checks), each);
    Ok(())
}

/// Schnorr batch verification accepts exactly when every signature
/// individually verifies.
fn check_schnorr_batch_iff_individual(
    group: &Group,
    seed: u64,
    k: usize,
    corrupt_mask: u8,
) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let sk = SigningKey::generate(group, &mut rng);
    let msgs: Vec<Vec<u8>> = (0..k).map(|i| format!("msg-{i}").into_bytes()).collect();
    let sigs: Vec<schnorr::Signature> = msgs
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let mut sig = sk.sign(m, &mut rng);
            if corrupt_mask & (1 << i) != 0 {
                sig.s = group.scalar_add(&sig.s, &BigUint::one());
            }
            sig
        })
        .collect();
    let items: Vec<(&[u8], &schnorr::Signature)> = msgs
        .iter()
        .zip(&sigs)
        .map(|(m, s)| (m.as_slice(), s))
        .collect();
    let each = items.iter().all(|(m, s)| sk.verify_key().verify(m, s));
    prop_assert_eq!(schnorr::batch_verify(sk.verify_key(), &items), each);
    Ok(())
}

/// Threshold-partial batch verification accepts exactly when every partial
/// individually verifies.
fn check_thresh_batch_iff_individual(
    group: &Group,
    seed: u64,
    t: usize,
    corrupt_mask: u8,
) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let secret = group.random_scalar(&mut rng);
    let poly = Polynomial::random_with_secret(group, t, secret, &mut rng);
    let signer_set: Vec<u32> = (1..=(t + 1) as u32).collect();
    let share_keys: Vec<BigUint> = signer_set
        .iter()
        .map(|&i| group.exp_g(&poly.eval_at(i)))
        .collect();
    let nonces: Vec<thresh::Nonce> = signer_set
        .iter()
        .map(|_| thresh::generate_nonce(group, &mut rng))
        .collect();
    let r = thresh::combine_nonces(
        group,
        &nonces.iter().map(|n| n.commitment.clone()).collect::<Vec<_>>(),
    );
    let pk = group.exp_g(poly.secret());
    let e = thresh::challenge(group, &r, &pk, b"prop-thresh-batch");
    let partials: Vec<BigUint> = signer_set
        .iter()
        .zip(&nonces)
        .enumerate()
        .map(|(idx, (&i, nonce))| {
            let key = dkg::KeyShare {
                index: i,
                share: poly.eval_at(i),
                public_key: pk.clone(),
                share_keys: share_keys.clone(),
                qualified: signer_set.clone(),
            };
            let z = thresh::partial_sign(group, &key, &signer_set, nonce, &e);
            if corrupt_mask & (1 << idx) != 0 {
                group.scalar_add(&z, &BigUint::one())
            } else {
                z
            }
        })
        .collect();
    let checks: Vec<thresh::PartialCheck<'_>> = signer_set
        .iter()
        .enumerate()
        .map(|(idx, &i)| thresh::PartialCheck {
            signer: i,
            share_key: &share_keys[idx],
            nonce_commitment: &nonces[idx].commitment,
            z_i: &partials[idx],
        })
        .collect();
    let each = checks.iter().all(|c| {
        thresh::verify_partial(
            group,
            &signer_set,
            c.signer,
            c.share_key,
            c.nonce_commitment,
            &e,
            c.z_i,
        )
    });
    prop_assert_eq!(
        thresh::batch_verify_partials(group, &signer_set, &e, &checks),
        each
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shamir_any_quorum_reconstructs(seed in any::<u64>(), t in 1usize..4, extra in 0usize..4) {
        let group = group();
        let mut rng = StdRng::seed_from_u64(seed);
        let n = t + 1 + extra;
        let secret = group.random_scalar(&mut rng);
        let poly = Polynomial::random_with_secret(&group, t, secret.clone(), &mut rng);
        // Pick an arbitrary (t+1)-subset determined by the seed.
        let mut indices: Vec<u32> = (1..=n as u32).collect();
        for k in (1..indices.len()).rev() {
            let j = (seed as usize + k * 7) % (k + 1);
            indices.swap(k, j);
        }
        let points: Vec<(u32, BigUint)> = indices[..t + 1]
            .iter()
            .map(|&i| (i, poly.eval_at(i)))
            .collect();
        prop_assert_eq!(shamir::interpolate_at_zero(&group, &points), secret);
    }

    #[test]
    fn feldman_complete_and_sound(seed in any::<u64>(), t in 1usize..4) {
        let group = group();
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 2 * t + 1;
        let secret = group.random_scalar(&mut rng);
        let dealing = Dealing::deal(&group, t, n, secret, &mut rng);
        for i in 1..=n as u32 {
            // Completeness: honest shares verify.
            prop_assert!(dealing.commitments.verify_share_in(&group, i, dealing.share_for(i)));
            // Soundness: shifted shares fail.
            let bad = group.scalar_add(dealing.share_for(i), &BigUint::one());
            prop_assert!(!dealing.commitments.verify_share_in(&group, i, &bad));
        }
    }

    #[test]
    fn schnorr_roundtrip_random_messages(seed in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 0..100)) {
        let group = group();
        let mut rng = StdRng::seed_from_u64(seed);
        let sk = SigningKey::generate(&group, &mut rng);
        let sig = sk.sign(&msg, &mut rng);
        prop_assert!(sk.verify_key().verify(&msg, &sig));
        // A one-byte perturbation invalidates the signature.
        let mut other = msg.clone();
        other.push(0x55);
        prop_assert!(!sk.verify_key().verify(&other, &sig));
    }

    #[test]
    fn dkg_plus_refresh_keeps_secret(seed in any::<u64>(), t in 1usize..3) {
        let group = group();
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 2 * t + 1;
        // DKG
        let dealings: Vec<(u32, Dealing)> = (1..=n as u32)
            .map(|i| (i, dkg::deal(&group, t, n, &mut rng)))
            .collect();
        let keys: Vec<dkg::KeyShare> = (1..=n as u32)
            .map(|me| {
                let inputs: Vec<dkg::ReceivedDealing> = dealings
                    .iter()
                    .map(|(dealer, d)| dkg::ReceivedDealing {
                        dealer: *dealer,
                        commitments: d.commitments.clone(),
                        share: d.share_for(me).clone(),
                    })
                    .collect();
                dkg::aggregate(&group, t, n, me, &inputs).unwrap()
            })
            .collect();
        // Refresh
        let upd: Vec<(u32, Dealing)> = (1..=n as u32)
            .map(|i| (i, refresh::deal_update(&group, t, n, &mut rng)))
            .collect();
        let new_keys: Vec<dkg::KeyShare> = keys
            .iter()
            .map(|k| {
                let updates: Vec<refresh::ReceivedUpdate> = upd
                    .iter()
                    .map(|(dealer, d)| refresh::ReceivedUpdate {
                        dealer: *dealer,
                        commitments: d.commitments.clone(),
                        share: d.share_for(k.index).clone(),
                    })
                    .collect();
                refresh::apply_updates(&group, t, k, &updates).unwrap()
            })
            .collect();
        // Public key unchanged, shares changed, reconstruction intact.
        let points: Vec<(u32, BigUint)> = new_keys[..t + 1]
            .iter()
            .map(|k| (k.index, k.share.clone()))
            .collect();
        let secret = shamir::interpolate_at_zero(&group, &points);
        prop_assert_eq!(&group.exp_g(&secret), &keys[0].public_key);
        for (old, new) in keys.iter().zip(&new_keys) {
            prop_assert_eq!(&old.public_key, &new.public_key);
            prop_assert_ne!(&old.share, &new.share);
        }
    }

    #[test]
    fn recovery_reconstructs_exact_share(seed in any::<u64>(), t in 1usize..3) {
        let group = group();
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 2 * t + 1;
        let secret = group.random_scalar(&mut rng);
        let poly = Polynomial::random_with_secret(&group, t, secret, &mut rng);
        let share_keys: Vec<BigUint> = (1..=n as u32).map(|i| group.exp_g(&poly.eval_at(i))).collect();
        let target = n as u32;
        let helpers: Vec<u32> = (1..=(t + 1) as u32).collect();
        let blinds: Vec<(u32, refresh::BlindingDealing)> = helpers
            .iter()
            .map(|&h| (h, refresh::deal_blinding(&group, t, n, target, &mut rng)))
            .collect();
        let values: Vec<refresh::RecoveryValue> = helpers
            .iter()
            .map(|&h| {
                let mut v = poly.eval_at(h);
                for (_, d) in &blinds {
                    v = group.scalar_add(&v, &d.shares[(h - 1) as usize]);
                }
                refresh::RecoveryValue { helper: h, value: v }
            })
            .collect();
        // Verify each value against public data before interpolating.
        let comms: Vec<Commitments> = blinds.iter().map(|(_, d)| d.commitments.clone()).collect();
        for v in &values {
            let expected = refresh::expected_recovery_commitment(&group, &share_keys, &comms, v.helper);
            prop_assert_eq!(&group.exp_g(&v.value), &expected);
        }
        let recovered = refresh::recover_share(&group, t, target, &values).unwrap();
        prop_assert_eq!(recovered, poly.eval_at(target));
    }

    #[test]
    fn multi_exp_matches_naive_toy64(seed in any::<u64>(), k in 0usize..6) {
        check_multi_exp_matches_naive(&group(), seed, k)?;
    }

    #[test]
    fn feldman_batch_iff_individual_toy64(seed in any::<u64>(), t in 1usize..4, mask in any::<u8>()) {
        check_feldman_batch_iff_individual(&group(), seed, t, mask)?;
    }

    #[test]
    fn schnorr_batch_iff_individual_toy64(seed in any::<u64>(), k in 0usize..6, mask in any::<u8>()) {
        check_schnorr_batch_iff_individual(&group(), seed, k, mask)?;
    }

    #[test]
    fn thresh_batch_iff_individual_toy64(seed in any::<u64>(), t in 1usize..4, mask in any::<u8>()) {
        check_thresh_batch_iff_individual(&group(), seed, t, mask)?;
    }

    #[test]
    fn lagrange_weights_reconstruct_in_exponent(seed in any::<u64>(), t in 1usize..4) {
        // Σ λ_i · f(i) = f(0) also holds in the exponent — the identity that
        // makes threshold Schnorr work.
        let group = group();
        let mut rng = StdRng::seed_from_u64(seed);
        let poly = Polynomial::random(&group, t, &mut rng);
        let indices: Vec<u32> = (1..=(t + 1) as u32).collect();
        let mut acc = group.identity();
        for &i in &indices {
            let lambda = shamir::lagrange_coeff_at_zero(&group, &indices, i);
            let term = group.exp_g(&group.scalar_mul(&lambda, &poly.eval_at(i)));
            acc = group.mul(&acc, &term);
        }
        prop_assert_eq!(acc, group.exp_g(poly.secret()));
    }
}

// The same fast-path/batch equivalences at production size (s256): fewer
// cases, since each involves dozens of 256-bit exponentiations.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn multi_exp_matches_naive_s256(seed in any::<u64>(), k in 0usize..4) {
        check_multi_exp_matches_naive(&Group::new(GroupId::S256), seed, k)?;
    }

    #[test]
    fn feldman_batch_iff_individual_s256(seed in any::<u64>(), mask in any::<u8>()) {
        check_feldman_batch_iff_individual(&Group::new(GroupId::S256), seed, 2, mask)?;
    }

    #[test]
    fn schnorr_batch_iff_individual_s256(seed in any::<u64>(), k in 0usize..4, mask in any::<u8>()) {
        check_schnorr_batch_iff_individual(&Group::new(GroupId::S256), seed, k, mask)?;
    }

    #[test]
    fn thresh_batch_iff_individual_s256(seed in any::<u64>(), mask in any::<u8>()) {
        check_thresh_batch_iff_individual(&Group::new(GroupId::S256), seed, 2, mask)?;
    }
}
