//! Adapter running an [`AlPds`] directly in the AL-model simulator —
//! the reference execution for Theorem 13 ("there exist t-secure PDS schemes
//! in the AL model"), and the baseline the ULS construction is compared
//! against.
//!
//! In the AL model one logical PDS round equals one physical round.
//! Sign requests arrive as per-round external inputs (the `x_{i,w}` channel):
//! the raw input bytes are the message to sign in the current time unit.

use crate::api::{AlPds, PdsPhase, PdsTime};
use crate::als::AlsPds;
use proauth_sim::clock::Phase;
use proauth_sim::message::OutputEvent;
use proauth_sim::process::{Process, RoundCtx, SetupCtx};

/// A simulator node executing an ALS instance over authenticated links.
pub struct AlsProcess {
    /// The wrapped PDS state machine (public so adversary strategies can
    /// corrupt it through `state_mut`).
    pub pds: AlsPds,
}

impl AlsProcess {
    /// Wraps an ALS state machine.
    pub fn new(pds: AlsPds) -> Self {
        AlsProcess { pds }
    }
}

/// Maps simulator phases to PDS phases: the PDS refresh protocol (`ARfr`)
/// runs during refresh Part II (Part I belongs to the ULS layer and is a
/// no-op for a bare AL-model PDS).
pub fn pds_time_of(phase: Phase, unit: u64) -> PdsTime {
    match phase {
        Phase::RefreshPart2 { step } => PdsTime {
            unit,
            phase: PdsPhase::Refresh { step },
        },
        _ => PdsTime {
            unit,
            phase: PdsPhase::Normal,
        },
    }
}

impl Process for AlsProcess {
    fn on_setup_round(&mut self, ctx: &mut SetupCtx<'_>) {
        let inbox: Vec<_> = ctx
            .inbox
            .iter()
            .map(|e| (e.from, e.payload.to_vec()))
            .collect();
        let outs = self.pds.on_setup_round(ctx.setup_round, &inbox, ctx.rng);
        // Burn the joint verification key into ROM once available.
        if let Some(pk) = self.pds.public_key() {
            ctx.rom.write("v_cert", pk);
        }
        for env in outs {
            ctx.send(env.to, env.payload);
        }
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
        // External input = "sign these bytes in the current unit".
        if let Some(input) = ctx.input {
            let msg = input.to_vec();
            ctx.emit(OutputEvent::SignRequested {
                msg: msg.clone(),
                unit: ctx.time.unit,
            });
            self.pds.request_sign(msg, ctx.time.unit);
        }
        let time = pds_time_of(ctx.time.phase, ctx.time.unit);
        let inbox: Vec<_> = ctx
            .inbox
            .iter()
            .map(|e| (e.from, e.payload.to_vec()))
            .collect();
        let outs = self.pds.on_logical_round(time, &inbox, ctx.rng);
        for env in outs {
            ctx.send(env.to, env.payload);
        }
        for rec in self.pds.take_completed() {
            ctx.emit(OutputEvent::Signed {
                msg: rec.msg,
                unit: rec.unit,
            });
        }
        // Alert on refresh failure, mirroring the ULS behaviour (§4.2.3).
        if ctx.time.phase == (Phase::RefreshPart2 { step: 6 }) && self.pds.refresh_failed() {
            ctx.emit(OutputEvent::Alert);
        }
    }

    fn state_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
